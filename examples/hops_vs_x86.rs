//! HOPS vs. x86-64 persistence: the paper's Section 6 in two parts.
//!
//! Part 1 drives the *functional* persist-buffer model through the
//! paper's worked example (`mov A,10; ofence; mov A,20; dfence`) and a
//! cross-thread dependency, showing multi-versioning and epoch-ordered
//! draining.
//!
//! Part 2 runs the `hashmap` benchmark and replays its trace under all
//! five Figure 10 configurations, printing normalized runtimes.
//!
//! Run with: `cargo run --release --example hops_vs_x86`

use hops::{figure10_bars, HopsConfig, HopsSystem, TimingConfig};
use pmem::{AddrRange, Line};

fn main() {
    // ---- Part 1: functional persist buffers ----
    println!("== persist buffers, functionally ==");
    let mut sys = HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 4);
    sys.store(0, 0x100, &10u64.to_le_bytes()).unwrap();
    sys.ofence(0).unwrap(); // a local timestamp bump — no flushing
    sys.store(0, 0x100, &20u64.to_le_bytes()).unwrap();
    println!(
        "after `mov A,10; ofence; mov A,20`: {} buffered versions of A, durable A = {}",
        sys.buffered_versions(0, Line::containing(0x100)).unwrap(),
        sys.durable_u64(0x100)
    );
    sys.dfence(0).unwrap();
    println!(
        "after dfence: durable A = {} (both versions drained in order)",
        sys.durable_u64(0x100)
    );

    // Cross-thread dependency: t1 overwrites a line t0 still buffers.
    let mut sys = HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 4);
    sys.store(0, 0x200, &1u64.to_le_bytes()).unwrap();
    sys.store(1, 0x200, &2u64.to_le_bytes()).unwrap(); // WAW conflict → dependency pointer
    sys.dfence(1).unwrap();
    println!(
        "cross-thread WAW: draining t1 first drained t0 (t0 PB len = {}), durable = {}",
        sys.pb_len(0).unwrap(),
        sys.durable_u64(0x200)
    );

    // ---- Part 2: Figure 10 on a real trace ----
    println!("\n== Figure 10 replay (hashmap micro-benchmark) ==");
    let run = whisper::apps::micro::hashmap_unpaced(3000, 7);
    let bars = figure10_bars(
        &run.events,
        &TimingConfig::default(),
        &HopsConfig::default(),
    );
    for (model, norm) in &bars {
        let gain = (1.0 - norm) * 100.0;
        println!("{model:>16}: {norm:.3}  ({gain:+.1}% vs x86-64 NVM)");
    }
    let hops = bars
        .iter()
        .find(|(m, _)| format!("{m}") == "HOPS (NVM)")
        .expect("bar")
        .1;
    println!(
        "\nHOPS makes data persistent without explicit flushes and gains {:.1}% \
         (paper: 24.3% on average).",
        (1.0 - hops) * 100.0
    );
}
