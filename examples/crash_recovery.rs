//! Crash-consistency torture: sweep adversarial power failures over
//! both transaction engines and check atomicity every time.
//!
//! Each trial runs a transaction that moves "money" between two
//! accounts in PM, crashes mid-flight with a different random subset of
//! in-flight cache lines reaching the device, recovers, and asserts the
//! invariant (the total balance) held.
//!
//! Run with: `cargo run --example crash_recovery`

use memsim::{CrashSpec, Machine, MachineConfig};
use pmem::AddrRange;
use pmtrace::{Category, Tid};
use pmtx::{RedoTxEngine, TxMem, UndoTxEngine};

const TOTAL: u64 = 1000;

fn trial_undo(seed: u64) -> (u64, u64) {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let log = AddrRange::new(pm.base, 1 << 20);
    let a = pm.base + (1 << 20);
    let b = a + 64;
    let tid = Tid(0);
    let mut eng = UndoTxEngine::format(&mut m, log, 4);
    // Committed initial state: 600/400.
    eng.begin(&mut m, tid).unwrap();
    eng.tx_write_u64(&mut m, tid, a, 600, Category::UserData)
        .unwrap();
    eng.tx_write_u64(&mut m, tid, b, 400, Category::UserData)
        .unwrap();
    eng.commit(&mut m, tid).unwrap();
    // Transfer 250, crash before commit.
    eng.begin(&mut m, tid).unwrap();
    eng.tx_write_u64(&mut m, tid, a, 350, Category::UserData)
        .unwrap();
    eng.tx_write_u64(&mut m, tid, b, 650, Category::UserData)
        .unwrap();
    let img = m.crash(CrashSpec::Adversarial { seed });
    let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
    let _ = UndoTxEngine::recover(&mut m2, tid, log, 4);
    (m2.load_u64(tid, a), m2.load_u64(tid, b))
}

fn trial_redo(seed: u64) -> (u64, u64) {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let log = AddrRange::new(pm.base, 1 << 20);
    let a = pm.base + (1 << 20);
    let b = a + 64;
    let tid = Tid(0);
    let mut eng = RedoTxEngine::format(&mut m, log, 4);
    eng.begin(&mut m, tid).unwrap();
    eng.write_u64(&mut m, tid, a, 600, Category::UserData)
        .unwrap();
    eng.write_u64(&mut m, tid, b, 400, Category::UserData)
        .unwrap();
    eng.commit(&mut m, tid).unwrap();
    eng.begin(&mut m, tid).unwrap();
    eng.write_u64(&mut m, tid, a, 350, Category::UserData)
        .unwrap();
    eng.write_u64(&mut m, tid, b, 650, Category::UserData)
        .unwrap();
    let img = m.crash(CrashSpec::Adversarial { seed });
    let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
    let _ = RedoTxEngine::recover(&mut m2, tid, log, 4);
    (m2.load_u64(tid, a), m2.load_u64(tid, b))
}

fn main() {
    let trials = 200;
    let mut rolled_back = 0;
    for seed in 0..trials {
        for (engine, (a, b)) in [("undo", trial_undo(seed)), ("redo", trial_redo(seed))] {
            assert_eq!(
                a + b,
                TOTAL,
                "seed {seed} ({engine}): balance invariant broken: {a}+{b}"
            );
            assert!(
                (a, b) == (600, 400) || (a, b) == (350, 650),
                "seed {seed} ({engine}): torn state {a}/{b}"
            );
            if (a, b) == (600, 400) {
                rolled_back += 1;
            }
        }
    }
    println!(
        "{} adversarial crashes survived: every recovery was atomic \
         ({rolled_back} rolled back, {} completed)",
        trials * 2,
        trials * 2 - rolled_back
    );
}
