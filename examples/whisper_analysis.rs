//! WHISPER's epoch-level analysis on one application, end to end.
//!
//! Runs the NVML-style `ctree` micro-benchmark on the instrumented
//! machine and prints every Section 5 statistic computed from its
//! trace: epoch rate, transaction sizes, epoch-size histogram,
//! dependencies, write amplification by category, and the DRAM/PM
//! traffic split.
//!
//! Run with: `cargo run --release --example whisper_analysis`

use pmtrace::analysis;

fn main() {
    let run = whisper::suite::run_app(
        "ctree",
        &whisper::suite::SuiteConfig {
            scale: 0.2,
            seed: 42,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let epochs = analysis::split_epochs(&run.run.events);

    println!("== {} / {} ==", run.run.name, run.run.workload);
    println!(
        "{} epochs in {:.1} ms of simulated time → {:.2} M epochs/s (Table 1)",
        epochs.len(),
        run.run.duration_ns as f64 / 1e6,
        run.analysis.epochs_per_sec / 1e6
    );

    let tx = &run.analysis.tx_stats;
    println!(
        "\ntransactions: {} observed, median {} epochs, mean {:.1}, max {} (Figure 3)",
        tx.tx_count(),
        tx.median().unwrap_or(0),
        tx.mean().unwrap_or(0.0),
        tx.max().unwrap_or(0)
    );

    println!("\nepoch sizes (Figure 4): {}", run.analysis.size_hist);
    println!(
        "  → {:.0}% singletons; of those, {:.0}% wrote <10 bytes (paper: 75% / 60%)",
        run.analysis.size_hist.singleton_fraction() * 100.0,
        run.analysis.small_singleton_fraction.unwrap_or(0.0) * 100.0
    );

    println!(
        "\ndependencies within 50us (Figure 5): self {:.1}%, cross {:.2}%",
        run.analysis.deps.self_fraction() * 100.0,
        run.analysis.deps.cross_fraction() * 100.0
    );

    println!(
        "\nwrite amplification (Section 5.2): {}",
        run.analysis.amplification
    );

    println!(
        "\nmemory traffic (Figure 6): {} — PM is {:.2}% of all accesses",
        run.run.stats,
        run.analysis.pm_fraction * 100.0
    );

    println!("\nFigure 10 (normalized runtime):");
    for (model, norm) in &run.analysis.fig10 {
        println!("  {model:>16}: {norm:.3}");
    }
}
