//! `buggy_log` — the seeded-bug showcase for the `pmcheck` checker.
//!
//! Replays the hand-scripted "buggy log" trace (a tiny two-thread
//! append-only persistent log with nine planted persistency bugs,
//! `pmcheck::seeded`) through the checker and prints every finding:
//! each of the eight rules fires at least once — including the
//! happens-before rules (`P-CROSS-DEP`, `P-EPOCH-RACE`), the
//! transaction-atomicity rule, and the recovery-read rule. This is the
//! demonstration that the checker catches what it claims to catch;
//! the `pmcheck` integration tests assert the exact counts.
//!
//! ```text
//! cargo run --example buggy_log
//! ```
//!
//! Exits non-zero (like `whisper-report --check`) because the trace
//! contains error-severity violations — that is the point.

use pmcheck::{check_events, seeded, Severity};

fn main() {
    let events = seeded::buggy_log_events();
    let report = check_events(&events);

    println!(
        "buggy log: {} trace events, {} finding(s)\n",
        report.events_visited,
        report.findings.len()
    );
    for f in &report.findings {
        println!("  {f}");
    }
    println!("\nby rule:");
    for (rule, errors, warns) in report.by_rule() {
        println!("  {:<18} {errors} error(s), {warns} warning(s)", rule.id());
    }
    println!(
        "\ntotal: {} error(s), {} warning(s)",
        report.errors(),
        report.warnings()
    );

    if report.count_severity(Severity::Error) > 0 {
        std::process::exit(3);
    }
}
