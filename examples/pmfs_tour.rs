//! A tour of the PMFS-style filesystem: synchronous persistence,
//! journaled metadata, and mount-time recovery.
//!
//! Run with: `cargo run --example pmfs_tour`

use memsim::{CrashSpec, Machine, MachineConfig};
use pmem::AddrRange;
use pmfs::{Pmfs, PmfsConfig};
use pmtrace::{analysis, Tid};

fn main() {
    let mut m = Machine::new(MachineConfig::asplos17());
    let region = AddrRange::new(m.config().map.pm.base, 64 << 20);
    let tid = Tid(0);
    let mut fs = Pmfs::mkfs(&mut m, tid, region, PmfsConfig::default()).expect("mkfs");
    println!("formatted a {} MB PMFS volume", region.len >> 20);

    // Build a mail-spool-like tree and write synchronously.
    fs.mkdir(&mut m, tid, "/mail").expect("mkdir");
    fs.create(&mut m, tid, "/mail/inbox").expect("create");
    m.trace_mut().clear();
    fs.append(&mut m, tid, "/mail/inbox", &vec![7u8; 8192])
        .expect("append");
    let epochs = analysis::split_epochs(m.trace().events());
    let hist = analysis::epoch_size_histogram(&epochs);
    let amp = analysis::amplification(&epochs);
    println!(
        "an 8 KB append produced {} epochs — sizes {} — data written with NTIs, \
         amplification {:.0}% (paper: ~10%)",
        epochs.len(),
        hist,
        amp.amplification().unwrap_or(0.0) * 100.0
    );
    println!("write() returned ⇒ the data is already durable (no fsync needed)");

    // Directory listing and stat.
    for name in fs.readdir(&mut m, tid, "/mail").expect("readdir") {
        let st = fs
            .stat(&mut m, tid, &format!("/mail/{name}"))
            .expect("stat");
        println!("  /mail/{name}: {} bytes (ino {})", st.size, st.ino);
    }

    // Crash in the middle of nothing: a clean mount.
    let img = m.crash(CrashSpec::DropVolatile);
    let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
    let (mut fs2, rolled_back) = Pmfs::mount(&mut m2, tid, region).expect("mount");
    println!(
        "\nremounted after power failure (journal rollback: {rolled_back}); \
         inbox holds {} bytes",
        fs2.stat(&mut m2, tid, "/mail/inbox").expect("stat").size
    );
    let data = fs2.read_file(&mut m2, tid, "/mail/inbox").expect("read");
    assert_eq!(data, vec![7u8; 8192]);
    println!("contents verified intact");
}
