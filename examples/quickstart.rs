//! Quickstart: a crash-recoverable key-value store in ~40 lines.
//!
//! Builds the simulated machine, formats an NVML-style undo-transaction
//! engine and a persistent allocator, creates a persistent hash table,
//! writes durably, crashes the machine, and recovers.
//!
//! Run with: `cargo run --example quickstart`

use memsim::{CrashSpec, Machine, MachineConfig, PmWriter};
use pmalloc::SlabBitmapAlloc;
use pmds::PHashMap;
use pmem::AddrRange;
use pmtrace::Tid;
use pmtx::UndoTxEngine;

fn main() {
    // A 4-thread machine with 4 GB DRAM + 4 GB PM (the paper's Table 3).
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let tid = Tid(0);

    // Carve PM: a transaction log, a persistent heap, a table header.
    let log = AddrRange::new(pm.base, 4 << 20);
    let heap = AddrRange::new(pm.base + (4 << 20), 64 << 20);
    let table = AddrRange::new(pm.base + (68 << 20), PHashMap::region_bytes(256));

    let mut eng = UndoTxEngine::format(&mut m, log, 4);
    let mut w = PmWriter::new(tid);
    let mut alloc = SlabBitmapAlloc::format(&mut m, &mut w, heap);

    // Create the store and insert durably.
    eng.begin(&mut m, tid).expect("begin");
    let kv = PHashMap::create(&mut m, &mut eng, tid, table, 256).expect("create");
    kv.insert(
        &mut m,
        &mut eng,
        tid,
        &mut alloc,
        b"paper",
        b"WHISPER (ASPLOS 2017)",
    )
    .expect("insert");
    kv.insert(&mut m, &mut eng, tid, &mut alloc, b"proposal", b"HOPS")
        .expect("insert");
    eng.commit(&mut m, tid).expect("commit");
    println!("committed {} keys durably", kv.len(&mut m, tid));

    // Power failure: everything volatile is gone.
    let image = m.crash(CrashSpec::DropVolatile);
    println!("crash! rebooting from the PM image...");

    // Recovery: rebuild the machine from the image, recover the engine,
    // re-open the table.
    let mut m2 = Machine::from_image(MachineConfig::asplos17(), &image);
    let mut eng2 = UndoTxEngine::recover(&mut m2, tid, log, 4);
    let kv2 = PHashMap::open(&mut m2, tid, table.base).expect("open");
    let v = kv2
        .get(&mut m2, &mut eng2, tid, b"paper")
        .expect("key survived");
    println!(
        "recovered: paper = {:?} ({} keys)",
        String::from_utf8_lossy(&v),
        kv2.len(&mut m2, tid)
    );
    assert_eq!(v, b"WHISPER (ASPLOS 2017)");
}
