//! Property-based crash-consistency tests spanning the whole stack:
//! machine → engines → allocator → data structures.
//!
//! The central property of WHISPER applications is crash recoverability:
//! after a power failure at *any* point, with *any* subset of in-flight
//! cache lines reaching PM, recovery must restore a state equivalent to
//! some prefix of committed transactions. proptest drives random
//! operation sequences, crash points, and adversarial persistence
//! subsets.

use memsim::{CrashSpec, Machine, MachineConfig, PmWriter};
use miniprop::prelude::*;
use pmalloc::SlabBitmapAlloc;
use pmds::PHashMap;
use pmem::AddrRange;
use pmtrace::{Category, Tid};
use pmtx::{RedoTxEngine, TxMem, UndoTxEngine};

const TID: Tid = Tid(0);

/// One step of the generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert { key: u8, val: u8 },
    Remove { key: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(key, val)| Op::Insert { key: key % 32, val }),
        any::<u8>().prop_map(|key| Op::Remove { key: key % 32 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Undo engine + allocator + hash map: whatever the crash point and
    /// persistence subset, recovery reflects exactly the committed
    /// prefix of operations.
    #[test]
    fn hashmap_over_undo_recovers_committed_prefix(
        ops in collection::vec(op_strategy(), 1..24),
        crash_after in 0usize..24,
        seed in any::<u64>(),
    ) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 2 << 20);
        let heap = AddrRange::new(pm.base + (2 << 20), 32 << 20);
        let table = AddrRange::new(pm.base + (40 << 20), PHashMap::region_bytes(64));
        let mut eng = UndoTxEngine::format(&mut m, log, 4);
        let mut w = PmWriter::new(TID);
        let mut alloc = SlabBitmapAlloc::format(&mut m, &mut w, heap);
        eng.begin(&mut m, TID).unwrap();
        let map = PHashMap::create(&mut m, &mut eng, TID, table, 64).unwrap();
        eng.commit(&mut m, TID).unwrap();

        // Model of committed state.
        let mut model = std::collections::BTreeMap::new();
        let crash_at = crash_after.min(ops.len());
        for op in ops.iter().take(crash_at) {
            eng.begin(&mut m, TID).unwrap();
            match op {
                Op::Insert { key, val } => {
                    map.insert(&mut m, &mut eng, TID, &mut alloc, &[*key], &[*val; 8]).unwrap();
                    model.insert(*key, *val);
                }
                Op::Remove { key } => {
                    map.remove(&mut m, &mut eng, TID, &mut alloc, &[*key]).unwrap();
                    model.remove(key);
                }
            }
            eng.commit(&mut m, TID).unwrap();
        }
        // One uncommitted op in flight at the crash (if any remain).
        if let Some(op) = ops.get(crash_at) {
            eng.begin(&mut m, TID).unwrap();
            match op {
                Op::Insert { key, val } => {
                    map.insert(&mut m, &mut eng, TID, &mut alloc, &[*key], &[*val; 8]).unwrap();
                }
                Op::Remove { key } => {
                    map.remove(&mut m, &mut eng, TID, &mut alloc, &[*key]).unwrap();
                }
            }
        }

        let img = m.crash(CrashSpec::Adversarial { seed });
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, TID, log, 4);
        let map2 = PHashMap::open(&mut m2, TID, table.base).unwrap();

        // Exactly the committed prefix is visible.
        for key in 0u8..32 {
            let got = map2.get(&mut m2, &mut eng2, TID, &[key]);
            match model.get(&key) {
                Some(val) => prop_assert_eq!(got, Some(vec![*val; 8]), "key {} wrong", key),
                None => prop_assert_eq!(got, None, "key {} must be absent", key),
            }
        }
        prop_assert_eq!(map2.len(&mut m2, TID), model.len() as u64);
    }

    /// Redo engine: a crash mid-transaction leaves the data region
    /// byte-identical to the committed prefix (redo never writes data
    /// in place before commit).
    #[test]
    fn redo_engine_all_or_nothing(
        n_committed in 0usize..6,
        n_uncommitted in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 2 << 20);
        let data = pm.base + (2 << 20);
        let mut eng = RedoTxEngine::format(&mut m, log, 4);
        for i in 0..n_committed as u64 {
            eng.begin(&mut m, TID).unwrap();
            eng.write_u64(&mut m, TID, data + i * 64, i + 1, Category::UserData).unwrap();
            eng.commit(&mut m, TID).unwrap();
        }
        eng.begin(&mut m, TID).unwrap();
        for j in 0..n_uncommitted as u64 {
            eng.write_u64(&mut m, TID, data + (16 + j) * 64, 0xdead, Category::UserData).unwrap();
        }
        let img = m.crash(CrashSpec::Adversarial { seed });
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let _ = RedoTxEngine::recover(&mut m2, TID, log, 4);
        for i in 0..n_committed as u64 {
            prop_assert_eq!(m2.load_u64(TID, data + i * 64), i + 1);
        }
        for j in 0..n_uncommitted as u64 {
            prop_assert_eq!(m2.load_u64(TID, data + (16 + j) * 64), 0, "uncommitted write leaked");
        }
    }

    /// Double crashes: recovery is idempotent no matter where the
    /// second failure lands.
    #[test]
    fn recovery_is_idempotent(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 2 << 20);
        let data = pm.base + (2 << 20);
        let mut eng = UndoTxEngine::format(&mut m, log, 4);
        eng.begin(&mut m, TID).unwrap();
        eng.tx_write_u64(&mut m, TID, data, 7, Category::UserData).unwrap();
        eng.commit(&mut m, TID).unwrap();
        eng.begin(&mut m, TID).unwrap();
        eng.tx_write_u64(&mut m, TID, data, 9, Category::UserData).unwrap();

        let img = m.crash(CrashSpec::Adversarial { seed: seed1 });
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let _ = UndoTxEngine::recover(&mut m2, TID, log, 4);
        // Crash again immediately (recovery writes may be in flight).
        let img2 = m2.crash(CrashSpec::Adversarial { seed: seed2 });
        let mut m3 = Machine::from_image(MachineConfig::asplos17(), &img2);
        let _ = UndoTxEngine::recover(&mut m3, TID, log, 4);
        prop_assert_eq!(m3.load_u64(TID, data), 7);
    }
}
