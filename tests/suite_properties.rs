//! Cross-application properties: the paper's headline observations
//! must hold on the suite as a whole, not just per module.
//!
//! These run every application at a reduced scale, so this file is the
//! slowest in the test suite — but it is the one that checks WHISPER's
//! abstract (a)–(d) claims end to end.

use pmtrace::analysis;
use whisper::suite::{run_app, AppResult, SuiteConfig, APP_NAMES, SIM_APPS};

fn results() -> Vec<AppResult> {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    APP_NAMES.iter().map(|n| run_app(n, &cfg)).collect()
}

#[test]
fn suite_wide_paper_claims() {
    let results = results();

    // Abstract (a): "only 4% of writes in PM-aware applications are to
    // PM and the rest are to volatile memory" — over the simulated
    // subset, PM is a small minority of traffic.
    let sim: Vec<&AppResult> = results
        .iter()
        .filter(|r| SIM_APPS.contains(&r.run.name.as_str()))
        .collect();
    let avg_pm: f64 = sim.iter().map(|r| r.analysis.pm_fraction).sum::<f64>() / sim.len() as f64;
    assert!(
        avg_pm > 0.005 && avg_pm < 0.12,
        "average PM share {avg_pm} should be a few percent"
    );

    // Abstract (b): "software transactions are often implemented with
    // 5 to 50 ordering points" — the cross-suite median of medians
    // falls in that band, with echo/TPC-C "well over a hundred".
    let mut medians: Vec<u64> = results
        .iter()
        .filter_map(|r| r.analysis.tx_stats.median())
        .collect();
    medians.sort_unstable();
    let mid = medians[medians.len() / 2];
    assert!((5..=50).contains(&mid), "median tx size {mid} outside 5-50");
    let echo = results
        .iter()
        .find(|r| r.run.name == "echo")
        .expect("echo ran");
    let tpcc = results
        .iter()
        .find(|r| r.run.name == "nstore-tpcc")
        .expect("tpcc ran");
    assert!(
        echo.analysis.tx_stats.median().unwrap() > 100,
        "echo well over a hundred"
    );
    assert!(
        tpcc.analysis.tx_stats.median().unwrap() > 100,
        "tpcc well over a hundred"
    );

    // Abstract (c): "75% of epochs update exactly one 64B cache line"
    // — the native+library average is singleton-dominated.
    let native_lib: Vec<&AppResult> = results
        .iter()
        .filter(|r| !matches!(r.run.name.as_str(), "nfs" | "exim" | "mysql"))
        .collect();
    let avg_singleton: f64 = native_lib
        .iter()
        .map(|r| r.analysis.size_hist.singleton_fraction())
        .sum::<f64>()
        / native_lib.len() as f64;
    assert!(
        avg_singleton > 0.55,
        "native/library singleton average {avg_singleton} too low"
    );

    // Abstract (d): self-dependencies abundant, cross-dependencies
    // rare. The deliberate exception is the interleaved redis port:
    // its workers share one hash table and backlog queue, so cross
    // dependencies are common by construction (EXPERIMENTS.md
    // deviation 6); the paper's single-threaded redis — and its zero
    // cross share — is recovered at `worker_threads: 1`.
    for r in &results {
        if r.run.name == "redis" {
            assert!(
                r.analysis.deps.cross_dep_epochs > 0,
                "redis: interleaved workers must produce cross-deps"
            );
            continue;
        }
        assert!(
            r.analysis.deps.cross_fraction() < 0.25,
            "{}: cross-deps {} should be rare",
            r.run.name,
            r.analysis.deps.cross_fraction()
        );
    }
    let paper_faithful: Vec<&AppResult> =
        results.iter().filter(|r| r.run.name != "redis").collect();
    let avg_self: f64 = paper_faithful
        .iter()
        .map(|r| r.analysis.deps.self_fraction())
        .sum::<f64>()
        / paper_faithful.len() as f64;
    let avg_cross: f64 = paper_faithful
        .iter()
        .map(|r| r.analysis.deps.cross_fraction())
        .sum::<f64>()
        / paper_faithful.len() as f64;
    assert!(
        avg_self > 10.0 * avg_cross,
        "self-deps ({avg_self}) should dominate cross-deps ({avg_cross})"
    );

    // MySQL has the suite's lowest self-dependency share (Figure 5).
    let mysql_self = results
        .iter()
        .find(|r| r.run.name == "mysql")
        .expect("mysql ran")
        .analysis
        .deps
        .self_fraction();
    for r in &results {
        if r.run.name != "mysql" {
            assert!(
                r.analysis.deps.self_fraction() >= mysql_self * 0.9,
                "{} self-deps below mysql's",
                r.run.name
            );
        }
    }

    // Table 1's rate spread: native/library apps are orders of
    // magnitude faster than Exim.
    let exim = results
        .iter()
        .find(|r| r.run.name == "exim")
        .expect("exim ran");
    for r in &results {
        if matches!(
            r.run.name.as_str(),
            "echo" | "nstore-ycsb" | "redis" | "hashmap"
        ) {
            assert!(
                r.analysis.epochs_per_sec > 50.0 * exim.analysis.epochs_per_sec,
                "{} vs exim rate spread collapsed",
                r.run.name
            );
        }
    }

    // Figure 10, per application: x86(PWQ) beats x86(NVM); HOPS(NVM)
    // beats x86(PWQ) — "more importantly, outperforms the x86-64
    // implementation with PWQ"; IDEAL is the floor.
    for r in &sim {
        let get = |idx: usize| r.analysis.fig10[idx].1;
        let (x86, pwq, hops, hops_pwq, ideal) = (get(0), get(1), get(2), get(3), get(4));
        assert!((x86 - 1.0).abs() < 1e-9, "{}", r.run.name);
        if r.run.name == "redis" {
            // The interleaved log-free dict leaves almost no
            // persistence cost on the trace, so the four real
            // mechanisms tie within noise (EXPERIMENTS.md deviation
            // 6); only the no-persistence IDEAL floor must hold.
            let floor = pwq.min(hops).min(hops_pwq);
            assert!(ideal <= floor + 1e-9, "{}: IDEAL is the floor", r.run.name);
            continue;
        }
        assert!(pwq < x86, "{}: PWQ should help x86", r.run.name);
        assert!(hops < pwq, "{}: HOPS(NVM) should beat x86(PWQ)", r.run.name);
        assert!(hops_pwq <= hops, "{}", r.run.name);
        assert!(
            ideal <= hops_pwq + 1e-9,
            "{}: IDEAL is the floor",
            r.run.name
        );
    }

    // Consequence 10 shape: PMFS apps are NT-dominated; Mnemosyne apps
    // substantially NT; NVML/undo apps are cacheable.
    let nt = |name: &str| {
        results
            .iter()
            .find(|r| r.run.name == name)
            .and_then(|r| r.analysis.nt_fraction)
            .unwrap_or(0.0)
    };
    assert!(nt("nfs") > 0.8, "PMFS is NT-dominated: {}", nt("nfs"));
    assert!(nt("vacation") > 0.4, "Mnemosyne uses NTIs for its redo log");
    assert!(nt("redis") < 0.05, "NVML-style undo logging is cacheable");
}

#[test]
fn deterministic_across_runs() {
    let cfg = SuiteConfig {
        scale: 0.01,
        seed: 7,
        parallelism: 1,
        worker_threads: 4,
    };
    let a = run_app("hashmap", &cfg);
    let b = run_app("hashmap", &cfg);
    assert_eq!(a.run.events.len(), b.run.events.len());
    assert_eq!(a.run.stats, b.run.stats);
    assert_eq!(a.run.duration_ns, b.run.duration_ns);
}

#[test]
fn different_seeds_differ() {
    // Two seeds can legitimately produce the same *number* of events;
    // what must differ is the event stream itself (and, with it, the
    // access statistics).
    let a = run_app(
        "hashmap",
        &SuiteConfig {
            scale: 0.01,
            seed: 1,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let b = run_app(
        "hashmap",
        &SuiteConfig {
            scale: 0.01,
            seed: 2,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    assert_ne!(
        a.run.events, b.run.events,
        "seeds 1 and 2 produced identical traces"
    );
    assert!(
        a.run.stats != b.run.stats || a.run.duration_ns != b.run.duration_ns,
        "seeds 1 and 2 produced identical run statistics"
    );
}

#[test]
fn parallel_suite_matches_serial_runner() {
    // The parallel runner must be a pure wall-clock optimization:
    // per-app traces, access statistics, and simulated durations all
    // bit-identical to the serial runner, in the same (Table 1) order.
    let serial_cfg = SuiteConfig {
        scale: 0.008,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let parallel_cfg = SuiteConfig {
        parallelism: 4,
        worker_threads: 4,
        ..serial_cfg
    };
    let serial = whisper::suite::run_suite(&serial_cfg);
    let parallel = whisper::suite::run_suite(&parallel_cfg);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.run.name, p.run.name, "result order must be Table 1 order");
        assert_eq!(s.run.events.len(), p.run.events.len(), "{}", s.run.name);
        assert_eq!(s.run.stats, p.run.stats, "{}", s.run.name);
        assert_eq!(s.run.duration_ns, p.run.duration_ns, "{}", s.run.name);
        assert_eq!(s.run.events, p.run.events, "{}", s.run.name);
        assert_eq!(
            s.analysis.epoch_count, p.analysis.epoch_count,
            "{}",
            s.run.name
        );
        assert_eq!(s.analysis.fig10, p.analysis.fig10, "{}", s.run.name);
    }
}

#[test]
fn streaming_analyzer_matches_legacy_functions_on_real_trace() {
    // The single-pass Analyzer must agree with the seven per-metric
    // walks on a real application trace, not just synthetic streams.
    let r = run_app(
        "nstore-ycsb",
        &SuiteConfig {
            scale: 0.01,
            seed: 42,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let epochs = analysis::split_epochs(&r.run.events);
    let report = analysis::Analyzer::analyze_events(&r.run.events);
    assert_eq!(report.epoch_count, epochs.len());
    assert_eq!(
        report.tx_stats.epochs_per_tx,
        analysis::tx_stats(&epochs).epochs_per_tx
    );
    assert_eq!(report.size_hist, analysis::epoch_size_histogram(&epochs));
    assert_eq!(report.deps, analysis::dependencies(&epochs));
    assert_eq!(report.amplification, analysis::amplification(&epochs));
    assert_eq!(report.nt_fraction, analysis::nt_fraction(&epochs));
    assert_eq!(
        report.small_singleton_fraction,
        analysis::small_singleton_fraction(&epochs)
    );
}

#[test]
fn reports_cover_every_app() {
    let cfg = SuiteConfig {
        scale: 0.008,
        seed: 3,
        parallelism: 1,
        worker_threads: 4,
    };
    let results: Vec<AppResult> = APP_NAMES.iter().map(|n| run_app(n, &cfg)).collect();
    let all = whisper::report::all(&results);
    for name in APP_NAMES {
        assert!(all.contains(name), "report missing {name}");
    }
    for heading in [
        "Table 1",
        "Figure 3",
        "Figure 4",
        "Figure 5",
        "Figure 6",
        "Figure 10",
    ] {
        assert!(all.contains(heading), "report missing {heading}");
    }
}

#[test]
fn epoch_rate_is_scale_invariant() {
    // Table 1 reports a *rate*; halving the workload should not move it
    // much (the paper's full-scale runs are reproducible at any scale).
    let small = run_app(
        "ctree",
        &SuiteConfig {
            scale: 0.01,
            seed: 9,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let large = run_app(
        "ctree",
        &SuiteConfig {
            scale: 0.04,
            seed: 9,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let ratio = small.analysis.epochs_per_sec / large.analysis.epochs_per_sec;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "epoch rate should be duration-insensitive, got ratio {ratio}"
    );
}

#[test]
fn analysis_pipeline_consistency() {
    // The same trace analyzed twice gives identical statistics, and the
    // epoch count matches fence counts.
    let r = run_app(
        "redis",
        &SuiteConfig {
            scale: 0.01,
            seed: 5,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let e1 = analysis::split_epochs(&r.run.events);
    let e2 = analysis::split_epochs(&r.run.events);
    assert_eq!(e1.len(), e2.len());
    let fences = r
        .run
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                pmtrace::EventKind::Fence | pmtrace::EventKind::DFence
            )
        })
        .count();
    assert!(e1.len() <= fences, "epochs cannot outnumber fences");
}
