//! HOPS semantics across crates: the functional persist-buffer model
//! and the timing replay must agree with the paper's Section 6 on
//! traces produced by the real substrate.

use hops::{replay, HopsConfig, HopsSystem, PersistModel, TimingConfig};
use miniprop::prelude::*;
use pmem::{AddrRange, Line};

#[test]
fn fig10_ordering_on_real_app_traces() {
    // On every simulated application's trace, the five models keep the
    // paper's order and the paper's two headline relations hold:
    // HOPS(NVM) beats x86-64(PWQ), and the PWQ helps HOPS far less
    // than it helps x86-64.
    for name in whisper::suite::SIM_APPS {
        let cfg = whisper::suite::SuiteConfig {
            scale: 0.015,
            seed: 11,
            parallelism: 1,
            worker_threads: 4,
        };
        let r = whisper::suite::run_app(name, &cfg);
        let bars = &r.analysis.fig10;
        if name == "redis" {
            // The interleaved log-free dict leaves almost no
            // persistence cost on the trace, so the four real
            // mechanisms tie within noise (EXPERIMENTS.md deviation
            // 6); only the no-persistence IDEAL bound must still win.
            let ideal = bars[4].1;
            for (model, runtime) in &bars[..4] {
                assert!(
                    ideal <= *runtime,
                    "{name}: IDEAL must be the fastest, but {model} ran at {runtime}"
                );
            }
            continue;
        }
        let x86_gain = bars[0].1 - bars[1].1;
        let hops_gain = bars[2].1 - bars[3].1;
        assert!(
            hops_gain < x86_gain,
            "{name}: PWQ should matter less under HOPS ({hops_gain} vs {x86_gain})"
        );
        assert!(
            bars[2].1 < bars[1].1,
            "{name}: HOPS(NVM) must beat x86(PWQ)"
        );
    }
}

#[test]
fn replay_is_deterministic() {
    let r = whisper::suite::run_app(
        "hashmap",
        &whisper::suite::SuiteConfig {
            scale: 0.01,
            seed: 3,
            parallelism: 1,
            worker_threads: 4,
        },
    );
    let t = TimingConfig::default();
    let h = HopsConfig::default();
    let a = replay(&r.run.events, &t, &h, PersistModel::HopsNvm);
    let b = replay(&r.run.events, &t, &h, PersistModel::HopsNvm);
    assert_eq!(a, b);
}

#[test]
fn bigger_pb_never_hurts() {
    let r = whisper::apps::micro::hashmap_unpaced(1500, 4);
    let t = TimingConfig::default();
    let mut last = u64::MAX;
    for entries in [4usize, 8, 16, 32, 64] {
        let h = HopsConfig {
            pb_entries: entries,
            flush_threshold: entries / 2,
            ..HopsConfig::default()
        };
        let rt = replay(r.run_events(), &t, &h, PersistModel::HopsNvm).runtime_ns;
        assert!(rt <= last, "{entries}-entry PB slower than smaller PB");
        last = rt;
    }
}

trait RunEvents {
    fn run_events(&self) -> &[pmtrace::Event];
}

impl RunEvents for whisper::apps::AppRun {
    fn run_events(&self) -> &[pmtrace::Event] {
        &self.events
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Functional model: per-thread epoch-prefix durability holds for
    /// arbitrary multi-threaded store/ofence interleavings and crash
    /// seeds.
    #[test]
    fn epoch_prefix_durability(
        script in collection::vec((0usize..3, 0u64..16, any::<bool>()), 1..40),
        crash_seed in any::<u64>(),
    ) {
        let mut sys = HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 3);
        // Per-thread: every epoch writes a fresh line with the epoch
        // index so prefixes are checkable. Threads use disjoint lines.
        let mut epoch_idx = [0u64; 3];
        let mut committed: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (tid, _key, fence) in script {
            let e = epoch_idx[tid];
            if e >= 64 {
                continue;
            }
            let line = (tid as u64 * 64 + e) * 64;
            sys.store(tid, line, &(e + 1).to_le_bytes()).unwrap();
            committed[tid].push(e);
            if fence {
                sys.ofence(tid).unwrap();
                epoch_idx[tid] += 1;
            }
        }
        let img = sys.crash(crash_seed);
        for tid in 0..3usize {
            // The durable epochs of each thread form a prefix.
            let mut seen_gap = false;
            for e in 0..64u64 {
                let addr = (tid as u64 * 64 + e) * 64;
                let v = u64::from_le_bytes(img.read_vec(addr, 8).try_into().unwrap());
                if v == 0 {
                    seen_gap = true;
                } else {
                    prop_assert!(
                        !seen_gap,
                        "thread {} epoch {} durable after a gap",
                        tid,
                        e
                    );
                    prop_assert_eq!(v, e + 1);
                }
            }
        }
    }

    /// dfence makes everything the thread wrote durable, regardless of
    /// what came before.
    #[test]
    fn dfence_drains_thread(
        writes in collection::vec((0u64..32, any::<u64>()), 1..32),
    ) {
        let mut sys = HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 2);
        for (i, (slot, val)) in writes.iter().enumerate() {
            sys.store(0, slot * 64, &val.to_le_bytes()).unwrap();
            if i % 3 == 0 {
                sys.ofence(0).unwrap();
            }
        }
        sys.dfence(0).unwrap();
        prop_assert_eq!(sys.pb_len(0).unwrap(), 0);
        // Durable state equals functional state for every written slot.
        for (slot, _) in &writes {
            let addr = slot * 64;
            let functional = sys.load_vec(addr, 8);
            let durable = sys.durable_u64(addr).to_le_bytes().to_vec();
            prop_assert_eq!(functional, durable);
        }
    }

    /// Multi-versioning: buffered version count for a line equals the
    /// number of distinct epochs that wrote it (until capacity flushes).
    #[test]
    fn multiversion_counts(epochs in 1usize..8) {
        let mut sys = HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 1);
        for e in 0..epochs {
            sys.store(0, 0x40, &(e as u64).to_le_bytes()).unwrap();
            sys.ofence(0).unwrap();
        }
        prop_assert_eq!(sys.buffered_versions(0, Line::containing(0x40)).unwrap(), epochs);
    }
}
