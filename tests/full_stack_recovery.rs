//! End-to-end recovery scenarios combining several subsystems on one
//! machine image, the way a real deployment would lay them out.

use memsim::{CrashSpec, Machine, MachineConfig, PmWriter};
use pmalloc::{BuddyAlloc, SlabBitmapAlloc};
use pmds::{CritBitTree, PHashMap, PLog, PRbTree, CRITBIT_REGION_BYTES, RBTREE_REGION_BYTES};
use pmem::AddrRange;
use pmfs::{Pmfs, PmfsConfig};
use pmtrace::Tid;
use pmtx::{RedoTxEngine, UndoTxEngine};

const TID: Tid = Tid(0);

/// A filesystem and a transactional KV store sharing the PM range:
/// a crash must be recoverable for both, independently.
#[test]
fn filesystem_and_kv_store_coexist_across_crashes() {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let fs_region = AddrRange::new(pm.base, 64 << 20);
    let log = AddrRange::new(pm.base + (64 << 20), 2 << 20);
    let heap = AddrRange::new(pm.base + (66 << 20), 32 << 20);
    let table = AddrRange::new(pm.base + (100 << 20), PHashMap::region_bytes(64));

    let mut fs = Pmfs::mkfs(&mut m, TID, fs_region, PmfsConfig::default()).unwrap();
    let mut eng = UndoTxEngine::format(&mut m, log, 4);
    let mut w = PmWriter::new(TID);
    let mut alloc = SlabBitmapAlloc::format(&mut m, &mut w, heap);
    eng.begin(&mut m, TID).unwrap();
    let map = PHashMap::create(&mut m, &mut eng, TID, table, 64).unwrap();
    eng.commit(&mut m, TID).unwrap();

    // Interleave filesystem and transactional work.
    fs.mkdir(&mut m, TID, "/db").unwrap();
    fs.create(&mut m, TID, "/db/wal").unwrap();
    for i in 0..8u8 {
        eng.begin(&mut m, TID).unwrap();
        map.insert(&mut m, &mut eng, TID, &mut alloc, &[i], &[i; 16])
            .unwrap();
        eng.commit(&mut m, TID).unwrap();
        fs.append(&mut m, TID, "/db/wal", &[i; 512]).unwrap();
    }
    // Crash with one fs op and one tx in flight.
    eng.begin(&mut m, TID).unwrap();
    map.insert(&mut m, &mut eng, TID, &mut alloc, &[99], &[1; 16])
        .unwrap();

    for seed in [1u64, 17, 33] {
        let img = Machine::from_image(MachineConfig::asplos17(), &m.durable_image())
            .crash(CrashSpec::Adversarial { seed });
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let (mut fs2, _) = Pmfs::mount(&mut m2, TID, fs_region).unwrap();
        let mut eng2 = UndoTxEngine::recover(&mut m2, TID, log, 4);
        let map2 = PHashMap::open(&mut m2, TID, table.base).unwrap();
        assert_eq!(fs2.stat(&mut m2, TID, "/db/wal").unwrap().size, 8 * 512);
        for i in 0..8u8 {
            assert_eq!(
                map2.get(&mut m2, &mut eng2, TID, &[i]),
                Some(vec![i; 16]),
                "seed {seed}"
            );
        }
        assert_eq!(
            map2.get(&mut m2, &mut eng2, TID, &[99]),
            None,
            "seed {seed}"
        );
    }
}

/// All four pmds structures over one redo engine and a buddy heap,
/// surviving a clean crash together.
#[test]
fn every_structure_recovers_from_one_image() {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let log = AddrRange::new(pm.base, 4 << 20);
    let heap = AddrRange::new(pm.base + (4 << 20), 64 << 20);
    let table = AddrRange::new(pm.base + (70 << 20), PHashMap::region_bytes(32));
    let tree_r = AddrRange::new(pm.base + (71 << 20), CRITBIT_REGION_BYTES);
    let rb_r = AddrRange::new(pm.base + (72 << 20), RBTREE_REGION_BYTES);
    let log_r = AddrRange::new(pm.base + (73 << 20), 4096);

    let mut eng = RedoTxEngine::format(&mut m, log, 4);
    let mut w = PmWriter::new(TID);
    let mut alloc = BuddyAlloc::format(&mut m, &mut w, heap);

    eng.begin(&mut m, TID).unwrap();
    let map = PHashMap::create(&mut m, &mut eng, TID, table, 32).unwrap();
    let cb = CritBitTree::create(&mut m, &mut eng, TID, tree_r).unwrap();
    let rb = PRbTree::create(&mut m, &mut eng, TID, &mut alloc, rb_r).unwrap();
    let plog = PLog::create(&mut m, &mut eng, TID, log_r).unwrap();
    eng.commit(&mut m, TID).unwrap();

    for i in 0..12u64 {
        eng.begin(&mut m, TID).unwrap();
        map.insert(&mut m, &mut eng, TID, &mut alloc, &i.to_le_bytes(), b"map")
            .unwrap();
        cb.insert(&mut m, &mut eng, TID, &mut alloc, &i.to_be_bytes(), i)
            .unwrap();
        rb.insert(&mut m, &mut eng, TID, &mut alloc, i, i * 2)
            .unwrap();
        plog.append(&mut m, &mut eng, TID, &i.to_le_bytes())
            .unwrap();
        eng.commit(&mut m, TID).unwrap();
    }

    let img = m.crash(CrashSpec::DropVolatile);
    let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
    let mut eng2 = RedoTxEngine::recover(&mut m2, TID, log, 4);
    let _alloc2 = BuddyAlloc::recover(&mut m2, TID, heap);
    let map2 = PHashMap::open(&mut m2, TID, table.base).unwrap();
    let cb2 = CritBitTree::open(&mut m2, TID, tree_r.base).unwrap();
    let rb2 = PRbTree::open(&mut m2, TID, rb_r.base).unwrap();
    let plog2 = PLog::open(&mut m2, TID, log_r).unwrap();

    assert_eq!(map2.len(&mut m2, TID), 12);
    assert_eq!(cb2.len(&mut m2, TID), 12);
    assert_eq!(rb2.len(&mut m2, TID), 12);
    assert_eq!(plog2.records(&mut m2, TID).len(), 12);
    rb2.check_invariants(&mut m2, TID).unwrap();
    for i in 0..12u64 {
        assert_eq!(
            map2.get(&mut m2, &mut eng2, TID, &i.to_le_bytes())
                .as_deref(),
            Some(&b"map"[..])
        );
        assert_eq!(cb2.get(&mut m2, &mut eng2, TID, &i.to_be_bytes()), Some(i));
        assert_eq!(rb2.get(&mut m2, &mut eng2, TID, i), Some(i * 2));
    }
}

/// The simulated endurance counters see media writes, not program
/// stores: repeated unflushed writes to one line cost one media write
/// at the fence.
#[test]
fn media_write_accounting() {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let mut w = PmWriter::new(TID);
    for i in 0..100u64 {
        w.write_u64(&mut m, pm.base, i, pmtrace::Category::UserData);
    }
    assert_eq!(m.media_line_writes(), 0, "no media traffic before a fence");
    w.durability_fence(&mut m);
    assert_eq!(
        m.media_line_writes(),
        1,
        "100 stores, one line written back"
    );
}
