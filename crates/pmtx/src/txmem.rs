//! Engine-independent transactional memory access.

use crate::{RedoTxEngine, TxError, UndoTxEngine};
use memsim::Machine;
use pmem::Addr;
use pmtrace::{Category, Tid};

/// Uniform read/write interface over an open transaction, implemented
/// by both engines so persistent data structures (the `pmds` crate) can
/// be written once and mounted over either library — the way WHISPER
/// runs hash tables over NVML and red-black trees over Mnemosyne.
///
/// Reads have read-your-writes semantics: an undo engine writes in
/// place, a redo engine overlays its volatile buffer.
pub trait TxMem {
    /// Transactional read of `len` bytes.
    fn tx_read(&mut self, m: &mut Machine, tid: Tid, addr: Addr, len: usize) -> Vec<u8>;

    /// Transactional write.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`TxError`]s (no open transaction, log
    /// capacity).
    fn tx_write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError>;

    /// Transactional little-endian `u64` read.
    fn tx_read_u64(&mut self, m: &mut Machine, tid: Tid, addr: Addr) -> u64 {
        let v = self.tx_read(m, tid, addr, 8);
        u64::from_le_bytes(v.try_into().expect("8 bytes"))
    }

    /// Transactional little-endian `u64` write.
    ///
    /// # Errors
    ///
    /// As for [`TxMem::tx_write`].
    fn tx_write_u64(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        val: u64,
        cat: Category,
    ) -> Result<(), TxError> {
        self.tx_write(m, tid, addr, &val.to_le_bytes(), cat)
    }

    /// Transactional little-endian `u32` read.
    fn tx_read_u32(&mut self, m: &mut Machine, tid: Tid, addr: Addr) -> u32 {
        let v = self.tx_read(m, tid, addr, 4);
        u32::from_le_bytes(v.try_into().expect("4 bytes"))
    }

    /// Transactional little-endian `u32` write.
    ///
    /// # Errors
    ///
    /// As for [`TxMem::tx_write`].
    fn tx_write_u32(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        val: u32,
        cat: Category,
    ) -> Result<(), TxError> {
        self.tx_write(m, tid, addr, &val.to_le_bytes(), cat)
    }
}

impl TxMem for UndoTxEngine {
    fn tx_read(&mut self, m: &mut Machine, tid: Tid, addr: Addr, len: usize) -> Vec<u8> {
        // Undo logging writes in place; plain loads are current.
        m.load_vec(tid, addr, len)
    }

    fn tx_write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError> {
        self.set(m, tid, addr, bytes, cat)
    }
}

impl TxMem for RedoTxEngine {
    fn tx_read(&mut self, m: &mut Machine, tid: Tid, addr: Addr, len: usize) -> Vec<u8> {
        self.read(m, tid, addr, len)
    }

    fn tx_write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError> {
        self.write(m, tid, addr, bytes, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;
    use pmem::AddrRange;

    fn setup() -> (Machine, Addr) {
        let m = Machine::new(MachineConfig::asplos17());
        let data = m.config().map.pm.base + (1 << 20);
        (m, data)
    }

    #[test]
    fn both_engines_read_their_writes() {
        let (mut m, data) = setup();
        let log = AddrRange::new(m.config().map.pm.base, 1 << 20);
        let tid = Tid(0);

        let mut undo = UndoTxEngine::format(&mut m, log, 4);
        undo.begin(&mut m, tid).unwrap();
        undo.tx_write_u64(&mut m, tid, data, 11, Category::UserData)
            .unwrap();
        assert_eq!(undo.tx_read_u64(&mut m, tid, data), 11);
        undo.commit(&mut m, tid).unwrap();

        let (mut m, data) = setup();
        let log = AddrRange::new(m.config().map.pm.base, 1 << 20);
        let mut redo = RedoTxEngine::format(&mut m, log, 4);
        redo.begin(&mut m, tid).unwrap();
        redo.tx_write_u64(&mut m, tid, data, 22, Category::UserData)
            .unwrap();
        assert_eq!(redo.tx_read_u64(&mut m, tid, data), 22);
        redo.commit(&mut m, tid).unwrap();
        assert_eq!(m.load_u64(tid, data), 22);
    }

    #[test]
    fn u32_helpers() {
        let (mut m, data) = setup();
        let log = AddrRange::new(m.config().map.pm.base, 1 << 20);
        let tid = Tid(0);
        let mut undo = UndoTxEngine::format(&mut m, log, 4);
        undo.begin(&mut m, tid).unwrap();
        undo.tx_write_u32(&mut m, tid, data, 0xdead_beef, Category::UserData)
            .unwrap();
        assert_eq!(undo.tx_read_u32(&mut m, tid, data), 0xdead_beef);
        undo.commit(&mut m, tid).unwrap();
    }
}
