//! Per-thread persistent log slots shared by both engines.

use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

use crate::{ClearPolicy, TxError};

pub(crate) const SLOT_MAGIC: u64 = 0x504d_5458_4c4f_4721; // "PMTXLOG!"
pub(crate) const ENTRY_VALID: u32 = 0xabcd_1234;
/// Fixed log record: header (valid u32, len u32, addr u64, seq u64)
/// plus payload.
const REC_BYTES: u64 = 512;
const REC_HDR: u64 = 24;
/// Largest single loggable write.
pub(crate) const MAX_ENTRY_DATA: usize = (REC_BYTES - REC_HDR) as usize;

/// Durable status of a per-thread transaction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// No transaction in flight; log logically empty.
    Idle,
    /// A transaction is writing; on crash, an undo log rolls back and a
    /// redo log is discarded.
    Active,
    /// Commit marker durable; on crash, a redo log replays and an undo
    /// log is simply discarded.
    Committed,
}

impl TxStatus {
    pub(crate) fn to_u32(self) -> u32 {
        match self {
            TxStatus::Idle => 0,
            TxStatus::Active => 1,
            TxStatus::Committed => 2,
        }
    }

    pub(crate) fn from_u32(v: u32) -> TxStatus {
        match v {
            1 => TxStatus::Active,
            2 => TxStatus::Committed,
            _ => TxStatus::Idle,
        }
    }
}

/// One thread's persistent log: a descriptor line followed by a *ring*
/// of fixed-size records, as in Mnemosyne's and NVML's log buffers.
/// Because the append cursor keeps advancing, consecutive transactions
/// write fresh lines — a record's line is only revisited by its own
/// commit-time clear (the intra-transaction self-dependency the paper
/// attributes to "NVML sets and clears its log entries") and, much
/// later, by a wrapped-around append.
#[derive(Debug, Clone)]
pub struct LogSlot {
    base: Addr,
    size: u64,
    n_recs: u64,
    /// Volatile append cursor (record index). Recovery rescans.
    cursor: u64,
    /// Monotone record sequence (orders recovery replay/rollback).
    seq: u64,
    /// Volatile index of live records: (record addr, target addr, len).
    entries: Vec<(Addr, Addr, u32)>,
}

impl LogSlot {
    pub(crate) fn new(base: Addr, size: u64) -> LogSlot {
        assert!(
            size >= 64 + 4 * REC_BYTES,
            "log slot must hold at least 4 records"
        );
        LogSlot {
            base,
            size,
            n_recs: (size - 64) / REC_BYTES,
            cursor: 0,
            seq: 1,
            entries: Vec::new(),
        }
    }

    /// First address of this slot (descriptor line).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Slot capacity in bytes (descriptor + record ring).
    pub fn size_bytes(&self) -> u64 {
        self.size
    }

    fn rec_addr(&self, idx: u64) -> Addr {
        self.base + 64 + idx * REC_BYTES
    }

    /// Format the descriptor (status Idle) persistently.
    pub(crate) fn format(&self, m: &mut Machine, tid: Tid) {
        let mut w = PmWriter::new(tid);
        w.write_u64(m, self.base, SLOT_MAGIC, Category::LogMeta);
        w.write_u32(m, self.base + 8, TxStatus::Idle.to_u32(), Category::LogMeta);
        w.ordering_fence(m);
    }

    /// Durable status read.
    pub(crate) fn status(&self, m: &mut Machine, tid: Tid) -> TxStatus {
        TxStatus::from_u32(m.load_u32(tid, self.base + 8))
    }

    /// Persist a status change in its own epoch (a `LogMeta` singleton).
    pub(crate) fn set_status(&self, m: &mut Machine, w: &mut PmWriter, status: TxStatus) {
        w.write_u32(m, self.base + 8, status.to_u32(), Category::LogMeta);
        if status == TxStatus::Committed {
            w.durability_fence(m);
        } else {
            w.ordering_fence(m);
        }
    }

    /// Append a record. `nt` selects non-temporal stores (Mnemosyne
    /// redo) vs. cacheable stores + flushes (NVML undo). Always ends
    /// with an ordering fence — one epoch per log record.
    pub(crate) fn append(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        target: Addr,
        data: &[u8],
        nt: bool,
        cat: Category,
    ) -> Result<(), TxError> {
        if data.len() > MAX_ENTRY_DATA {
            return Err(TxError::EntryTooLarge { len: data.len() });
        }
        if self.entries.len() as u64 >= self.n_recs {
            return Err(TxError::LogFull);
        }
        let at = self.rec_addr(self.cursor);
        let mut header = [0u8; REC_HDR as usize];
        header[0..4].copy_from_slice(&ENTRY_VALID.to_le_bytes());
        header[4..8].copy_from_slice(&(data.len() as u32).to_le_bytes());
        header[8..16].copy_from_slice(&target.to_le_bytes());
        header[16..24].copy_from_slice(&self.seq.to_le_bytes());
        if nt {
            w.write_nt(m, at, &header, cat);
            w.write_nt(m, at + REC_HDR, data, cat);
        } else {
            w.write(m, at, &header, cat);
            w.write(m, at + REC_HDR, data, cat);
        }
        w.ordering_fence(m);
        self.entries.push((at, target, data.len() as u32));
        self.cursor = (self.cursor + 1) % self.n_recs;
        self.seq += 1;
        Ok(())
    }

    /// Number of live (uncleared) entries in this slot.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Replay targets: `(target addr, data)` for every live entry, in
    /// append order, read back from PM.
    pub(crate) fn read_entries(&self, m: &mut Machine, tid: Tid) -> Vec<(Addr, Vec<u8>)> {
        self.entries
            .iter()
            .map(|&(at, target, len)| (target, m.load_vec(tid, at + REC_HDR, len as usize)))
            .collect()
    }

    /// Clear every entry: per [`ClearPolicy::PerEntry`], "each ... in
    /// its own epoch" (Section 5.1's singleton factory); per
    /// [`ClearPolicy::Batched`], all under one fence.
    pub(crate) fn clear_entries(&mut self, m: &mut Machine, w: &mut PmWriter, policy: ClearPolicy) {
        let entries = std::mem::take(&mut self.entries);
        let any = !entries.is_empty();
        for (at, _, _) in entries {
            w.write_u32(m, at, 0, Category::LogMeta);
            if policy == ClearPolicy::PerEntry {
                w.ordering_fence(m);
            }
        }
        if policy == ClearPolicy::Batched && any {
            w.ordering_fence(m);
        }
    }

    /// Recovery-time scan of durable entries: every valid record in the
    /// ring, in append (sequence) order.
    pub(crate) fn scan_durable(&self, m: &mut Machine, tid: Tid) -> Vec<(Addr, Vec<u8>)> {
        let mut found: Vec<(u64, Addr, Vec<u8>)> = Vec::new();
        for idx in 0..self.n_recs {
            let at = self.rec_addr(idx);
            if m.load_u32(tid, at) != ENTRY_VALID {
                continue;
            }
            let len = (m.load_u32(tid, at + 4) as usize).min(MAX_ENTRY_DATA);
            let target = m.load_u64(tid, at + 8);
            let seq = m.load_u64(tid, at + 16);
            let data = m.load_vec(tid, at + REC_HDR, len);
            found.push((seq, target, data));
        }
        found.sort_unstable_by_key(|(seq, _, _)| *seq);
        found.into_iter().map(|(_, t, d)| (t, d)).collect()
    }

    /// Clear every durable record in the ring (recovery truncation).
    pub(crate) fn clear_durable(&self, m: &mut Machine, w: &mut PmWriter) {
        let tid = w.tid();
        for idx in 0..self.n_recs {
            let at = self.rec_addr(idx);
            if m.load_u32(tid, at) == ENTRY_VALID {
                w.write_u32(m, at, 0, Category::LogMeta);
            }
        }
        w.ordering_fence(m);
    }

    /// Rebuild the volatile view of a slot after recovery decided the
    /// log is logically empty.
    pub(crate) fn reset_volatile(&mut self) {
        self.entries.clear();
        self.cursor = 0;
    }
}

/// Split a region into `threads` equal slots.
pub(crate) fn carve_slots(region: AddrRange, threads: u32) -> Vec<LogSlot> {
    assert!(threads > 0, "need at least one thread");
    let per = region.len / threads as u64 / 64 * 64;
    assert!(
        per >= 64 + 4 * REC_BYTES,
        "log region too small: {} bytes / {threads} threads",
        region.len
    );
    (0..threads as u64)
        .map(|i| LogSlot::new(region.base + i * per, per))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;

    fn setup() -> (Machine, LogSlot) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let slot = LogSlot::new(base, 64 * 1024);
        slot.format(&mut m, Tid(0));
        (m, slot)
    }

    #[test]
    fn format_sets_idle() {
        let (mut m, slot) = setup();
        assert_eq!(slot.status(&mut m, Tid(0)), TxStatus::Idle);
    }

    #[test]
    fn append_and_scan_round_trip() {
        let (mut m, mut slot) = setup();
        let mut w = PmWriter::new(Tid(0));
        slot.append(
            &mut m,
            &mut w,
            0x1_2345_6780,
            b"hello",
            true,
            Category::RedoLog,
        )
        .unwrap();
        slot.append(
            &mut m,
            &mut w,
            0x1_2345_6800,
            b"world!!!",
            false,
            Category::UndoLog,
        )
        .unwrap();
        let got = slot.scan_durable(&mut m, Tid(0));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0x1_2345_6780, b"hello".to_vec()));
        assert_eq!(got[1], (0x1_2345_6800, b"world!!!".to_vec()));
    }

    #[test]
    fn clear_entries_stops_scan() {
        let (mut m, mut slot) = setup();
        let mut w = PmWriter::new(Tid(0));
        slot.append(
            &mut m,
            &mut w,
            0x1_0000_0000,
            &[1; 16],
            false,
            Category::UndoLog,
        )
        .unwrap();
        slot.clear_entries(&mut m, &mut w, ClearPolicy::PerEntry);
        let got = slot.scan_durable(&mut m, Tid(0));
        assert!(got.is_empty());
        assert_eq!(slot.entry_count(), 0);
    }

    #[test]
    fn ring_appends_use_fresh_records_until_wrap() {
        let (mut m, mut slot) = setup();
        let mut w = PmWriter::new(Tid(0));
        let n = slot.n_recs;
        let mut addrs = std::collections::HashSet::new();
        for i in 0..n {
            slot.append(
                &mut m,
                &mut w,
                0x1_0000_0000 + i * 8,
                &[7; 8],
                true,
                Category::RedoLog,
            )
            .unwrap();
            addrs.insert(slot.entries.last().unwrap().0);
            slot.clear_entries(&mut m, &mut w, ClearPolicy::PerEntry);
        }
        assert_eq!(
            addrs.len() as u64,
            n,
            "every record slot used once before wrap"
        );
        // Next append wraps to the first record.
        slot.append(
            &mut m,
            &mut w,
            0x1_0000_0000,
            &[9; 8],
            true,
            Category::RedoLog,
        )
        .unwrap();
        assert_eq!(slot.entries[0].0, slot.rec_addr(0));
    }

    #[test]
    fn reuse_after_clear_does_not_resurrect_old_entries() {
        let (mut m, mut slot) = setup();
        let mut w = PmWriter::new(Tid(0));
        for _ in 0..3 {
            slot.append(
                &mut m,
                &mut w,
                0x1_0000_0000,
                &[7; 32],
                true,
                Category::RedoLog,
            )
            .unwrap();
        }
        slot.clear_entries(&mut m, &mut w, ClearPolicy::PerEntry);
        slot.append(
            &mut m,
            &mut w,
            0x1_0000_0040,
            &[9; 8],
            true,
            Category::RedoLog,
        )
        .unwrap();
        let got = slot.scan_durable(&mut m, Tid(0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0x1_0000_0040);
    }

    #[test]
    fn oversized_entry_rejected() {
        let (mut m, mut slot) = setup();
        let mut w = PmWriter::new(Tid(0));
        let big = vec![0u8; MAX_ENTRY_DATA + 1];
        assert_eq!(
            slot.append(
                &mut m,
                &mut w,
                0x1_0000_0000,
                &big,
                false,
                Category::UndoLog
            ),
            Err(TxError::EntryTooLarge {
                len: MAX_ENTRY_DATA + 1
            })
        );
    }

    #[test]
    fn log_full_detected() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let mut slot = LogSlot::new(base, 64 + 4 * REC_BYTES);
        slot.format(&mut m, Tid(0));
        let mut w = PmWriter::new(Tid(0));
        for _ in 0..4 {
            slot.append(
                &mut m,
                &mut w,
                0x1_0000_0000,
                &[0; 64],
                false,
                Category::UndoLog,
            )
            .unwrap();
        }
        assert_eq!(
            slot.append(
                &mut m,
                &mut w,
                0x1_0000_0000,
                &[0; 64],
                false,
                Category::UndoLog
            ),
            Err(TxError::LogFull)
        );
    }

    #[test]
    fn status_transitions_are_durable() {
        let (mut m, slot) = setup();
        let mut w = PmWriter::new(Tid(0));
        slot.set_status(&mut m, &mut w, TxStatus::Active);
        slot.set_status(&mut m, &mut w, TxStatus::Committed);
        let img = m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let slot2 = LogSlot::new(slot.base(), 64 * 1024);
        assert_eq!(slot2.status(&mut m2, Tid(0)), TxStatus::Committed);
    }

    #[test]
    fn scan_orders_by_sequence_across_wrap() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let mut slot = LogSlot::new(base, 64 + 4 * REC_BYTES);
        slot.format(&mut m, Tid(0));
        let mut w = PmWriter::new(Tid(0));
        // Fill, clear, then append 3 (wrapping cursor position).
        for _ in 0..3 {
            slot.append(&mut m, &mut w, 1 << 33, &[0; 8], true, Category::RedoLog)
                .unwrap();
        }
        slot.clear_entries(&mut m, &mut w, ClearPolicy::PerEntry);
        for i in 0..3u64 {
            slot.append(
                &mut m,
                &mut w,
                (1 << 33) + i,
                &[i as u8; 8],
                true,
                Category::RedoLog,
            )
            .unwrap();
        }
        let got = slot.scan_durable(&mut m, Tid(0));
        let targets: Vec<Addr> = got.iter().map(|(t, _)| *t).collect();
        assert_eq!(targets, vec![1 << 33, (1 << 33) + 1, (1 << 33) + 2]);
    }

    #[test]
    fn carve_slots_disjoint() {
        let region = AddrRange::new(4 << 30, 1 << 20);
        let slots = carve_slots(region, 4);
        assert_eq!(slots.len(), 4);
        for pair in slots.windows(2) {
            assert!(pair[0].base() + pair[0].size_bytes() <= pair[1].base());
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_region_panics() {
        carve_slots(AddrRange::new(0, 1024), 4);
    }
}
