//! The "ideal" 3-epoch transaction of Kolli et al.
//!
//! Section 5.1 observes that "current software is far from an ideal
//! high-performance transaction modeled by Kolli et al. [28] as
//! containing just 3 epochs". This engine implements that ideal —
//! deferred commit with batched logging — as the paper's reference
//! point, so the ablation benches can measure exactly how far the
//! Mnemosyne- and NVML-style engines are from it:
//!
//! 1. **Epoch 1** — all redo-log records stream out with non-temporal
//!    stores, one fence for the whole batch.
//! 2. **Epoch 2** — the commit marker (status + generation in a single
//!    8-byte atomic write) becomes durable.
//! 3. **Epoch 3** — in-place data writebacks, flushed and fenced once.
//!
//! Log records are never explicitly cleared: each carries the
//! transaction's generation number, and recovery only replays records
//! whose generation matches a durable commit marker. Replaying such
//! records is idempotent (their writebacks completed before the next
//! transaction began), so stale records overwritten mid-ring are
//! harmless.

use crate::TxError;
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const SLOT_MAGIC: u64 = 0x4d49_4e54_5833_4550; // "MINTX3EP"
const REC_VALID: u32 = 0x3e90_cafe;
const REC_BYTES: u64 = 512;
const REC_HDR: u64 = 24; // valid u32, len u32, addr u64, gen u64
const STATUS_COMMITTED: u32 = 2;

/// Largest single loggable write.
pub const MIN_TX_MAX_DATA: usize = (REC_BYTES - REC_HDR) as usize;

#[derive(Debug)]
struct Slot {
    base: Addr,
    n_recs: u64,
    cursor: u64,
}

#[derive(Debug)]
struct ActiveMin {
    id: pmtrace::TxId,
    writes: Vec<(Addr, Vec<u8>, Category)>,
}

/// Deferred-commit transactions with exactly three epochs each.
///
/// Same read-your-writes interface as [`crate::RedoTxEngine`]; see the
/// module docs for the protocol.
#[derive(Debug)]
pub struct MinTxEngine {
    region: AddrRange,
    slots: Vec<Slot>,
    /// Per-thread generation counters (persisted in the commit marker).
    gens: Vec<u64>,
    active: Vec<Option<ActiveMin>>,
}

impl MinTxEngine {
    /// Format a fresh engine whose per-thread logs carve up `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold four records per thread.
    pub fn format(m: &mut Machine, region: AddrRange, threads: u32) -> MinTxEngine {
        crate::check_engine_threads(m, threads);
        let per = region.len / threads as u64 / 64 * 64;
        assert!(per >= 64 + 4 * REC_BYTES, "log region too small");
        let slots: Vec<Slot> = (0..threads as u64)
            .map(|i| Slot {
                base: region.base + i * per,
                n_recs: (per - 64) / REC_BYTES,
                cursor: 0,
            })
            .collect();
        for (i, s) in slots.iter().enumerate() {
            let mut w = PmWriter::new(Tid(i as u32));
            w.write_u64(m, s.base, SLOT_MAGIC, Category::LogMeta);
            // status u32 = 0, gen u32 = 0 in one word.
            w.write_u64(m, s.base + 8, 0, Category::LogMeta);
            w.ordering_fence(m);
        }
        MinTxEngine {
            region,
            slots,
            gens: vec![1; threads as usize],
            active: (0..threads).map(|_| None).collect(),
        }
    }

    /// Recover: for each slot whose marker is durable, replay the
    /// records of the committed generation (idempotent), then continue
    /// with the next generation.
    pub fn recover(m: &mut Machine, tid: Tid, region: AddrRange, threads: u32) -> MinTxEngine {
        crate::check_engine_threads(m, threads);
        let per = region.len / threads as u64 / 64 * 64;
        let slots: Vec<Slot> = (0..threads as u64)
            .map(|i| Slot {
                base: region.base + i * per,
                n_recs: (per - 64) / REC_BYTES,
                cursor: 0,
            })
            .collect();
        let mut gens = Vec::with_capacity(threads as usize);
        let mut w = PmWriter::new(tid);
        for s in &slots {
            let marker = m.load_u64(tid, s.base + 8);
            let status = (marker & 0xffff_ffff) as u32;
            let gen = marker >> 32;
            if status == STATUS_COMMITTED && gen > 0 {
                // Replay every record of this generation, ordered by
                // ring position (within one tx the cursor only moves
                // forward, and one generation never wraps past itself).
                for idx in 0..s.n_recs {
                    let at = s.base + 64 + idx * REC_BYTES;
                    if m.load_u32(tid, at) != REC_VALID {
                        continue;
                    }
                    let rgen = m.load_u64(tid, at + 16);
                    if rgen != gen {
                        continue;
                    }
                    let len = (m.load_u32(tid, at + 4) as usize).min(MIN_TX_MAX_DATA);
                    let target = m.load_u64(tid, at + 8);
                    let data = m.load_vec(tid, at + REC_HDR, len);
                    w.write(m, target, &data, Category::UserData);
                }
                w.durability_fence(m);
            }
            gens.push(gen + 1);
        }
        MinTxEngine {
            region,
            slots,
            gens,
            active: (0..threads).map(|_| None).collect(),
        }
    }

    /// The log region.
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// The validated slot index for `tid`.
    fn slot_of(&self, tid: Tid) -> Result<usize, TxError> {
        crate::slot_of(tid, self.active.len())
    }

    /// Start a transaction.
    ///
    /// # Errors
    ///
    /// [`TxError::NestedTx`] if one is already open on this thread.
    pub fn begin(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        if self.active[t].is_some() {
            return Err(TxError::NestedTx);
        }
        let id = m.fresh_tx_id(tid);
        m.tx_begin(tid, id);
        self.active[t] = Some(ActiveMin {
            id,
            writes: Vec::new(),
        });
        Ok(())
    }

    /// Buffer a transactional write (volatile until commit).
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction;
    /// [`TxError::EntryTooLarge`]/[`TxError::LogFull`] on capacity.
    pub fn write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let active = self.active[t].as_mut().ok_or(TxError::NoTx)?;
        if bytes.len() > MIN_TX_MAX_DATA {
            return Err(TxError::EntryTooLarge { len: bytes.len() });
        }
        if active.writes.len() as u64 >= self.slots[t].n_recs {
            return Err(TxError::LogFull);
        }
        let _ = m; // buffered only; nothing touches PM until commit
        active.writes.push((addr, bytes.to_vec(), cat));
        Ok(())
    }

    /// Buffered `u64` write.
    ///
    /// # Errors
    ///
    /// As for [`MinTxEngine::write`].
    pub fn write_u64(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        val: u64,
        cat: Category,
    ) -> Result<(), TxError> {
        self.write(m, tid, addr, &val.to_le_bytes(), cat)
    }

    /// Read with read-your-writes semantics.
    pub fn read(&mut self, m: &mut Machine, tid: Tid, addr: Addr, len: usize) -> Vec<u8> {
        // A tid without a machine slot cannot account a load (and can
        // never hold buffered writes) — degrade to zeroes instead of
        // panicking deep in the per-thread dirty state.
        let mut data = match m.validate_tid(tid) {
            Ok(()) => m.load_vec(tid, addr, len),
            Err(_) => vec![0; len],
        };
        // An out-of-range tid has no buffered writes to overlay.
        if let Some(active) = self.active.get(tid.0 as usize).and_then(Option::as_ref) {
            for (waddr, wdata, _) in &active.writes {
                let (ws, we) = (*waddr, *waddr + wdata.len() as u64);
                let (rs, re) = (addr, addr + len as u64);
                if ws < re && rs < we {
                    let lo = ws.max(rs);
                    let hi = we.min(re);
                    data[(lo - rs) as usize..(hi - rs) as usize]
                        .copy_from_slice(&wdata[(lo - ws) as usize..(hi - ws) as usize]);
                }
            }
        }
        data
    }

    /// Commit in exactly three epochs.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction.
    pub fn commit(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let active = self.active[t].take().ok_or(TxError::NoTx)?;
        let gen = self.gens[t];
        let mut w = PmWriter::new(tid);
        // Epoch 1: every log record, one fence.
        {
            let slot = &mut self.slots[t];
            for (addr, data, _) in &active.writes {
                let at = slot.base + 64 + slot.cursor * REC_BYTES;
                let mut hdr = [0u8; REC_HDR as usize];
                hdr[0..4].copy_from_slice(&REC_VALID.to_le_bytes());
                hdr[4..8].copy_from_slice(&(data.len() as u32).to_le_bytes());
                hdr[8..16].copy_from_slice(&addr.to_le_bytes());
                hdr[16..24].copy_from_slice(&gen.to_le_bytes());
                w.write_nt(m, at, &hdr, Category::RedoLog);
                w.write_nt(m, at + REC_HDR, data, Category::RedoLog);
                slot.cursor = (slot.cursor + 1) % slot.n_recs;
            }
            if !active.writes.is_empty() {
                w.ordering_fence(m);
            }
        }
        // Epoch 2: the commit marker (status | gen<<32), atomically.
        let marker = (STATUS_COMMITTED as u64) | (gen << 32);
        w.write_u64(m, self.slots[t].base + 8, marker, Category::LogMeta);
        w.ordering_fence(m);
        // Epoch 3: in-place data, flushed, durable.
        for (addr, data, cat) in &active.writes {
            w.write(m, *addr, data, *cat);
        }
        w.durability_fence(m);
        self.gens[t] = gen + 1;
        m.tx_end(tid, active.id);
        Ok(())
    }

    /// Abort: drop the buffer; PM was never touched.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction.
    pub fn abort(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let active = self.active[t].take().ok_or(TxError::NoTx)?;
        m.tx_end(tid, active.id);
        Ok(())
    }
}

impl crate::TxMem for MinTxEngine {
    fn tx_read(&mut self, m: &mut Machine, tid: Tid, addr: Addr, len: usize) -> Vec<u8> {
        self.read(m, tid, addr, len)
    }

    fn tx_write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError> {
        self.write(m, tid, addr, bytes, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};
    use pmtrace::analysis;

    fn setup() -> (Machine, MinTxEngine, Addr) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 1 << 20);
        let eng = MinTxEngine::format(&mut m, log, 4);
        (m, eng, pm.base + (1 << 20))
    }

    #[test]
    fn out_of_range_tid_is_a_typed_error_on_every_entry_point() {
        let (mut m, mut eng, data) = setup();
        let bad = Tid(4);
        let err = TxError::BadTid {
            tid: bad,
            threads: 4,
        };
        assert_eq!(eng.begin(&mut m, bad), Err(err));
        assert_eq!(
            eng.write(&mut m, bad, data, &[1u8; 8], Category::UserData),
            Err(err)
        );
        assert_eq!(eng.commit(&mut m, bad), Err(err));
        assert_eq!(eng.abort(&mut m, bad), Err(err));
        assert_eq!(eng.read(&mut m, bad, data, 8), vec![0u8; 8]);
        eng.begin(&mut m, Tid(3)).unwrap();
        eng.commit(&mut m, Tid(3)).unwrap();
    }

    #[test]
    fn exactly_three_epochs_regardless_of_size() {
        for writes in [1usize, 4, 16] {
            let (mut m, mut eng, data) = setup();
            let tid = Tid(0);
            m.trace_mut().clear();
            eng.begin(&mut m, tid).unwrap();
            for i in 0..writes as u64 {
                eng.write_u64(&mut m, tid, data + i * 64, i, Category::UserData)
                    .unwrap();
            }
            eng.commit(&mut m, tid).unwrap();
            let epochs = analysis::split_epochs(m.trace().events());
            assert_eq!(epochs.len(), 3, "{writes}-write tx must be 3 epochs");
        }
    }

    #[test]
    fn commit_makes_data_durable() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 77, Category::UserData)
            .unwrap();
        assert_eq!(m.load_u64(tid, data), 0, "deferred: nothing in place yet");
        assert_eq!(eng.read(&mut m, tid, data, 8), 77u64.to_le_bytes());
        eng.commit(&mut m, tid).unwrap();
        assert!(m.is_durable(data, 8));
        assert_eq!(m.load_u64(tid, data), 77);
    }

    #[test]
    fn crash_before_marker_discards() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 5, Category::UserData)
            .unwrap();
        // Crash before commit: buffer was volatile, log not written.
        let log = eng.region();
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let _ = MinTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(m2.load_u64(Tid(0), data), 0);
    }

    #[test]
    fn crash_after_marker_replays() {
        // Reproduce the window: log + marker durable, data lost.
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 1234, Category::UserData)
            .unwrap();
        // Drive the first two epochs by hand via commit, then drop the
        // in-place writes: DropVolatile after commit keeps everything
        // (commit fenced data). Instead, crash adversarially many times
        // and verify all-or-nothing with the marker as the decider.
        eng.commit(&mut m, tid).unwrap();
        for seed in 0..10 {
            let log = eng.region();
            let img = Machine::from_image(MachineConfig::asplos17(), &m.durable_image())
                .crash(CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let _ = MinTxEngine::recover(&mut m2, Tid(0), log, 4);
            assert_eq!(m2.load_u64(Tid(0), data), 1234, "seed {seed}");
        }
    }

    #[test]
    fn adversarial_crash_mid_commit_is_atomic() {
        // Two-line tx; the paper's all-or-nothing property under the
        // 3-epoch protocol.
        for seed in 0..40 {
            let (mut m, mut eng, data) = setup();
            let tid = Tid(0);
            eng.begin(&mut m, tid).unwrap();
            eng.write_u64(&mut m, tid, data, 1, Category::UserData)
                .unwrap();
            eng.write_u64(&mut m, tid, data + 64, 1, Category::UserData)
                .unwrap();
            eng.commit(&mut m, tid).unwrap();
            // Second tx: crash with everything in flight undetermined.
            eng.begin(&mut m, tid).unwrap();
            eng.write_u64(&mut m, tid, data, 2, Category::UserData)
                .unwrap();
            eng.write_u64(&mut m, tid, data + 64, 2, Category::UserData)
                .unwrap();
            // Crash in the middle of commit: emulate by crashing right
            // after the log epoch would be durable — adversarial covers
            // all interleavings of the commit path's line subsets.
            let log = eng.region();
            let img = m.crash(CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let _ = MinTxEngine::recover(&mut m2, Tid(0), log, 4);
            let a = m2.load_u64(Tid(0), data);
            let b = m2.load_u64(Tid(0), data + 64);
            assert_eq!(a, b, "seed {seed}: torn transaction {a}/{b}");
            assert!(a == 1 || a == 2, "seed {seed}: impossible value {a}");
        }
    }

    #[test]
    fn generations_do_not_resurrect_old_records() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        for i in 1..=5u64 {
            eng.begin(&mut m, tid).unwrap();
            eng.write_u64(&mut m, tid, data, i * 10, Category::UserData)
                .unwrap();
            eng.commit(&mut m, tid).unwrap();
        }
        let log = eng.region();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let _ = MinTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(
            m2.load_u64(Tid(0), data),
            50,
            "only the latest generation replays"
        );
    }

    #[test]
    fn error_paths() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        assert_eq!(eng.commit(&mut m, tid), Err(TxError::NoTx));
        assert_eq!(
            eng.write_u64(&mut m, tid, data, 1, Category::UserData),
            Err(TxError::NoTx)
        );
        eng.begin(&mut m, tid).unwrap();
        assert_eq!(eng.begin(&mut m, tid), Err(TxError::NestedTx));
        let big = vec![0u8; MIN_TX_MAX_DATA + 1];
        assert!(matches!(
            eng.write(&mut m, tid, data, &big, Category::UserData),
            Err(TxError::EntryTooLarge { .. })
        ));
        eng.abort(&mut m, tid).unwrap();
        assert_eq!(m.load_u64(tid, data), 0);
    }
}
