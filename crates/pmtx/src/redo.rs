//! Mnemosyne-style redo-log transactions.

use crate::log::{carve_slots, LogSlot, TxStatus};
use crate::{ClearPolicy, TxError};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const SCRATCH_BYTES: u64 = 64 * 1024;

#[derive(Debug)]
struct ActiveRedo {
    id: pmtrace::TxId,
    /// Volatile write set, in program order: (target, data, category).
    writes: Vec<(Addr, Vec<u8>, Category)>,
    scratch_cursor: u64,
}

/// Durable transactions via a redo log, in the style of Mnemosyne
/// (Section 3.1).
///
/// During a transaction, updates go to a volatile (DRAM) buffer and a
/// persistent redo-log entry is written with non-temporal stores,
/// ordered by an `sfence` — one epoch per record. Nothing touches the
/// target data structures until commit, when the commit marker is made
/// durable, the buffered writes are applied with cacheable stores, the
/// modified lines are flushed, and the log entries are cleared (each in
/// its own epoch). On a crash, a slot whose marker is durable replays
/// its entries; otherwise the log is discarded and the data — never
/// written in place — is untouched.
#[derive(Debug)]
pub struct RedoTxEngine {
    region: AddrRange,
    slots: Vec<LogSlot>,
    active: Vec<Option<ActiveRedo>>,
    /// Per-thread DRAM scratch base for the volatile write buffer (so
    /// buffering shows up as DRAM traffic, as in the real system).
    scratch: Vec<Addr>,
    clear_policy: ClearPolicy,
}

impl RedoTxEngine {
    /// Format a fresh engine whose per-thread logs carve up `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is too small for `threads` ≥4 KB slots.
    pub fn format(m: &mut Machine, region: AddrRange, threads: u32) -> RedoTxEngine {
        crate::check_engine_threads(m, threads);
        let slots = carve_slots(region, threads);
        for (i, s) in slots.iter().enumerate() {
            s.format(m, Tid(i as u32));
        }
        let scratch = (0..threads)
            .map(|_| m.alloc_dram(SCRATCH_BYTES, 64))
            .collect();
        RedoTxEngine {
            region,
            slots,
            active: (0..threads).map(|_| None).collect(),
            scratch,
            clear_policy: ClearPolicy::default(),
        }
    }

    /// Recover after a crash: replay slots whose commit marker is
    /// durable, discard the rest. Returns the engine, ready for new
    /// transactions. `tid` is the recovery thread.
    pub fn recover(m: &mut Machine, tid: Tid, region: AddrRange, threads: u32) -> RedoTxEngine {
        crate::check_engine_threads(m, threads);
        let mut slots = carve_slots(region, threads);
        let scratch = (0..threads)
            .map(|_| m.alloc_dram(SCRATCH_BYTES, 64))
            .collect();
        let mut w = PmWriter::new(tid);
        for slot in &mut slots {
            let status = slot.status(m, tid);
            if status == TxStatus::Committed {
                let entries = slot.scan_durable(m, tid);
                for (target, data) in entries {
                    w.write(m, target, &data, Category::UserData);
                }
                w.durability_fence(m);
            }
            // Truncate the durable log (ring scan) and go idle.
            slot.clear_durable(m, &mut w);
            slot.set_status(m, &mut w, TxStatus::Idle);
            slot.reset_volatile();
        }
        RedoTxEngine {
            region,
            slots,
            active: (0..threads).map(|_| None).collect(),
            scratch,
            clear_policy: ClearPolicy::default(),
        }
    }

    /// Choose how commit clears log entries (the paper's batching
    /// optimization, Section 5.1).
    pub fn set_clear_policy(&mut self, policy: ClearPolicy) {
        self.clear_policy = policy;
    }

    /// The log region.
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Whether `tid` has an open transaction (false for an
    /// out-of-range `tid`, which can never have one).
    pub fn in_tx(&self, tid: Tid) -> bool {
        self.active.get(tid.0 as usize).is_some_and(Option::is_some)
    }

    /// The validated slot index for `tid`.
    fn slot_of(&self, tid: Tid) -> Result<usize, TxError> {
        crate::slot_of(tid, self.active.len())
    }

    /// Start a durable transaction on `tid`.
    ///
    /// # Errors
    ///
    /// [`TxError::NestedTx`] if one is already open;
    /// [`TxError::BadTid`] for a thread the engine has no slot for.
    pub fn begin(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        if self.active[t].is_some() {
            return Err(TxError::NestedTx);
        }
        let id = m.fresh_tx_id(tid);
        m.tx_begin(tid, id);
        // No persistent status write at begin: a redo log without a
        // durable commit marker is simply discarded at recovery, so
        // Mnemosyne-style transactions start for free.
        self.active[t] = Some(ActiveRedo {
            id,
            writes: Vec::new(),
            scratch_cursor: 0,
        });
        Ok(())
    }

    /// Transactional write: buffered in DRAM, logged persistently with
    /// non-temporal stores (one epoch per record).
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction;
    /// [`TxError::BadTid`] for a thread the engine has no slot for;
    /// log-capacity errors from the slot.
    pub fn write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let scratch_base = self.scratch[t];
        let active = self.active[t].as_mut().ok_or(TxError::NoTx)?;
        // Buffer in DRAM scratch (counts as volatile traffic).
        let off = active.scratch_cursor % (SCRATCH_BYTES - bytes.len().min(4096) as u64).max(1);
        m.store(
            tid,
            scratch_base + off,
            &bytes[..bytes.len().min(4096)],
            cat,
        );
        active.scratch_cursor = off + bytes.len() as u64;
        active.writes.push((addr, bytes.to_vec(), cat));
        let mut w = PmWriter::new(tid);
        self.slots[t].append(m, &mut w, addr, bytes, true, Category::RedoLog)?;
        Ok(())
    }

    /// Transactional `u64` write.
    ///
    /// # Errors
    ///
    /// As for [`RedoTxEngine::write`].
    pub fn write_u64(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        val: u64,
        cat: Category,
    ) -> Result<(), TxError> {
        self.write(m, tid, addr, &val.to_le_bytes(), cat)
    }

    /// Transactional read with read-your-writes semantics: buffered
    /// updates overlay memory.
    pub fn read(&mut self, m: &mut Machine, tid: Tid, addr: Addr, len: usize) -> Vec<u8> {
        // A tid without a machine slot cannot account a load (and can
        // never hold buffered writes) — degrade to zeroes instead of
        // panicking deep in the per-thread dirty state.
        let mut data = match m.validate_tid(tid) {
            Ok(()) => m.load_vec(tid, addr, len),
            Err(_) => vec![0; len],
        };
        // An out-of-range tid has no buffered writes to overlay.
        if let Some(active) = self.active.get(tid.0 as usize).and_then(Option::as_ref) {
            for (waddr, wdata, _) in &active.writes {
                let (ws, we) = (*waddr, *waddr + wdata.len() as u64);
                let (rs, re) = (addr, addr + len as u64);
                if ws < re && rs < we {
                    let lo = ws.max(rs);
                    let hi = we.min(re);
                    data[(lo - rs) as usize..(hi - rs) as usize]
                        .copy_from_slice(&wdata[(lo - ws) as usize..(hi - ws) as usize]);
                }
            }
        }
        data
    }

    /// Transactional `u64` read.
    pub fn read_u64(&mut self, m: &mut Machine, tid: Tid, addr: Addr) -> u64 {
        let v = self.read(m, tid, addr, 8);
        u64::from_le_bytes(v.try_into().expect("8 bytes"))
    }

    /// Commit: durable marker, in-place writeback, flush, log clear.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction.
    pub fn commit(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let active = self.active[t].take().ok_or(TxError::NoTx)?;
        let mut w = PmWriter::new(tid);
        // 1. Commit marker durable: the transaction's durability point.
        self.slots[t].set_status(m, &mut w, TxStatus::Committed);
        // 2. In-place updates with cacheable stores, then flush+fence.
        for (addr, data, cat) in &active.writes {
            w.write(m, *addr, data, *cat);
        }
        w.durability_fence(m);
        // 3. Clear each log entry in its own epoch, then go idle.
        let policy = self.clear_policy;
        self.slots[t].clear_entries(m, &mut w, policy);
        self.slots[t].set_status(m, &mut w, TxStatus::Idle);
        m.tx_end(tid, active.id);
        Ok(())
    }

    /// Abort: discard the buffer and log; data was never written.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction.
    pub fn abort(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let active = self.active[t].take().ok_or(TxError::NoTx)?;
        let mut w = PmWriter::new(tid);
        let policy = self.clear_policy;
        self.slots[t].clear_entries(m, &mut w, policy);
        self.slots[t].set_status(m, &mut w, TxStatus::Idle);
        m.tx_end(tid, active.id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};

    fn setup() -> (Machine, RedoTxEngine, Addr) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 1 << 20);
        let eng = RedoTxEngine::format(&mut m, log, 4);
        (m, eng, pm.base + (1 << 20))
    }

    #[test]
    fn out_of_range_tid_is_a_typed_error_on_every_entry_point() {
        let (mut m, mut eng, data) = setup();
        let bad = Tid(4);
        let err = TxError::BadTid {
            tid: bad,
            threads: 4,
        };
        assert!(!eng.in_tx(bad));
        assert_eq!(eng.begin(&mut m, bad), Err(err));
        assert_eq!(
            eng.write(&mut m, bad, data, &[1u8; 8], Category::UserData),
            Err(err)
        );
        assert_eq!(eng.commit(&mut m, bad), Err(err));
        assert_eq!(eng.abort(&mut m, bad), Err(err));
        // Reads degrade to plain memory reads (no overlay to apply).
        assert_eq!(eng.read(&mut m, bad, data, 8), vec![0u8; 8]);
        eng.begin(&mut m, Tid(3)).unwrap();
        eng.commit(&mut m, Tid(3)).unwrap();
    }

    #[test]
    fn commit_makes_data_durable() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 99, Category::UserData)
            .unwrap();
        eng.commit(&mut m, tid).unwrap();
        assert!(m.is_durable(data, 8));
        assert_eq!(m.load_u64(tid, data), 99);
    }

    #[test]
    fn data_untouched_until_commit() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 42, Category::UserData)
            .unwrap();
        // In-place data not yet written (redo buffers):
        assert_eq!(m.load_u64(tid, data), 0);
        // But the transaction reads its own write:
        assert_eq!(eng.read_u64(&mut m, tid, data), 42);
        eng.commit(&mut m, tid).unwrap();
        assert_eq!(m.load_u64(tid, data), 42);
    }

    #[test]
    fn abort_leaves_no_trace() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 13, Category::UserData)
            .unwrap();
        eng.abort(&mut m, tid).unwrap();
        assert_eq!(m.load_u64(tid, data), 0);
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let log = AddrRange::new(m2.config().map.pm.base, 1 << 20);
        let _ = RedoTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(m2.load_u64(Tid(0), data), 0);
    }

    #[test]
    fn read_your_writes_partial_overlap() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        m.store(tid, data, &[0xAA; 16], Category::UserData);
        eng.begin(&mut m, tid).unwrap();
        eng.write(&mut m, tid, data + 4, &[0xBB; 4], Category::UserData)
            .unwrap();
        let v = eng.read(&mut m, tid, data, 12);
        assert_eq!(
            v,
            [0xAA, 0xAA, 0xAA, 0xAA, 0xBB, 0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA]
        );
        eng.abort(&mut m, tid).unwrap();
    }

    #[test]
    fn nested_begin_and_stray_ops_rejected() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        assert_eq!(eng.commit(&mut m, tid), Err(TxError::NoTx));
        assert_eq!(
            eng.write_u64(&mut m, tid, data, 1, Category::UserData),
            Err(TxError::NoTx)
        );
        eng.begin(&mut m, tid).unwrap();
        assert_eq!(eng.begin(&mut m, tid), Err(TxError::NestedTx));
        eng.abort(&mut m, tid).unwrap();
    }

    #[test]
    fn crash_before_commit_marker_discards_tx() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 7, Category::UserData)
            .unwrap();
        // Crash with everything in flight persisted — log entries are
        // durable but no commit marker.
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let log = AddrRange::new(m2.config().map.pm.base, 1 << 20);
        let _ = RedoTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(m2.load_u64(Tid(0), data), 0, "uncommitted tx discarded");
    }

    #[test]
    fn crash_after_marker_replays_log() {
        // Commit writes the marker durably first; simulate a crash where
        // the in-place data writes were lost by crashing DropVolatile
        // immediately after the marker epoch. We reproduce that state by
        // driving the slot manually through the engine's own sequence:
        // begin + write (log durable), then marker.
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 1234, Category::UserData)
            .unwrap();
        // Reach into the commit sequence: set the marker durably, then
        // "crash" before the data writeback by dropping volatile state.
        let mut w = PmWriter::new(tid);
        eng.slots[0].set_status(&mut m, &mut w, TxStatus::Committed);
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let log = AddrRange::new(m2.config().map.pm.base, 1 << 20);
        let _ = RedoTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(m2.load_u64(Tid(0), data), 1234, "committed tx replayed");
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.write_u64(&mut m, tid, data, 5, Category::UserData)
            .unwrap();
        eng.commit(&mut m, tid).unwrap();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let log = AddrRange::new(m2.config().map.pm.base, 1 << 20);
        let _ = RedoTxEngine::recover(&mut m2, Tid(0), log, 4);
        let img2 = m2.crash(CrashSpec::DropVolatile);
        let mut m3 = Machine::from_image(MachineConfig::asplos17(), &img2);
        let _ = RedoTxEngine::recover(&mut m3, Tid(0), log, 4);
        assert_eq!(m3.load_u64(Tid(0), data), 5);
    }

    #[test]
    fn engine_reusable_across_transactions() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        for i in 0..20u64 {
            eng.begin(&mut m, tid).unwrap();
            eng.write_u64(&mut m, tid, data + i * 8, i, Category::UserData)
                .unwrap();
            eng.commit(&mut m, tid).unwrap();
        }
        for i in 0..20u64 {
            assert_eq!(m.load_u64(tid, data + i * 8), i);
        }
    }

    #[test]
    fn batched_clearing_collapses_clear_epochs() {
        let count_epochs = |policy: ClearPolicy| {
            let mut m = Machine::new(MachineConfig::asplos17());
            let pm = m.config().map.pm;
            let mut eng = RedoTxEngine::format(&mut m, AddrRange::new(pm.base, 1 << 20), 4);
            eng.set_clear_policy(policy);
            let data = pm.base + (1 << 20);
            let tid = Tid(0);
            m.trace_mut().clear();
            eng.begin(&mut m, tid).unwrap();
            for i in 0..6u64 {
                eng.write_u64(&mut m, tid, data + i * 64, i, Category::UserData)
                    .unwrap();
            }
            eng.commit(&mut m, tid).unwrap();
            pmtrace::analysis::split_epochs(m.trace().events()).len()
        };
        let per_entry = count_epochs(ClearPolicy::PerEntry);
        let batched = count_epochs(ClearPolicy::Batched);
        assert_eq!(per_entry - batched, 5, "6 clears collapse into 1 epoch");
    }

    #[test]
    fn tx_trace_has_epoch_per_log_record() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        for i in 0..5u64 {
            eng.write_u64(&mut m, tid, data + i * 64, i, Category::UserData)
                .unwrap();
        }
        eng.commit(&mut m, tid).unwrap();
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let stats = pmtrace::analysis::tx_stats(&epochs);
        // 5 log records + 1 marker + 1 writeback + 5 clears +
        // 1 idle-status = 13 epochs.
        assert_eq!(stats.epochs_per_tx, vec![13]);
    }
}
