//! Durable-transaction runtimes for the WHISPER reproduction.
//!
//! WHISPER's library-persistence applications run over two transaction
//! systems whose logging disciplines the paper contrasts throughout
//! Section 5:
//!
//! * [`RedoTxEngine`] — Mnemosyne-style. "Mnemosyne achieves consistency
//!   of data structures via a redo log. It updates the log using
//!   non-temporal instructions (NTI) ordered by an sfence. It saves
//!   modified data to a temporary location, and at transaction commit
//!   uses cacheable stores to update data structures followed by
//!   flushing modified cache lines to persist updates." (Section 3.1.)
//!   Redo logging permits batching — all log entries in one epoch, all
//!   data writebacks in another — which is why Mnemosyne apps show
//!   fewer, larger epochs than NVML apps in Figure 4.
//!
//! * [`UndoTxEngine`] — NVML-style. "NVML achieves consistency of data
//!   structures via an undo log. It uses cacheable stores/flushes to
//!   execute all log and data updates to PM." Undo entries "must be
//!   ordered before data writes to ensure the old value is available
//!   for recovery, and thus they fragment a transaction into a series
//!   of alternating epochs to write log entries and to update data"
//!   (Section 5.1) — the source of NVML's singleton-epoch dominance and
//!   ~1000 % write amplification.
//!
//! Both engines clear each log entry in its own epoch after commit,
//! which the paper calls out as a major singleton source ("Mnemosyne,
//! NVML and PMFS process or clear each log entry in its own epoch").
//!
//! # Example
//!
//! ```
//! use memsim::{Machine, MachineConfig};
//! use pmem::AddrRange;
//! use pmtrace::{Category, Tid};
//! use pmtx::UndoTxEngine;
//!
//! let mut m = Machine::new(MachineConfig::asplos17());
//! let pm = m.config().map.pm;
//! let log = AddrRange::new(pm.base, 1 << 20);
//! let data = pm.base + (1 << 20);
//! let mut tx = UndoTxEngine::format(&mut m, log, 4);
//! let tid = Tid(0);
//! tx.begin(&mut m, tid)?;
//! tx.set(&mut m, tid, data, &7u64.to_le_bytes(), Category::UserData)?;
//! tx.commit(&mut m, tid)?;
//! assert!(m.is_durable(data, 8));
//! # Ok::<(), pmtx::TxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod log;
mod mintx;
mod redo;
mod txmem;
mod undo;

pub use log::{LogSlot, TxStatus};
pub use mintx::{MinTxEngine, MIN_TX_MAX_DATA};
pub use redo::RedoTxEngine;
pub use txmem::TxMem;
pub use undo::UndoTxEngine;

/// How commit disposes of log entries.
///
/// The paper observes that Mnemosyne, NVML, and PMFS all "process or
/// clear each log entry in its own epoch", a major source of singleton
/// epochs, and suggests the fix: "this could be avoided without
/// compromising crash consistency by processing or clearing log
/// entries in a batch." Both engines support either policy so the
/// ablation benches can quantify the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClearPolicy {
    /// One epoch per cleared entry — the behavior the paper measured.
    #[default]
    PerEntry,
    /// All entries cleared under a single ordering fence — the paper's
    /// suggested optimization.
    Batched,
}

/// Errors from the transaction engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// `begin` while this thread already has an open transaction.
    NestedTx,
    /// A data operation or `commit`/`abort` with no open transaction.
    NoTx,
    /// The per-thread log buffer cannot hold another entry.
    LogFull,
    /// A single write larger than the maximum loggable entry.
    EntryTooLarge {
        /// The offending length.
        len: usize,
    },
    /// A thread id outside the engine's formatted slot range — the
    /// engine was formatted for `threads` log slots and `tid` names
    /// none of them.
    BadTid {
        /// The offending thread id.
        tid: pmtrace::Tid,
        /// Slots the engine was formatted with.
        threads: u32,
    },
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::NestedTx => write!(f, "transaction already open on this thread"),
            TxError::NoTx => write!(f, "no open transaction on this thread"),
            TxError::LogFull => write!(f, "per-thread transaction log is full"),
            TxError::EntryTooLarge { len } => {
                write!(f, "write of {len} bytes exceeds the log entry limit")
            }
            TxError::BadTid { tid, threads } => {
                write!(f, "thread {tid} out of range (engine has {threads} slots)")
            }
        }
    }
}

impl std::error::Error for TxError {}

/// The validated per-thread slot index for `tid` in an engine formatted
/// with `slots` slots.
pub(crate) fn slot_of(tid: pmtrace::Tid, slots: usize) -> Result<usize, TxError> {
    let t = tid.0 as usize;
    if t < slots {
        Ok(t)
    } else {
        Err(TxError::BadTid {
            tid,
            threads: slots as u32,
        })
    }
}

/// Engines size their per-thread state from a caller-supplied count,
/// but the machine's [`memsim::MachineConfig::threads`] is the single
/// source of truth: a slot no machine thread can ever drive is a
/// configuration bug, caught at format/recover time rather than as an
/// index panic on first use.
///
/// # Panics
///
/// Panics when `threads` is zero or exceeds the machine's thread count.
pub(crate) fn check_engine_threads(m: &memsim::Machine, threads: u32) {
    assert!(
        threads >= 1 && threads <= m.config().threads,
        "engine thread count {threads} outside 1..={} (MachineConfig::threads)",
        m.config().threads
    );
}
