//! NVML-style undo-log transactions.

use crate::log::{carve_slots, LogSlot, TxStatus};
use crate::{ClearPolicy, TxError};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

#[derive(Debug)]
struct ActiveUndo {
    id: pmtrace::TxId,
    /// Data lines written in place, to be flushed at commit.
    writer: PmWriter,
}

/// Durable transactions via an undo log, in the style of NVML
/// (Section 3.1).
///
/// Every [`UndoTxEngine::set`] first persists the *old* value as an
/// undo-log entry (cacheable store + flush + fence), then writes the new
/// value in place with cacheable stores whose flushes are deferred to
/// commit. Because each undo record must be ordered before its data
/// write, a transaction fragments "into a series of alternating epochs"
/// — and any data lines still unflushed from a previous `set` get
/// dragged into the undo record's epoch, which is exactly the behavior
/// the paper observed in N-store and NVML (Section 5.1).
///
/// On a crash, a slot that never reached `Committed` rolls back by
/// re-applying the logged old values; rollback is idempotent.
#[derive(Debug)]
pub struct UndoTxEngine {
    region: AddrRange,
    slots: Vec<LogSlot>,
    active: Vec<Option<ActiveUndo>>,
    clear_policy: ClearPolicy,
}

impl UndoTxEngine {
    /// Format a fresh engine whose per-thread logs carve up `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is too small for `threads` ≥4 KB slots.
    pub fn format(m: &mut Machine, region: AddrRange, threads: u32) -> UndoTxEngine {
        crate::check_engine_threads(m, threads);
        let slots = carve_slots(region, threads);
        for (i, s) in slots.iter().enumerate() {
            s.format(m, Tid(i as u32));
        }
        UndoTxEngine {
            region,
            slots,
            active: (0..threads).map(|_| None).collect(),
            clear_policy: ClearPolicy::default(),
        }
    }

    /// Recover after a crash: roll back slots that were mid-transaction,
    /// discard logs of committed ones.
    pub fn recover(m: &mut Machine, tid: Tid, region: AddrRange, threads: u32) -> UndoTxEngine {
        crate::check_engine_threads(m, threads);
        let mut slots = carve_slots(region, threads);
        let mut w = PmWriter::new(tid);
        for slot in &mut slots {
            let status = slot.status(m, tid);
            if status == TxStatus::Active {
                // Roll back: apply old values in reverse order.
                let entries = slot.scan_durable(m, tid);
                for (target, old) in entries.into_iter().rev() {
                    w.write(m, target, &old, Category::UserData);
                }
                w.durability_fence(m);
            }
            slot.clear_durable(m, &mut w);
            slot.set_status(m, &mut w, TxStatus::Idle);
            slot.reset_volatile();
        }
        UndoTxEngine {
            region,
            slots,
            active: (0..threads).map(|_| None).collect(),
            clear_policy: ClearPolicy::default(),
        }
    }

    /// Choose how commit clears log entries (the paper's batching
    /// optimization, Section 5.1).
    pub fn set_clear_policy(&mut self, policy: ClearPolicy) {
        self.clear_policy = policy;
    }

    /// The log region.
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Whether `tid` has an open transaction (false for an
    /// out-of-range `tid`, which can never have one).
    pub fn in_tx(&self, tid: Tid) -> bool {
        self.active.get(tid.0 as usize).is_some_and(Option::is_some)
    }

    /// The validated slot index for `tid`.
    fn slot_of(&self, tid: Tid) -> Result<usize, TxError> {
        crate::slot_of(tid, self.active.len())
    }

    /// Start a durable transaction on `tid`.
    ///
    /// # Errors
    ///
    /// [`TxError::NestedTx`] if one is already open;
    /// [`TxError::BadTid`] for a thread the engine has no slot for.
    pub fn begin(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        if self.active[t].is_some() {
            return Err(TxError::NestedTx);
        }
        let id = m.fresh_tx_id(tid);
        m.tx_begin(tid, id);
        let mut w = PmWriter::new(tid);
        self.slots[t].set_status(m, &mut w, TxStatus::Active);
        self.active[t] = Some(ActiveUndo {
            id,
            writer: PmWriter::new(tid),
        });
        Ok(())
    }

    /// Transactional in-place update: log the old value (own epoch),
    /// then write the new value with deferred flushing.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction;
    /// [`TxError::BadTid`] for a thread the engine has no slot for;
    /// log-capacity errors from the slot.
    pub fn set(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        bytes: &[u8],
        cat: Category,
    ) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        if self.active[t].is_none() {
            return Err(TxError::NoTx);
        }
        let old = m.load_vec(tid, addr, bytes.len());
        {
            let active = self.active[t].as_mut().expect("checked above");
            // The undo record is written through the transaction's own
            // writer: its fence drags along any still-unflushed data
            // lines from earlier `set`s (the paper's alternating-epoch
            // fragmentation).
            self.slots[t].append(m, &mut active.writer, addr, &old, false, Category::UndoLog)?;
            active.writer.write(m, addr, bytes, cat);
        }
        Ok(())
    }

    /// Transactional `u64` update.
    ///
    /// # Errors
    ///
    /// As for [`UndoTxEngine::set`].
    pub fn set_u64(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        addr: Addr,
        val: u64,
        cat: Category,
    ) -> Result<(), TxError> {
        self.set(m, tid, addr, &val.to_le_bytes(), cat)
    }

    /// Commit: flush in-place data, durable marker, clear log.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction.
    pub fn commit(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let mut active = self.active[t].take().ok_or(TxError::NoTx)?;
        // 1. Data durable.
        active.writer.durability_fence(m);
        // 2. Marker durable: rollback disarmed.
        let mut w = PmWriter::new(tid);
        self.slots[t].set_status(m, &mut w, TxStatus::Committed);
        // 3. Clear each entry in its own epoch ("NVML sets and clears
        //    its log entries"), then idle.
        let policy = self.clear_policy;
        self.slots[t].clear_entries(m, &mut w, policy);
        self.slots[t].set_status(m, &mut w, TxStatus::Idle);
        m.tx_end(tid, active.id);
        Ok(())
    }

    /// Abort: re-apply old values from the undo log, then clear it.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTx`] without an open transaction.
    pub fn abort(&mut self, m: &mut Machine, tid: Tid) -> Result<(), TxError> {
        let t = self.slot_of(tid)?;
        let active = self.active[t].take().ok_or(TxError::NoTx)?;
        let mut w = PmWriter::new(tid);
        for (target, old) in self.slots[t].read_entries(m, tid).into_iter().rev() {
            w.write(m, target, &old, Category::UserData);
        }
        w.durability_fence(m);
        let policy = self.clear_policy;
        self.slots[t].clear_entries(m, &mut w, policy);
        self.slots[t].set_status(m, &mut w, TxStatus::Idle);
        m.tx_end(tid, active.id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};

    #[test]
    fn out_of_range_tid_is_a_typed_error_on_every_entry_point() {
        let (mut m, mut eng, data) = setup();
        // One past the last formatted slot — the classic off-by-one.
        let bad = Tid(4);
        let err = TxError::BadTid {
            tid: bad,
            threads: 4,
        };
        assert!(!eng.in_tx(bad));
        assert_eq!(eng.begin(&mut m, bad), Err(err));
        assert_eq!(
            eng.set(&mut m, bad, data, &[1u8; 8], Category::UserData),
            Err(err)
        );
        assert_eq!(eng.commit(&mut m, bad), Err(err));
        assert_eq!(eng.abort(&mut m, bad), Err(err));
        // A good thread still works after the rejections.
        eng.begin(&mut m, Tid(3)).unwrap();
        eng.commit(&mut m, Tid(3)).unwrap();
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn format_rejects_more_slots_than_machine_threads() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let threads = m.config().threads;
        let _ = UndoTxEngine::format(&mut m, AddrRange::new(pm.base, 1 << 20), threads + 1);
    }

    fn setup() -> (Machine, UndoTxEngine, Addr) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 1 << 20);
        let eng = UndoTxEngine::format(&mut m, log, 4);
        (m, eng, pm.base + (1 << 20))
    }

    fn log_region(m: &Machine) -> AddrRange {
        AddrRange::new(m.config().map.pm.base, 1 << 20)
    }

    #[test]
    fn commit_makes_data_durable() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 77, Category::UserData)
            .unwrap();
        eng.commit(&mut m, tid).unwrap();
        assert!(m.is_durable(data, 8));
        assert_eq!(m.load_u64(tid, data), 77);
    }

    #[test]
    fn writes_visible_in_place_immediately() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 5, Category::UserData)
            .unwrap();
        // Undo logging writes in place: a plain load sees it.
        assert_eq!(m.load_u64(tid, data), 5);
        eng.commit(&mut m, tid).unwrap();
    }

    #[test]
    fn abort_restores_old_values() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        // Seed committed state.
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 100, Category::UserData)
            .unwrap();
        eng.commit(&mut m, tid).unwrap();
        // Mutate and abort.
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 200, Category::UserData)
            .unwrap();
        assert_eq!(m.load_u64(tid, data), 200);
        eng.abort(&mut m, tid).unwrap();
        assert_eq!(m.load_u64(tid, data), 100);
        assert!(m.is_durable(data, 8));
    }

    #[test]
    fn crash_mid_tx_rolls_back() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 50, Category::UserData)
            .unwrap();
        eng.commit(&mut m, tid).unwrap();
        // Second tx crashes mid-flight with all in-flight data persisted
        // (worst case for undo: new data durable, no commit marker).
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 999, Category::UserData)
            .unwrap();
        let log = log_region(&m);
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let _ = UndoTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(
            m2.load_u64(Tid(0), data),
            50,
            "rolled back to committed value"
        );
    }

    #[test]
    fn crash_mid_tx_drop_volatile_also_consistent() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 50, Category::UserData)
            .unwrap();
        eng.commit(&mut m, tid).unwrap();
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 999, Category::UserData)
            .unwrap();
        let log = log_region(&m);
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let _ = UndoTxEngine::recover(&mut m2, Tid(0), log, 4);
        assert_eq!(m2.load_u64(Tid(0), data), 50);
    }

    #[test]
    fn adversarial_crash_sweep_all_or_nothing() {
        // A tx writes two lines; after recovery we must see either both
        // new values (committed) or both old (rolled back/discarded).
        for seed in 0..40 {
            let (mut m, mut eng, data) = setup();
            let tid = Tid(0);
            eng.begin(&mut m, tid).unwrap();
            eng.set_u64(&mut m, tid, data, 1, Category::UserData)
                .unwrap();
            eng.set_u64(&mut m, tid, data + 64, 1, Category::UserData)
                .unwrap();
            eng.commit(&mut m, tid).unwrap();
            // Second tx crashes mid-commit-path at an arbitrary point:
            eng.begin(&mut m, tid).unwrap();
            eng.set_u64(&mut m, tid, data, 2, Category::UserData)
                .unwrap();
            eng.set_u64(&mut m, tid, data + 64, 2, Category::UserData)
                .unwrap();
            let log = log_region(&m);
            let img = m.crash(CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let _ = UndoTxEngine::recover(&mut m2, Tid(0), log, 4);
            let a = m2.load_u64(Tid(0), data);
            let b = m2.load_u64(Tid(0), data + 64);
            assert_eq!(a, 1, "seed {seed}: uncommitted tx must roll back");
            assert_eq!(b, 1, "seed {seed}: uncommitted tx must roll back");
        }
    }

    #[test]
    fn rollback_is_idempotent_across_double_crash() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        eng.set_u64(&mut m, tid, data, 31, Category::UserData)
            .unwrap();
        let log = log_region(&m);
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        // First recovery crashes right away (drop its volatile work
        // mid-rollback is not directly expressible; instead re-crash
        // after recovery and recover again).
        let _ = UndoTxEngine::recover(&mut m2, Tid(0), log, 4);
        let img2 = m2.crash(CrashSpec::Adversarial { seed: 9 });
        let mut m3 = Machine::from_image(MachineConfig::asplos17(), &img2);
        let _ = UndoTxEngine::recover(&mut m3, Tid(0), log, 4);
        assert_eq!(m3.load_u64(Tid(0), data), 0);
    }

    #[test]
    fn alternating_epoch_fragmentation() {
        // N sets produce >= N undo-record epochs before commit — the
        // fragmentation the paper attributes to undo logging.
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        eng.begin(&mut m, tid).unwrap();
        for i in 0..4u64 {
            eng.set_u64(&mut m, tid, data + i * 64, i, Category::UserData)
                .unwrap();
        }
        eng.commit(&mut m, tid).unwrap();
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let stats = pmtrace::analysis::tx_stats(&epochs);
        // begin-status + 4 undo records + data-flush + marker + 4 clears
        // + idle-status = 12
        assert_eq!(stats.epochs_per_tx, vec![12]);
        // Undo-heavy traces are singleton-heavy (Figure 4's NVML bars).
        let hist = pmtrace::analysis::epoch_size_histogram(&epochs);
        assert!(hist.singleton_fraction() > 0.5);
    }

    #[test]
    fn error_paths() {
        let (mut m, mut eng, data) = setup();
        let tid = Tid(0);
        assert_eq!(eng.commit(&mut m, tid), Err(TxError::NoTx));
        assert_eq!(eng.abort(&mut m, tid), Err(TxError::NoTx));
        assert_eq!(
            eng.set_u64(&mut m, tid, data, 1, Category::UserData),
            Err(TxError::NoTx)
        );
        eng.begin(&mut m, tid).unwrap();
        assert_eq!(eng.begin(&mut m, tid), Err(TxError::NestedTx));
        assert!(eng.in_tx(tid));
        eng.commit(&mut m, tid).unwrap();
        assert!(!eng.in_tx(tid));
    }

    #[test]
    fn threads_are_independent() {
        let (mut m, mut eng, data) = setup();
        eng.begin(&mut m, Tid(0)).unwrap();
        eng.begin(&mut m, Tid(1)).unwrap();
        eng.set_u64(&mut m, Tid(0), data, 10, Category::UserData)
            .unwrap();
        eng.set_u64(&mut m, Tid(1), data + 64, 20, Category::UserData)
            .unwrap();
        eng.commit(&mut m, Tid(0)).unwrap();
        eng.abort(&mut m, Tid(1)).unwrap();
        assert_eq!(m.load_u64(Tid(0), data), 10);
        assert_eq!(m.load_u64(Tid(0), data + 64), 0);
    }
}
