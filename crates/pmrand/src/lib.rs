//! Self-contained deterministic PRNG for the whole workspace.
//!
//! The suite's determinism guarantee ("same seed, same trace") needs a
//! generator whose stream is fixed forever, independent of any external
//! crate's version bumps — and the build environment vendors no
//! external crates at all. This module implements xoshiro256++ seeded
//! through SplitMix64 (both public domain, Blackman & Vigna), exposing
//! the small slice of the `rand` API the workspace uses: `SmallRng`,
//! `seed_from_u64`, `gen`, `gen_range`, and `gen_bool`.
//!
//! The traits [`Rng`] and [`SeedableRng`] exist so call sites written
//! against `rand`'s prelude (`use pmrand::{Rng, SeedableRng}`) compile
//! unchanged.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic small-state generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// Seeding interface, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds give equal
    /// streams, on every platform, forever.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the seed into the 256-bit state; it cannot
        // produce the all-zero state xoshiro forbids.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SmallRng {
    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] — the equivalent of sampling
/// `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one uniformly-distributed value.
    fn sample(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample(rng: &mut SmallRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut SmallRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut SmallRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, like `rand`.
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Unbiased uniform draw in `[0, span)` by rejection (Lemire-style
/// threshold on the low word).
fn uniform_u64(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the widened product keeps the draw exact.
    let zone = span.wrapping_neg() % span; // (2^64 - span) mod span
    loop {
        let v = rng.next_u64();
        let hi = ((v as u128 * span as u128) >> 64) as u64;
        let lo = (v as u128 * span as u128) as u64;
        if lo >= zone || zone == 0 {
            return hi;
        }
    }
}

/// The sampling interface, mirroring the `rand::Rng` methods the
/// workspace uses.
pub trait Rng {
    /// Uniform value of an inferrable type (`rand`'s `gen`).
    fn gen<T: Standard>(&mut self) -> T;
    /// Uniform value in a range (`rand`'s `gen_range`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for SmallRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

/// `rand`-style module aliases so `use pmrand::rngs::SmallRng` also
/// works at call sites that kept the two-level path.
pub mod rngs {
    pub use super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_change_stream() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_bounds_exclusive() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_inclusive() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..=3);
            assert!(v <= 3);
            seen_hi |= v == 3;
        }
        assert!(seen_hi, "inclusive upper bound reachable");
    }

    #[test]
    fn gen_range_covers_small_domain_uniformly() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "p=0.25 gave {heads}/10000");
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(10);
        // Must not loop forever or panic.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
