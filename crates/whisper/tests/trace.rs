//! Integration gates for the simulated-time tracing subsystem.
//!
//! Three properties are pinned here:
//!
//! 1. **Bit-identity across parallelism** — the exported Chrome trace
//!    of a suite run plus a serve sweep is byte-for-byte identical at
//!    `--parallel 1` and `--parallel 3`, because every event is
//!    timestamped on the simulated clock and the collector merge sorts
//!    tracks by (unique) name.
//! 2. **A pinned golden trace** — the quick-scale exim trace is
//!    committed at `ci/golden_trace_exim.json`; any change to the
//!    instrumentation points or the simulated timeline moves bytes
//!    here and must be deliberate. Regenerate with:
//!
//!    ```text
//!    whisper-report --apps exim --trace ci/golden_trace_exim.json \
//!        --scale 0.05 --seed 42 --parallel 1 --quiet
//!    ```
//! 3. **Chrome trace-event well-formedness** — the export parses as
//!    JSON, every track lane opens with an `M` thread-name record,
//!    begin/end events balance per lane, and timestamps never go
//!    backwards within a lane.

use pmobs::json::Json;
use pmobs::trace;
use std::sync::Mutex;
use whisper::serve::{serve_apps, Arrival, ServeConfig};
use whisper::suite::{run_apps, SuiteConfig};

/// The trace flag and collector are process-wide; serialize the tests
/// in this binary and leave both clean between them.
fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Run `f` with tracing on and return the exported document exactly as
/// `whisper-report --trace` writes it (compact + trailing newline).
fn traced_export(f: impl FnOnce()) -> String {
    trace::take_tracks(); // drop tracks a failed earlier test left behind
    trace::set_enabled(true);
    f();
    trace::set_enabled(false);
    let mut out = trace::export_chrome(&trace::take_tracks()).to_compact();
    out.push('\n');
    out
}

fn small_serve(parallelism: usize) -> ServeConfig {
    ServeConfig {
        scale: 0.006,
        seed: 17,
        shards: 2,
        arrival: Arrival::Bursty,
        parallelism,
    }
}

#[test]
fn trace_export_is_bit_identical_across_parallelism() {
    let _l = trace_lock();
    let export = |parallelism: usize| {
        let cfg = SuiteConfig {
            scale: 0.006,
            seed: 17,
            parallelism,
            worker_threads: 4,
        };
        traced_export(|| {
            run_apps(&["hashmap", "exim"], &cfg);
            serve_apps(&["hashmap"], &small_serve(parallelism));
        })
    };
    let serial = export(1);
    let parallel = export(3);
    assert!(
        serial.contains("traceEvents"),
        "export produced no trace document"
    );
    assert_eq!(
        serial, parallel,
        "trace export differs between 1 and 3 workers"
    );
}

#[test]
fn quick_exim_trace_matches_committed_golden() {
    let _l = trace_lock();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/golden_trace_exim.json"
    );
    let golden = std::fs::read_to_string(golden_path).expect(
        "ci/golden_trace_exim.json missing; regenerate with \
         whisper-report --apps exim --trace ci/golden_trace_exim.json \
         --scale 0.05 --seed 42 --parallel 1 --quiet",
    );
    let cfg = SuiteConfig::quick();
    let trace = traced_export(|| {
        run_apps(&["exim"], &cfg);
    });
    if trace != golden {
        let mismatch = trace
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| trace.lines().count().min(golden.lines().count()));
        panic!(
            "exim trace diverged from golden (first differing line {}): \
             the instrumented timeline no longer reproduces the committed trace",
            mismatch + 1
        );
    }
}

#[test]
fn chrome_export_is_well_formed() {
    let _l = trace_lock();
    let cfg = SuiteConfig {
        scale: 0.006,
        seed: 17,
        parallelism: 1,
        worker_threads: 4,
    };
    let export = traced_export(|| {
        run_apps(&["exim"], &cfg);
        serve_apps(&["hashmap"], &small_serve(1));
    });
    let doc = pmobs::json::parse(export.trim_end()).expect("trace export parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");

    // Per-lane checks: M record first, balanced B/E, monotone ts.
    let mut lanes: std::collections::BTreeMap<u64, (u64, f64, bool)> =
        std::collections::BTreeMap::new(); // tid -> (open spans, last ts, named)
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let lane = lanes.entry(tid).or_insert((0, f64::NEG_INFINITY, false));
        if ph == "M" {
            assert_eq!(
                ev.get("name").and_then(|n| n.as_str()),
                Some("thread_name"),
                "tid {tid}: metadata record is not a thread name"
            );
            lane.2 = true;
            continue;
        }
        assert!(lane.2, "tid {tid}: event before its thread_name metadata");
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(
            ts >= lane.1,
            "tid {tid}: timestamp went backwards ({ts} after {})",
            lane.1
        );
        lane.1 = ts;
        match ph {
            "B" => lane.0 += 1,
            "E" => {
                assert!(lane.0 > 0, "tid {tid}: end with no open span");
                lane.0 -= 1;
            }
            "i" | "C" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for (tid, (open, _, _)) in &lanes {
        assert_eq!(*open, 0, "tid {tid}: {open} spans left open");
    }
    // The combined run must produce all three instrumented layers.
    for needle in ["/memsim/", "/hops[", "serve/hashmap/"] {
        assert!(
            export.contains(needle),
            "expected a {needle} track in the export"
        );
    }
}
