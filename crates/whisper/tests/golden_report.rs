//! Golden-report equivalence gate for the simulator hot path.
//!
//! The deterministic subset of the schema-v1 JSON report (Table 1,
//! Figures 3–6/10, amplification, NT fraction, small writes, totals —
//! everything keyed on `(scale, seed)` alone) is committed at
//! `ci/golden_quick_report.json` for the quick configuration. Any
//! change to the machine model, devices, or analysis that shifts a
//! single byte of that subset fails here; performance work must leave
//! it untouched. Regenerate deliberately with:
//!
//! ```text
//! whisper-report --json-det ci/golden_quick_report.json \
//!     --scale 0.05 --seed 42 --parallel 1 --quiet
//! ```

use pmobs::MetricsSnapshot;
use whisper::json_report;
use whisper::suite::{run_suite, SuiteConfig};

#[test]
fn quick_report_matches_committed_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/golden_quick_report.json"
    );
    let golden = std::fs::read_to_string(golden_path)
        .expect("ci/golden_quick_report.json missing; regenerate with whisper-report --json-det");

    let cfg = SuiteConfig::quick();
    assert_eq!(
        (cfg.scale, cfg.seed),
        (0.05, 42),
        "golden is keyed on quick()"
    );
    let results = run_suite(&cfg);

    // The metrics snapshot only feeds the non-deterministic `metrics`
    // block, which the subset drops — an empty one keeps the test
    // independent of whatever pmobs recording is enabled.
    let doc = json_report::build(&results, &cfg, &MetricsSnapshot::default());
    let subset = json_report::deterministic_subset(&doc).to_pretty();

    if subset != golden {
        let mismatch = subset
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| subset.lines().count().min(golden.lines().count()));
        panic!(
            "deterministic report diverged from golden (first differing line {}): \
             the simulated machine no longer reproduces the committed results",
            mismatch + 1
        );
    }
}
