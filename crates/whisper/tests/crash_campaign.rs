//! Crash-injection campaign gates: every Table 1 app must recover at
//! every swept crash point under the full crash-spec lattice, and the
//! campaign itself must be deterministic whatever its parallelism.

use whisper::crashtest::{crash_json, run_campaign, summary_table, total_failures, CampaignConfig};

/// The acceptance gate: the quick campaign — every app, ≥3 points,
/// drop-volatile + persist-all + ≥8 adversarial seeds — is failure-free.
#[test]
fn quick_campaign_recovers_every_app() {
    let cfg = CampaignConfig::quick();
    assert!(cfg.points >= 3);
    assert!(cfg.adversarial_seeds >= 8);
    let reports = run_campaign(&cfg);
    assert_eq!(reports.len(), 11);
    for r in &reports {
        assert!(
            r.points.len() >= 3,
            "{}: swept only {} points across {} fences",
            r.name,
            r.points.len(),
            r.fence_events
        );
        assert_eq!(
            r.images,
            r.points.len() * (2 + cfg.adversarial_seeds as usize)
        );
    }
    assert_eq!(
        total_failures(&reports),
        0,
        "campaign failures:\n{}",
        summary_table(&reports, &cfg)
    );
}

/// Each row is a self-contained seeded machine, so the campaign's
/// summary and JSON must be byte-identical whatever the worker count.
#[test]
fn campaign_is_parallelism_invariant() {
    let serial = CampaignConfig {
        points: 2,
        adversarial_seeds: 2,
        parallelism: 1,
    };
    let fanned = CampaignConfig {
        parallelism: 4,
        ..serial
    };
    let a = run_campaign(&serial);
    let b = run_campaign(&fanned);
    assert_eq!(summary_table(&a, &serial), summary_table(&b, &serial));
    assert_eq!(
        crash_json(&a, &serial).to_pretty(),
        crash_json(&b, &serial).to_pretty()
    );
}

/// Pin the campaign summary's shape: the header, one row per Table 1
/// app in order, and a zero-failure total line.
#[test]
fn summary_table_is_pinned() {
    let cfg = CampaignConfig {
        points: 2,
        adversarial_seeds: 2,
        parallelism: 4,
    };
    let reports = run_campaign(&cfg);
    let table = summary_table(&reports, &cfg);
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(
        lines[0],
        "Crash-recovery campaign (2 point(s) x [drop-volatile persist-all 2 seed(s)])"
    );
    let apps: Vec<&str> = lines[2..13]
        .iter()
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    assert_eq!(
        apps,
        [
            "echo",
            "nstore-ycsb",
            "nstore-tpcc",
            "redis",
            "ctree",
            "hashmap",
            "vacation",
            "memcached",
            "nfs",
            "exim",
            "mysql"
        ]
    );
    assert!(
        lines[13].starts_with("total: 0 failure(s) across"),
        "unexpected total line: {}",
        lines[13]
    );
}
