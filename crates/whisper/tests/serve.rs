//! Serving-engine gates: the open-loop sweep must be deterministic
//! across shard counts and worker parallelism, cover every Table 1 app
//! with full curves, and produce non-vacuous latency histograms whose
//! queueing component grows past the saturation knee.

use whisper::serve::{
    arrival_schedule, key_stream, run_serve, serve_json, Arrival, ServeConfig, LOAD_FRACTIONS,
    SERVE_MODELS,
};

/// The arrival schedule and key stream are functions of the seed alone:
/// shard count and worker parallelism never enter, so two configs that
/// differ only there drive the very same open-loop request stream.
#[test]
fn arrival_schedule_is_shard_and_parallelism_independent() {
    for arrival in [Arrival::Paced, Arrival::Bursty] {
        let a = arrival_schedule(42, 2_000, 5e5, arrival);
        let b = arrival_schedule(42, 2_000, 5e5, arrival);
        assert_eq!(a, b, "{arrival}: schedule is pure in (seed, n, rate)");
        assert_eq!(a.len(), 2_000);
    }
    // Keys likewise; shard routing is `key % shards`, applied later.
    assert_eq!(key_stream(42, 2_000), key_stream(42, 2_000));
}

/// The acceptance gate: at quick scale, every Table 1 app gets a
/// throughput/latency curve per mechanism across every offered-load
/// point, and the serve JSON is byte-identical whatever the worker
/// count — the same parallelism-invariance the crash campaign pins.
#[test]
fn serve_sweep_covers_every_app_and_is_parallelism_invariant() {
    let serial = ServeConfig {
        scale: 0.008,
        seed: 42,
        shards: 2,
        arrival: Arrival::Bursty,
        parallelism: 1,
    };
    let fanned = ServeConfig {
        parallelism: 4,
        ..serial
    };
    let a = run_serve(&serial);
    let b = run_serve(&fanned);

    assert_eq!(a.len(), 11, "one row per Table 1 app");
    for r in &a {
        assert_eq!(r.curves.len(), SERVE_MODELS.len());
        assert!(r.offered_rps.len() >= 4, "{}: need ≥4 load points", r.name);
        for c in &r.curves {
            assert_eq!(c.points.len(), LOAD_FRACTIONS.len());
            for p in &c.points {
                assert!(p.requests > 0, "{}: empty histogram", r.name);
                assert!(p.p50_ns > 0, "{}: vacuous latency", r.name);
                assert!(
                    p.p50_ns <= p.p90_ns && p.p90_ns <= p.p99_ns && p.p99_ns <= p.p999_ns,
                    "{}: percentiles out of order",
                    r.name
                );
            }
        }
    }

    // Digest-pinned determinism: the entire serve document reproduces
    // byte-for-byte across worker counts.
    assert_eq!(a, b, "structs must match across parallelism");
    assert_eq!(
        serve_json(&a, &serial).to_pretty(),
        serve_json(&b, &serial).to_pretty(),
        "serve JSON must be byte-identical across parallelism"
    );
}

/// Open-loop latency must feel the knee: past the baseline's capacity
/// the queueing wait dominates, below it the tail stays near service
/// time.
#[test]
fn latency_grows_past_the_knee() {
    let cfg = ServeConfig {
        scale: 0.01,
        seed: 7,
        shards: 2,
        arrival: Arrival::Bursty,
        parallelism: 2,
    };
    let reports = run_serve(&cfg);
    let hashmap = reports.iter().find(|r| r.name == "hashmap").unwrap();
    // Baseline mechanism, below-knee vs past-knee points.
    let base = &hashmap.curves[0];
    let below = &base.points[0];
    let above = base.points.last().unwrap();
    assert!(
        above.p99_ns > below.p99_ns,
        "p99 must grow with offered load: {} vs {}",
        above.p99_ns,
        below.p99_ns
    );
    assert!(
        above.mean_wait_ns > below.mean_wait_ns * 2.0,
        "queueing wait must dominate past the knee"
    );
    // Achieved throughput saturates below offered once past capacity.
    assert!(
        above.achieved_rps < above.offered_rps,
        "cannot serve more than capacity"
    );
}

/// The serving comparison itself: a mechanism with cheaper ordering
/// (HOPS) sustains a higher capacity than the clwb baseline on every
/// app.
#[test]
fn hops_outserves_the_baseline() {
    let cfg = ServeConfig {
        scale: 0.008,
        seed: 42,
        shards: 2,
        arrival: Arrival::Paced,
        parallelism: 4,
    };
    for r in run_serve(&cfg) {
        let base = &r.curves[0]; // x86-64 (NVM)
        let hops = &r.curves[1]; // HOPS (NVM)
        if r.name == "redis" {
            // The interleaved redis port writes its log-free dict in
            // place, so requests carry almost no fence-stall time for
            // HOPS to recover — the two mechanisms tie within
            // sampling noise (EXPERIMENTS.md deviation 6).
            assert!(
                hops.capacity_rps > base.capacity_rps * 0.95,
                "{}: HOPS {} should at least tie clwb {}",
                r.name,
                hops.capacity_rps,
                base.capacity_rps
            );
            continue;
        }
        assert!(
            hops.capacity_rps > base.capacity_rps,
            "{}: HOPS {} should beat clwb {}",
            r.name,
            hops.capacity_rps,
            base.capacity_rps
        );
    }
}
