//! The acceptance gate for `pmcheck`: every WHISPER application, run
//! at quick scale, must produce **zero error-severity violations**.
//!
//! Warnings are allowed (and expected — the NVML-style undo commit
//! path in `ctree`/`hashmap` issues a second fence with no PM work in
//! between, which the checker flags as `P-DOUBLE-FENCE` at warn
//! severity). Any error-severity finding here is either a real
//! persistency bug in an application or a false positive in the
//! checker, and both must be fixed before shipping.

use whisper::check::{check_results, total_errors};
use whisper::suite::{run_suite, SuiteConfig};

#[test]
fn all_apps_are_clean_at_quick_scale() {
    let cfg = SuiteConfig {
        parallelism: 2,
        ..SuiteConfig::quick()
    };
    let results = run_suite(&cfg);
    let checks = check_results(&results);
    assert_eq!(checks.len(), results.len(), "one check per app");

    let mut offenders = Vec::new();
    for (c, r) in checks.iter().zip(&results) {
        // The checker is single-pass: it must have visited exactly the
        // recorded event stream, once.
        assert_eq!(
            c.report.events_visited,
            r.run.events.len() as u64,
            "{}: checker event count != trace event count",
            c.name
        );
        if c.report.errors() > 0 {
            let detail: Vec<String> = c
                .report
                .findings
                .iter()
                .filter(|f| f.severity == pmcheck::Severity::Error)
                .take(5)
                .map(ToString::to_string)
                .collect();
            offenders.push(format!("{}: {}", c.name, detail.join("; ")));
        }
    }
    assert_eq!(
        total_errors(&checks),
        0,
        "error-severity persistency violations in correct apps:\n{}",
        offenders.join("\n")
    );
}
