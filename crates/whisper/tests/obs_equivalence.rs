//! The pmobs non-perturbation contract, enforced end to end: enabling
//! metric recording must not change a single simulated outcome — same
//! trace, same counters, same simulated clock, same figures.
//!
//! Instruments are side channels (relaxed atomics off the simulated
//! clock/trace/RNG paths), so equality holds by construction; this
//! test is the proof against regressions.

use std::sync::{Mutex, MutexGuard};
use whisper::json_report;
use whisper::suite::{run_apps, AppResult, SuiteConfig, APP_NAMES};

/// The enabled flag is process-wide; serialize the tests that toggle
/// it so the "disabled" halves actually run disabled.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn assert_identical(a: &[AppResult], b: &[AppResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        let name = &x.run.name;
        assert_eq!(x.run.name, y.run.name);
        assert_eq!(x.run.events, y.run.events, "{name}: trace perturbed");
        assert_eq!(x.run.stats, y.run.stats, "{name}: MemStats perturbed");
        assert_eq!(
            x.run.duration_ns, y.run.duration_ns,
            "{name}: simulated clock perturbed"
        );
        assert_eq!(
            x.analysis.epoch_count, y.analysis.epoch_count,
            "{name}: epoch count perturbed"
        );
        assert_eq!(
            x.analysis.tx_stats.epochs_per_tx, y.analysis.tx_stats.epochs_per_tx,
            "{name}: Figure 3 perturbed"
        );
        assert_eq!(
            x.analysis.size_hist, y.analysis.size_hist,
            "{name}: Figure 4 perturbed"
        );
        assert_eq!(
            x.analysis.deps, y.analysis.deps,
            "{name}: Figure 5 perturbed"
        );
        assert_eq!(
            x.analysis.amplification, y.analysis.amplification,
            "{name}: amplification perturbed"
        );
        assert_eq!(
            x.analysis.nt_fraction, y.analysis.nt_fraction,
            "{name}: NT fraction perturbed"
        );
        assert_eq!(
            x.analysis.fig10, y.analysis.fig10,
            "{name}: Figure 10 perturbed"
        );
    }
}

/// Instrumented and uninstrumented runs of the same seed are
/// bit-identical, serial and parallel alike. The app set includes a
/// gem5-subset app (hashmap — unpaced Figure 10 replay, bloom probes
/// through HOPS) and a PMFS app (nfs — NT stores, fence drains).
#[test]
fn metrics_collection_never_changes_results() {
    let _lock = obs_lock();
    let apps = ["hashmap", "nfs", "exim"];
    for parallelism in [1, 3] {
        let cfg = SuiteConfig {
            scale: 0.006,
            seed: 17,
            parallelism,
            worker_threads: 4,
        };

        pmobs::set_enabled(false);
        let plain = run_apps(&apps, &cfg);

        pmobs::set_enabled(true);
        let instrumented = run_apps(&apps, &cfg);
        pmobs::set_enabled(false);

        assert_identical(&plain, &instrumented);
    }
}

/// The same contract for the tracing layer: collecting a causal trace
/// of a run must leave every simulated outcome bit-identical. Sinks
/// only *read* clocks the simulation already computed, so equality
/// holds by construction; this is the proof against regressions.
#[test]
fn tracing_never_changes_results() {
    let _lock = obs_lock();
    let apps = ["hashmap", "nfs", "exim"];
    for parallelism in [1, 3] {
        let cfg = SuiteConfig {
            scale: 0.006,
            seed: 17,
            parallelism,
            worker_threads: 4,
        };

        pmobs::trace::set_enabled(false);
        let plain = run_apps(&apps, &cfg);

        pmobs::trace::set_enabled(true);
        let traced = run_apps(&apps, &cfg);
        pmobs::trace::set_enabled(false);
        let tracks = pmobs::trace::take_tracks();
        assert!(
            !tracks.is_empty(),
            "traced run produced no tracks — the equivalence check is vacuous"
        );

        assert_identical(&plain, &traced);
    }
}

/// The instrumented run actually records: the registry must hold the
/// suite counters and span histograms afterwards (a silently-dead
/// instrument would make the equivalence test vacuous).
#[test]
fn instrumented_run_populates_registry() {
    let _lock = obs_lock();
    let cfg = SuiteConfig {
        scale: 0.006,
        seed: 17,
        parallelism: 1,
        worker_threads: 4,
    };
    pmobs::set_enabled(true);
    let _ = run_apps(&["hashmap"], &cfg);
    pmobs::set_enabled(false);

    let snap = pmobs::global().snapshot();
    assert!(snap.counters["suite.apps_run"] >= 1);
    assert!(snap.counters["memsim.pm_store_lines"] > 0);
    assert!(snap.counters["pmtrace.events_analyzed"] > 0);
    assert!(snap.counters["hops.fig10_replays"] >= 1);
    assert!(snap.counters["hops.replay_events"] > 0);
    assert!(snap.histograms.contains_key("sim.fig10_runtime/HOPS (NVM)"));
    assert!(snap.histograms.contains_key("span.suite.run/hashmap"));
    assert!(snap.histograms.contains_key("sim.app_duration/hashmap"));
    assert!(snap.histograms.contains_key("suite.queue_wait_ns/hashmap"));
    let sim = &snap.histograms["sim.app_duration/hashmap"];
    assert!(sim.count >= 1 && sim.sum > 0, "simulated duration recorded");
}

/// `--json` end to end: the document the binary writes parses, carries
/// every required key, and lists all eleven Table 1 rows.
#[test]
fn json_report_covers_full_suite() {
    let _lock = obs_lock();
    let cfg = SuiteConfig {
        scale: 0.004,
        seed: 3,
        parallelism: 4,
        worker_threads: 4,
    };
    pmobs::set_enabled(true);
    let names: Vec<&str> = APP_NAMES.to_vec();
    let results = run_apps(&names, &cfg);
    pmobs::set_enabled(false);
    let doc = json_report::build(&results, &cfg, &pmobs::global().snapshot());

    let parsed = pmobs::json::parse(&doc.to_pretty()).expect("report parses");
    for key in json_report::REQUIRED_KEYS {
        assert!(parsed.get(key).is_some(), "missing key {key}");
    }
    assert_eq!(
        parsed.get("schema_version").and_then(pmobs::Json::as_f64),
        Some(json_report::SCHEMA_VERSION as f64)
    );
    let table1 = parsed.get("table1").and_then(|t| t.as_arr()).unwrap();
    assert_eq!(table1.len(), 11, "all Table 1 rows present");
    for (row, name) in table1.iter().zip(APP_NAMES) {
        assert_eq!(row.get("name").and_then(|n| n.as_str()), Some(name));
        assert!(
            row.get("epochs_per_sec")
                .and_then(pmobs::Json::as_f64)
                .unwrap()
                > 0.0
        );
    }
    // Six gem5-subset apps in Figures 6 and 10, five bars each.
    let fig6 = parsed.get("fig6").and_then(|f| f.get("apps")).unwrap();
    assert_eq!(fig6.as_arr().unwrap().len(), 6);
    let fig10 = parsed.get("fig10").and_then(|f| f.get("apps")).unwrap();
    assert_eq!(fig10.as_arr().unwrap().len(), 6);
    for app in fig10.as_arr().unwrap() {
        assert_eq!(
            app.get("normalized")
                .and_then(|n| n.as_arr())
                .map(<[pmobs::Json]>::len),
            Some(5)
        );
    }
    // Metrics block populated by the instrumented run.
    let counters = parsed
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .unwrap();
    assert!(counters.get("suite.apps_run").is_some());
}
