//! Open-loop serving engine: saturation curves with latency SLOs.
//!
//! WHISPER's Figure 10 compares persistence mechanisms by *closed-loop*
//! relative runtime — each bar is "how long did the same work take".
//! Serving systems do not work that way: requests arrive whether or not
//! the server is ready (open loop), so the quantity of interest is the
//! tail of the latency distribution as offered load approaches the
//! saturation knee. This module turns the suite's recorded traces into
//! exactly that experiment:
//!
//! 1. **Calibrate.** Each of `shards` simulated machines runs the
//!    application once (its own seed), and the trace is segmented into
//!    per-request service times. Request boundaries fall on
//!    epoch-closing events (`Fence`/`DFence`) — a request is not done
//!    until its final ordering point retires — and the segment is
//!    priced under each persistence mechanism with the incremental
//!    [`hops::Replayer`], so one trace yields one service-time pool per
//!    mechanism per shard.
//! 2. **Sweep.** For each offered-load fraction of the measured
//!    baseline capacity, an arrival process (paced, or deterministic-
//!    Poisson derived from the run seed) generates request timestamps
//!    on the simulated clock; a zipfian key stream routes each request
//!    to `key % shards`; every shard is a FIFO single-server queue
//!    consuming its calibrated service times in order.
//! 3. **Measure.** Per-request latency (queueing wait + service, all on
//!    the `sim.*` clock domain — no host time anywhere) accumulates in
//!    [`pmobs::Histogram`]s; each sweep point reports achieved
//!    throughput and interpolated p50/p90/p99/p999.
//!
//! Everything is a pure function of `(scale, seed, shards, arrival)`:
//! the arrival schedule and key stream are derived from the seed alone
//! (never from the shard count or worker parallelism), and apps fan out
//! across workers with the same claim-and-reorder pattern as the suite
//! runner, so the serve section reproduces byte-for-byte whatever the
//! `--parallel` setting — the same property the crash campaign pins.

use crate::profile::{AppProfile, MechanismProfile, TailPoint};
use crate::suite::{run_named, SuiteConfig, APP_NAMES};
use crate::workloads::Zipf;
use hops::{HopsConfig, PersistModel, Replayer, TimingConfig};
use pmobs::{Histogram, Json, Unit};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::{Event, EventKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The three mechanisms the saturation sweep compares: the `clwb`
/// baseline, HOPS, and the persistent-write-queue variant of x86.
pub const SERVE_MODELS: [PersistModel; 3] = [
    PersistModel::X86Nvm,
    PersistModel::HopsNvm,
    PersistModel::X86Pwq,
];

/// Offered load as fractions of the baseline mechanism's measured
/// capacity: three points below the knee, two past it.
pub const LOAD_FRACTIONS: [f64; 5] = [0.5, 0.75, 0.9, 1.05, 1.25];

/// Key-space size of the routing stream (YCSB-style zipfian).
pub const SERVE_KEYS: usize = 1024;

/// YCSB's default request skew.
pub const SERVE_THETA: f64 = 0.99;

/// Requests per sweep point, as a multiple of the app's effective op
/// count. Deliberately independent of the shard count so the arrival
/// schedule is too.
pub const REQUESTS_PER_OP: usize = 4;

/// Arrival process of the open-loop driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Fixed interarrival gap (a perfectly paced load generator).
    Paced,
    /// Exponential interarrival gaps — a Poisson process made
    /// deterministic by drawing from the run seed.
    Bursty,
}

impl std::fmt::Display for Arrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Arrival::Paced => "paced",
            Arrival::Bursty => "bursty",
        })
    }
}

impl std::str::FromStr for Arrival {
    type Err = String;
    fn from_str(s: &str) -> Result<Arrival, String> {
        match s {
            "paced" => Ok(Arrival::Paced),
            "bursty" => Ok(Arrival::Bursty),
            other => Err(format!(
                "unknown arrival process {other:?}; use paced|bursty"
            )),
        }
    }
}

/// Serving-sweep knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Same meaning as [`SuiteConfig::scale`]: multiplier on each
    /// app's base op count, which sets both calibration-trace length
    /// and requests per sweep point.
    pub scale: f64,
    /// Master seed: calibration runs, key stream, and arrival schedule
    /// all derive from it.
    pub seed: u64,
    /// Number of sharded machines serving each app (the paper's
    /// four-thread machine, times this).
    pub shards: usize,
    /// Arrival process.
    pub arrival: Arrival,
    /// Worker threads apps fan out across. Never changes results.
    pub parallelism: usize,
}

impl ServeConfig {
    /// Quick-scale sweep matching [`SuiteConfig::quick`].
    pub fn quick() -> ServeConfig {
        ServeConfig::from_suite(&SuiteConfig::quick())
    }

    /// Adopt scale/seed/parallelism from a suite configuration, with
    /// the default four shards and bursty arrivals.
    pub fn from_suite(cfg: &SuiteConfig) -> ServeConfig {
        ServeConfig {
            scale: cfg.scale,
            seed: cfg.seed,
            shards: 4,
            arrival: Arrival::Bursty,
            parallelism: cfg.parallelism,
        }
    }
}

/// One sweep point: offered load and what the latency distribution did.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePoint {
    /// Offered load (req/s on the simulated clock).
    pub offered_rps: f64,
    /// Achieved throughput: requests over the last completion time.
    pub achieved_rps: f64,
    /// Requests simulated at this point.
    pub requests: u64,
    /// Interpolated latency percentiles (simulated ns).
    pub p50_ns: u64,
    /// 90th.
    pub p90_ns: u64,
    /// 99th.
    pub p99_ns: u64,
    /// 99.9th.
    pub p999_ns: u64,
    /// Mean queueing wait (ns) — how much of the latency is the queue.
    pub mean_wait_ns: f64,
}

/// The saturation curve of one mechanism for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismCurve {
    /// The persistence mechanism priced into the service times.
    pub model: PersistModel,
    /// Mean per-request service time across all shards (ns).
    pub mean_service_ns: f64,
    /// This mechanism's own aggregate capacity (req/s): `shards`
    /// servers each retiring `1/mean_service` per ns.
    pub capacity_rps: f64,
    /// One entry per [`LOAD_FRACTIONS`] element.
    pub points: Vec<ServePoint>,
}

/// Serving results for one Table 1 application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppServe {
    /// Table 1 name.
    pub name: String,
    /// Shard count the sweep ran with.
    pub shards: usize,
    /// Requests per sweep point.
    pub requests: usize,
    /// Offered load shared by every curve's i-th point (req/s) —
    /// [`LOAD_FRACTIONS`] times the baseline capacity, so mechanisms
    /// are compared at identical x-coordinates.
    pub offered_rps: Vec<f64>,
    /// One curve per [`SERVE_MODELS`] entry, in that order.
    pub curves: Vec<MechanismCurve>,
}

/// splitmix64 — the standard 64-bit seed scrambler; used to derive
/// independent deterministic streams (per shard, per purpose) from the
/// master seed without any cross-correlation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the app name: a stable per-app stream discriminator.
fn app_stream(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic arrival schedule: `n` request timestamps (ns on
/// the simulated clock) at offered rate `rate_rps`.
///
/// The schedule is a function of `(seed, n, rate_rps, arrival)` only —
/// in particular it does not depend on the shard count or worker
/// parallelism, which is what makes the serve section reproducible
/// across both.
pub fn arrival_schedule(seed: u64, n: usize, rate_rps: f64, arrival: Arrival) -> Vec<u64> {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    let mean_gap = 1e9 / rate_rps;
    match arrival {
        Arrival::Paced => (1..=n)
            .map(|i| (i as f64 * mean_gap).round() as u64)
            .collect(),
        Arrival::Bursty => {
            let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ 0xa55a));
            let mut t = 0.0f64;
            (0..n)
                .map(|_| {
                    let u: f64 = rng.gen();
                    // Inverse-CDF exponential draw; (1-u) keeps ln's
                    // argument in (0, 1].
                    t += -(1.0 - u).ln() * mean_gap;
                    t.round() as u64
                })
                .collect()
        }
    }
}

/// The deterministic zipfian key stream routing requests to shards.
/// Like the arrival schedule, a function of `(seed, n)` alone.
pub fn key_stream(seed: u64, n: usize) -> Vec<usize> {
    let zipf = Zipf::new(SERVE_KEYS, SERVE_THETA);
    let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ 0x5aa5));
    (0..n).map(|_| zipf.sample(&mut rng)).collect()
}

/// Segment a calibration trace into `n` per-request slices whose
/// boundaries fall just after an epoch-closing event (`Fence` or
/// `DFence`) — a request counts as served once its last ordering point
/// has retired. Returns `n` end-exclusive event indices, the last of
/// which is `events.len()`.
pub fn request_bounds(events: &[Event], n: usize) -> Vec<usize> {
    assert!(n > 0, "need at least one request");
    let len = events.len();
    let mut bounds = Vec::with_capacity(n);
    let mut prev = 0usize;
    for i in 1..=n {
        let mark = (len * i).div_ceil(n);
        let mut b = mark.max(prev);
        // Snap forward so the segment ends right after a fence.
        while b < len && !matches!(events[b - 1].kind, EventKind::Fence | EventKind::DFence) {
            b += 1;
        }
        if i == n {
            b = len;
        }
        bounds.push(b);
        prev = b;
    }
    bounds
}

/// Price a calibration trace's request segments under `model`: the
/// per-request service time is the growth of the replay makespan across
/// the segment (floored at 1 ns so a queue can never serve in zero
/// time).
pub fn service_times(events: &[Event], bounds: &[usize], model: PersistModel) -> Vec<u64> {
    service_times_with_stalls(events, bounds, model)
        .into_iter()
        .map(|(svc, _)| svc)
        .collect()
}

/// Like [`service_times`], but each segment also carries its
/// ordering-stall share: the growth of the replayer's
/// [`stall_total_ns`](Replayer::stall_total_ns) across the segment,
/// clamped to the service time (the stall sum is over threads while the
/// makespan is a max, so an unclamped delta could exceed the segment on
/// multi-threaded traces).
pub fn service_times_with_stalls(
    events: &[Event],
    bounds: &[usize],
    model: PersistModel,
) -> Vec<(u64, u64)> {
    let cfg = TimingConfig::default();
    let hops_cfg = HopsConfig::default();
    let mut rp = Replayer::new(&cfg, &hops_cfg, model);
    let mut services = Vec::with_capacity(bounds.len());
    let mut prev = 0u64;
    let mut prev_stall = 0u64;
    let mut idx = 0usize;
    for &b in bounds {
        while idx < b {
            rp.step(&events[idx]);
            idx += 1;
        }
        let now = rp.makespan_ns();
        let stall_now = rp.stall_total_ns();
        // The replayer's makespan is monotone in replayed events, so a
        // segment can be empty (0 ns, floored to 1 below) but never
        // negative. Going backwards means a replayer clock bug —
        // assert in debug builds, and surface it as a counter in
        // release runs instead of silently reporting a 1 ns segment.
        debug_assert!(
            now >= prev,
            "replayer makespan went backwards: {now} < {prev} at bound {b}"
        );
        if now < prev {
            pmobs::count!("serve.nonmonotone_makespan");
        }
        let svc = now.saturating_sub(prev).max(1);
        let stall = stall_now.saturating_sub(prev_stall).min(svc);
        services.push((svc, stall));
        prev = now;
        prev_stall = stall_now;
    }
    services
}

/// Run the serving sweep for one application.
///
/// Pure in `(name, scale, seed, shards, arrival)`; `cfg.parallelism`
/// is never consulted here.
pub fn serve_app(name: &str, cfg: &ServeConfig) -> AppServe {
    serve_app_full(name, cfg).0
}

/// The serving sweep plus its phase profile (see [`crate::profile`]).
///
/// The profile derives from the same per-request samples that feed the
/// latency histograms, so computing it never changes the [`AppServe`]
/// half. When tracing is active, the knee point (the last
/// [`LOAD_FRACTIONS`] entry) of every mechanism also emits one request
/// track per shard plus one shared arrivals track — after the
/// simulation loop, from the recorded samples, so tracing cannot
/// perturb the queues either.
pub fn serve_app_full(name: &str, cfg: &ServeConfig) -> (AppServe, AppProfile) {
    assert!(cfg.shards > 0, "need at least one shard");
    let suite = SuiteConfig {
        scale: cfg.scale,
        seed: cfg.seed,
        parallelism: 1,
        worker_threads: 4,
    };
    let ops = suite
        .effective_ops(name)
        .unwrap_or_else(|| panic!("unknown application {name:?}; expected one of {APP_NAMES:?}"));

    // Calibrate: one seeded run per shard, one (service, stall) pool
    // per mechanism per shard. Calibration runs are warm-up, not the
    // experiment — suppress their tracks.
    let stream = app_stream(name);
    let mut pools: Vec<Vec<Vec<(u64, u64)>>> =
        vec![Vec::with_capacity(cfg.shards); SERVE_MODELS.len()];
    {
        let _quiet = pmobs::trace::suppress();
        for shard in 0..cfg.shards {
            let shard_seed = splitmix64(cfg.seed ^ stream ^ (shard as u64 + 1));
            let run = run_named(name, ops, shard_seed);
            let bounds = request_bounds(&run.events, ops);
            for (mi, &model) in SERVE_MODELS.iter().enumerate() {
                pools[mi].push(service_times_with_stalls(&run.events, &bounds, model));
            }
        }
    }

    let mean_service = |pool: &[Vec<(u64, u64)>]| {
        let (sum, count) = pool.iter().fold((0u64, 0u64), |(s, c), v| {
            (
                s + v.iter().map(|&(svc, _)| svc).sum::<u64>(),
                c + v.len() as u64,
            )
        });
        sum as f64 / count.max(1) as f64
    };
    let capacity = |mean_ns: f64| cfg.shards as f64 * 1e9 / mean_ns;

    // Offered loads are fractions of the *baseline* capacity so every
    // mechanism's curve shares x-coordinates; a faster mechanism then
    // visibly survives loads that saturate the baseline.
    let base_capacity = capacity(mean_service(&pools[0]));
    let offered: Vec<f64> = LOAD_FRACTIONS.iter().map(|f| f * base_capacity).collect();

    let n_req = ops * REQUESTS_PER_OP;
    let keys = key_stream(cfg.seed ^ stream, n_req);
    let knee = LOAD_FRACTIONS.len() - 1;

    let mut mechanisms: Vec<MechanismProfile> = Vec::with_capacity(SERVE_MODELS.len());
    let curves: Vec<MechanismCurve> = SERVE_MODELS
        .iter()
        .enumerate()
        .map(|(mi, &model)| {
            let mean_ns = mean_service(&pools[mi]);
            let mut queue_ns = 0u64;
            let mut replay_ns = 0u64;
            let mut fence_stall_ns = 0u64;
            let mut tail: Vec<TailPoint> = Vec::with_capacity(offered.len());
            let points: Vec<ServePoint> = offered
                .iter()
                .enumerate()
                .map(|(pi, &rate)| {
                    let arrivals = arrival_schedule(cfg.seed ^ stream, n_req, rate, cfg.arrival);
                    let (p, samples) = simulate_point(&arrivals, &keys, &pools[mi], rate);
                    for s in &samples {
                        queue_ns += s.start - s.at;
                        replay_ns += s.svc - s.stall;
                        fence_stall_ns += s.stall;
                    }
                    tail.push(tail_attribution(&p, LOAD_FRACTIONS[pi], &samples));
                    if pi == knee {
                        emit_knee_trace(name, model, mi == 0, &samples, cfg.shards);
                    }
                    if pmobs::enabled() {
                        pmobs::record_sim_ns(&format!("serve_p99_ns/{name}/{model}"), p.p99_ns);
                    }
                    p
                })
                .collect();
            mechanisms.push(MechanismProfile {
                model,
                queue_ns,
                replay_ns,
                fence_stall_ns,
                service_ns: replay_ns + fence_stall_ns,
                total_ns: queue_ns + replay_ns + fence_stall_ns,
                tail,
            });
            MechanismCurve {
                model,
                mean_service_ns: mean_ns,
                capacity_rps: capacity(mean_ns),
                points,
            }
        })
        .collect();

    (
        AppServe {
            name: name.to_string(),
            shards: cfg.shards,
            requests: n_req,
            offered_rps: offered,
            curves,
        },
        AppProfile {
            name: name.to_string(),
            mechanisms,
        },
    )
}

/// One simulated request, kept for profiling and knee tracing. The
/// latency histograms never read these, so collecting them cannot
/// change the serve section.
#[derive(Debug, Clone, Copy)]
struct RequestSample {
    shard: usize,
    key: usize,
    at: u64,
    start: u64,
    done: u64,
    svc: u64,
    stall: u64,
}

/// Restrict the phase sum to requests at or above the point's reported
/// p99. `latency = queue + replay + stall` holds per request, so the
/// three percentages sum to exactly 100.
fn tail_attribution(p: &ServePoint, load_fraction: f64, samples: &[RequestSample]) -> TailPoint {
    let mut n = 0u64;
    let mut total = 0u64;
    let mut queue = 0u64;
    let mut replay = 0u64;
    let mut stall = 0u64;
    for s in samples {
        let lat = s.done - s.at;
        if lat >= p.p99_ns {
            n += 1;
            total += lat;
            queue += s.start - s.at;
            replay += s.svc - s.stall;
            stall += s.stall;
        }
    }
    let pct = |x: u64| {
        if total == 0 {
            0.0
        } else {
            x as f64 * 100.0 / total as f64
        }
    };
    TailPoint {
        load_fraction,
        offered_rps: p.offered_rps,
        p99_ns: p.p99_ns,
        tail_requests: n,
        tail_total_ns: total,
        queue_pct: pct(queue),
        replay_pct: pct(replay),
        fence_stall_pct: pct(stall),
    }
}

/// Emit the knee point's request tracks from recorded samples: per
/// shard, a lane of `request` spans (value = queue wait) each nesting
/// its `fence_stall` share at the end of service; once per app, an
/// arrivals lane of instants (value = routing key). FIFO guarantees
/// per-shard starts are non-decreasing, so each lane is monotone and
/// its spans never overlap.
fn emit_knee_trace(
    name: &str,
    model: PersistModel,
    first_model: bool,
    samples: &[RequestSample],
    shards: usize,
) {
    if !pmobs::trace::active() {
        return;
    }
    if first_model {
        if let Some(mut lane) = pmobs::trace::sink_named(format!("serve/{name}/arrivals")) {
            for r in samples {
                lane.instant("arrival", r.at, r.key as u64);
            }
        }
    }
    for shard in 0..shards {
        let Some(mut lane) = pmobs::trace::sink_named(format!("serve/{name}/{model}/shard{shard}"))
        else {
            return;
        };
        for r in samples.iter().filter(|r| r.shard == shard) {
            lane.begin("request", r.start, r.start - r.at);
            if r.stall > 0 {
                lane.begin("fence_stall", r.done - r.stall, r.stall);
                lane.end(r.done);
            }
            lane.end(r.done);
        }
    }
}

/// Drive one offered-load point through the FIFO shard queues.
fn simulate_point(
    arrivals: &[u64],
    keys: &[usize],
    pool: &[Vec<(u64, u64)>],
    rate: f64,
) -> (ServePoint, Vec<RequestSample>) {
    let shards = pool.len();
    let mut free = vec![0u64; shards];
    let mut cursor = vec![0usize; shards];
    let latency = Histogram::new(Unit::Nanos);
    let wait = Histogram::new(Unit::Nanos);
    let mut last_done = 0u64;
    let mut samples = Vec::with_capacity(arrivals.len());
    for (i, (&at, &key)) in arrivals.iter().zip(keys).enumerate() {
        debug_assert!(i == 0 || arrivals[i - 1] <= at, "arrivals are sorted");
        let s = key % shards;
        let (svc, stall) = pool[s][cursor[s] % pool[s].len()];
        cursor[s] += 1;
        let start = at.max(free[s]);
        let done = start + svc;
        free[s] = done;
        latency.record(done - at);
        wait.record(start - at);
        last_done = last_done.max(done);
        samples.push(RequestSample {
            shard: s,
            key,
            at,
            start,
            done,
            svc,
            stall,
        });
    }
    let lat = latency.snapshot();
    let pct = |p: f64| lat.percentile(p).unwrap_or(0);
    let point = ServePoint {
        offered_rps: rate,
        achieved_rps: arrivals.len() as f64 * 1e9 / last_done.max(1) as f64,
        requests: lat.count,
        p50_ns: pct(50.0),
        p90_ns: pct(90.0),
        p99_ns: pct(99.0),
        p999_ns: pct(99.9),
        mean_wait_ns: wait.snapshot().mean().unwrap_or(0.0),
    };
    (point, samples)
}

/// Sweep every Table 1 application, fanned out across
/// `cfg.parallelism` workers with the suite runner's claim-and-reorder
/// pattern. Results are bit-identical whatever the worker count: each
/// [`serve_app`] is seeded and self-contained, and rows come back in
/// Table 1 order.
pub fn run_serve(cfg: &ServeConfig) -> Vec<AppServe> {
    serve_apps(&APP_NAMES, cfg)
}

/// [`run_serve`] plus per-app phase profiles, in the same Table 1
/// order.
pub fn run_serve_profiled(cfg: &ServeConfig) -> (Vec<AppServe>, Vec<AppProfile>) {
    serve_apps_profiled(&APP_NAMES, cfg)
}

/// Sweep a chosen set of applications, in the given order.
pub fn serve_apps(names: &[&str], cfg: &ServeConfig) -> Vec<AppServe> {
    serve_apps_profiled(names, cfg).0
}

/// Sweep a chosen set of applications and keep their phase profiles.
pub fn serve_apps_profiled(names: &[&str], cfg: &ServeConfig) -> (Vec<AppServe>, Vec<AppProfile>) {
    let workers = cfg.parallelism.clamp(1, names.len().max(1));
    let pairs: Vec<(AppServe, AppProfile)> = if workers == 1 {
        names.iter().map(|n| serve_app_full(n, cfg)).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let finished: Mutex<Vec<(usize, (AppServe, AppProfile))>> =
            Mutex::new(Vec::with_capacity(names.len()));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = names.get(i) else { break };
                    let result = serve_app_full(name, cfg);
                    finished.lock().unwrap().push((i, result));
                });
            }
        });
        let mut slots = finished.into_inner().unwrap();
        slots.sort_unstable_by_key(|(i, _)| *i);
        slots.into_iter().map(|(_, r)| r).collect()
    };
    pairs.into_iter().unzip()
}

/// Serialize the sweep for the report's `serve` section (schema v4).
/// Everything here is on the simulated clock, so the section is
/// deterministic per `(scale, seed, shards, arrival)` — but it sits
/// outside the golden deterministic subset, like `crash`.
pub fn serve_json(reports: &[AppServe], cfg: &ServeConfig) -> Json {
    let apps: Vec<Json> = reports
        .iter()
        .map(|r| {
            let curves: Vec<Json> = r
                .curves
                .iter()
                .map(|c| {
                    let points: Vec<Json> = c
                        .points
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("offered_rps", p.offered_rps)
                                .field("achieved_rps", p.achieved_rps)
                                .field("requests", p.requests)
                                .field("p50_ns", p.p50_ns)
                                .field("p90_ns", p.p90_ns)
                                .field("p99_ns", p.p99_ns)
                                .field("p999_ns", p.p999_ns)
                                .field("mean_wait_ns", p.mean_wait_ns)
                        })
                        .collect();
                    Json::obj()
                        .field("model", c.model.to_string().as_str())
                        .field("mean_service_ns", c.mean_service_ns)
                        .field("capacity_rps", c.capacity_rps)
                        .field("points", points)
                })
                .collect();
            Json::obj()
                .field("name", r.name.as_str())
                .field("shards", r.shards as u64)
                .field("requests", r.requests as u64)
                .field(
                    "offered_rps",
                    r.offered_rps
                        .iter()
                        .copied()
                        .map(Json::from)
                        .collect::<Vec<_>>(),
                )
                .field("curves", curves)
        })
        .collect();
    Json::obj()
        .field("shards", cfg.shards as u64)
        .field("arrival", cfg.arrival.to_string().as_str())
        .field(
            "load_fractions",
            LOAD_FRACTIONS
                .iter()
                .copied()
                .map(Json::from)
                .collect::<Vec<_>>(),
        )
        .field(
            "models",
            SERVE_MODELS
                .iter()
                .map(|m| Json::from(m.to_string()))
                .collect::<Vec<_>>(),
        )
        .field("apps", apps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_seeded_and_sorted() {
        for arrival in [Arrival::Paced, Arrival::Bursty] {
            let a = arrival_schedule(42, 500, 1e6, arrival);
            let b = arrival_schedule(42, 500, 1e6, arrival);
            assert_eq!(a, b, "{arrival}: same seed, same schedule");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{arrival}: sorted");
            let c = arrival_schedule(43, 500, 1e6, arrival);
            if arrival == Arrival::Bursty {
                assert_ne!(a, c, "different seed, different bursts");
            } else {
                assert_eq!(a, c, "paced ignores the seed");
            }
        }
    }

    #[test]
    fn bursty_mean_gap_matches_rate() {
        let n = 20_000;
        let sched = arrival_schedule(7, n, 1e6, Arrival::Bursty);
        // 1e6 req/s → 1000 ns mean gap → last arrival ≈ n × 1000.
        let mean_gap = *sched.last().unwrap() as f64 / n as f64;
        assert!(
            (mean_gap - 1000.0).abs() < 50.0,
            "mean gap {mean_gap} far from 1000"
        );
    }

    #[test]
    fn key_stream_is_skewed_and_shard_independent() {
        let keys = key_stream(42, 10_000);
        assert_eq!(keys, key_stream(42, 10_000));
        let hot = keys.iter().filter(|&&k| k == 0).count();
        let cold = keys.iter().filter(|&&k| k == SERVE_KEYS / 2).count();
        assert!(hot > cold * 5 + 5, "zipf head dominates: {hot} vs {cold}");
        assert!(keys.iter().all(|&k| k < SERVE_KEYS));
    }

    #[test]
    fn request_bounds_end_on_fences() {
        let run = run_named("hashmap", 40, 3);
        let bounds = request_bounds(&run.events, 40);
        assert_eq!(bounds.len(), 40);
        assert_eq!(*bounds.last().unwrap(), run.events.len());
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "monotone");
        for &b in &bounds[..bounds.len() - 1] {
            if b < run.events.len() && b > 0 {
                assert!(
                    matches!(run.events[b - 1].kind, EventKind::Fence | EventKind::DFence),
                    "segment must end just after an epoch boundary"
                );
            }
        }
    }

    #[test]
    fn service_times_sum_to_replay_makespan() {
        let run = run_named("ctree", 60, 5);
        let bounds = request_bounds(&run.events, 60);
        for model in SERVE_MODELS {
            let services = service_times(&run.events, &bounds, model);
            assert_eq!(services.len(), 60);
            let total: u64 = services.iter().sum();
            let replayed = hops::replay(
                &run.events,
                &TimingConfig::default(),
                &HopsConfig::default(),
                model,
            )
            .runtime_ns;
            // Segments partition the trace; only the max(1) floor on
            // empty segments can push the sum past the makespan.
            assert!(total >= replayed, "{model}");
            assert!(total <= replayed + 60, "{model}: {total} vs {replayed}");
        }
    }

    #[test]
    fn makespan_is_monotone_and_empty_segments_floor_to_one() {
        // Duplicate bounds make genuinely empty segments: the makespan
        // must not move across them (they floor to the 1 ns minimum),
        // and a healthy replayer must never trip the
        // `serve.nonmonotone_makespan` counter — that counter exists to
        // surface replayer clock bugs that the release build would
        // otherwise hide behind `saturating_sub(..).max(1)`.
        let was = pmobs::enabled();
        pmobs::set_enabled(true);
        let run = run_named("ctree", 40, 9);
        let bounds = request_bounds(&run.events, 40);
        let mut doubled = Vec::with_capacity(bounds.len() * 2);
        for &b in &bounds {
            doubled.push(b);
            doubled.push(b); // empty segment
        }
        let services = service_times(&run.events, &doubled, PersistModel::X86Nvm);
        for pair in services.chunks(2) {
            assert_eq!(pair[1], 1, "empty segment floors to 1 ns");
        }
        let snap = pmobs::global().snapshot();
        assert_eq!(
            snap.counters.get("serve.nonmonotone_makespan").copied(),
            None,
            "monotone replay must never count a backwards makespan"
        );
        pmobs::set_enabled(was);
    }

    #[test]
    fn serve_app_emits_full_curves() {
        let cfg = ServeConfig {
            scale: 0.008,
            seed: 11,
            shards: 2,
            arrival: Arrival::Bursty,
            parallelism: 1,
        };
        let r = serve_app("hashmap", &cfg);
        assert_eq!(r.curves.len(), SERVE_MODELS.len());
        assert_eq!(r.offered_rps.len(), LOAD_FRACTIONS.len());
        for c in &r.curves {
            assert_eq!(c.points.len(), LOAD_FRACTIONS.len());
            assert!(c.capacity_rps > 0.0);
            for p in &c.points {
                assert!(p.requests > 0);
                assert!(p.p50_ns > 0, "{}: vacuous histogram", c.model);
                assert!(p.p50_ns <= p.p90_ns && p.p90_ns <= p.p99_ns);
                assert!(p.p99_ns <= p.p999_ns);
            }
        }
        // HOPS removes foreground ordering stalls, so it serves faster.
        assert!(r.curves[1].capacity_rps > r.curves[0].capacity_rps);
    }

    #[test]
    fn tail_attribution_sums_to_hundred() {
        let cfg = ServeConfig {
            scale: 0.008,
            seed: 11,
            shards: 2,
            arrival: Arrival::Bursty,
            parallelism: 1,
        };
        let (_, prof) = serve_app_full("hashmap", &cfg);
        assert_eq!(prof.mechanisms.len(), SERVE_MODELS.len());
        for m in &prof.mechanisms {
            assert_eq!(m.service_ns, m.replay_ns + m.fence_stall_ns);
            assert_eq!(m.total_ns, m.queue_ns + m.service_ns);
            assert_eq!(m.tail.len(), LOAD_FRACTIONS.len());
            for t in &m.tail {
                assert!(t.tail_requests > 0, "{}: p99 tail never empty", m.model);
                assert!(t.tail_total_ns > 0);
                let sum = t.queue_pct + t.replay_pct + t.fence_stall_pct;
                assert!(
                    (sum - 100.0).abs() < 1e-6,
                    "{}: phases sum to {sum}",
                    m.model
                );
            }
        }
        // The x86 baseline pays ordering in the foreground; HOPS hides
        // most of it — visible directly in the stall phase.
        assert!(prof.mechanisms[0].fence_stall_ns > prof.mechanisms[1].fence_stall_ns);
    }

    #[test]
    fn queueing_grows_past_the_knee() {
        let cfg = ServeConfig {
            scale: 0.01,
            seed: 42,
            shards: 2,
            arrival: Arrival::Bursty,
            parallelism: 1,
        };
        let r = serve_app("ctree", &cfg);
        for c in &r.curves {
            let below = &c.points[0]; // 0.5 × baseline capacity
            let above = c.points.last().unwrap(); // 1.25 ×
            assert!(
                above.mean_wait_ns > below.mean_wait_ns,
                "{}: queueing must grow with offered load",
                c.model
            );
        }
        // The baseline is saturated at 1.25× its own capacity: the
        // tail there is dominated by queue build-up.
        let base = &r.curves[0];
        assert!(
            base.points.last().unwrap().p99_ns > base.points[0].p99_ns * 2,
            "saturated p99 should blow past the uncongested one"
        );
    }
}
