//! Suite driver: run applications, analyze traces, bundle results.

use crate::apps::{self, AppRun};
use hops::{figure10_bars, HopsConfig, PersistModel, TimingConfig};
use pmtrace::analysis::{
    self, AmplificationReport, DepStats, EpochSizeHistogram, TxStats,
};

/// The eleven Table 1 rows (ten applications; N-store contributes two
/// workloads).
pub const APP_NAMES: [&str; 11] = [
    "echo",
    "nstore-ycsb",
    "nstore-tpcc",
    "redis",
    "ctree",
    "hashmap",
    "vacation",
    "memcached",
    "nfs",
    "exim",
    "mysql",
];

/// The six applications the paper runs under gem5 for Figures 6 and 10.
pub const SIM_APPS: [&str; 6] = ["echo", "nstore-ycsb", "redis", "ctree", "hashmap", "vacation"];

/// Suite-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Multiplier on each workload's base operation count. The paper's
    /// full counts (e.g. 8 M transactions) are scaled so the whole
    /// suite runs in seconds; every reported metric is a rate or a
    /// distribution, insensitive to duration.
    pub scale: f64,
    /// Master seed for workloads and interleavings.
    pub seed: u64,
}

impl SuiteConfig {
    /// Fast configuration for unit tests and smoke runs.
    pub fn quick() -> SuiteConfig {
        SuiteConfig {
            scale: 0.05,
            seed: 42,
        }
    }

    /// The default, statistically stable configuration.
    pub fn standard() -> SuiteConfig {
        SuiteConfig {
            scale: 1.0,
            seed: 42,
        }
    }

    fn ops(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(20)
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig::standard()
    }
}

/// Everything computed from one application's trace — the inputs to
/// every table and figure.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Total epochs in the trace.
    pub epoch_count: usize,
    /// Table 1's rightmost column.
    pub epochs_per_sec: f64,
    /// Figure 3's statistic.
    pub tx_stats: TxStats,
    /// Figure 4.
    pub size_hist: EpochSizeHistogram,
    /// Figure 5.
    pub deps: DepStats,
    /// Section 5.2 write amplification.
    pub amplification: AmplificationReport,
    /// Consequence 10's NT-store byte fraction.
    pub nt_fraction: Option<f64>,
    /// Section 5.1: singletons under 10 bytes.
    pub small_singleton_fraction: Option<f64>,
    /// Figure 6: PM share of all memory accesses.
    pub pm_fraction: f64,
    /// Figure 10: normalized runtime per persistence model.
    pub fig10: Vec<(PersistModel, f64)>,
}

/// One suite row: the raw run plus its analysis.
#[derive(Debug)]
pub struct AppResult {
    /// The application run.
    pub run: AppRun,
    /// Its analysis.
    pub analysis: Analysis,
}

/// Analyze a finished run.
pub fn analyze(run: &AppRun) -> Analysis {
    let epochs = analysis::split_epochs(&run.events);
    let fig10 = figure10_bars(&run.events, &TimingConfig::default(), &HopsConfig::default());
    Analysis {
        epoch_count: epochs.len(),
        epochs_per_sec: analysis::epochs_per_second(epochs.len(), run.duration_ns),
        tx_stats: analysis::tx_stats(&epochs),
        size_hist: analysis::epoch_size_histogram(&epochs),
        deps: analysis::dependencies(&epochs),
        amplification: analysis::amplification(&epochs),
        nt_fraction: analysis::nt_fraction(&epochs),
        small_singleton_fraction: analysis::small_singleton_fraction(&epochs),
        pm_fraction: run.stats.pm_fraction(),
        fig10,
    }
}

/// Run one application by Table 1 name.
///
/// For the six gem5-subset applications, Figure 10 is replayed from a
/// second, *unpaced* run — mirroring the paper's methodology, where
/// Table 1 rates come from real-hardware runs with full client stacks
/// while Figures 6 and 10 come from trimmed full-system simulations.
///
/// # Panics
///
/// Panics on an unknown name; the valid names are [`APP_NAMES`].
pub fn run_app(name: &str, cfg: &SuiteConfig) -> AppResult {
    let seed = cfg.seed;
    let run = match name {
        "echo" => apps::echo::run(cfg.ops(20_000), seed),
        "nstore-ycsb" => apps::nstore::run_ycsb(cfg.ops(16_000), seed),
        "nstore-tpcc" => apps::nstore::run_tpcc(cfg.ops(3_000), seed),
        "redis" => apps::redis::run(cfg.ops(20_000), seed),
        "ctree" => apps::ctree(cfg.ops(16_000), seed),
        "hashmap" => apps::hashmap(cfg.ops(16_000), seed),
        "vacation" => apps::vacation::run(cfg.ops(10_000), seed),
        "memcached" => apps::memcached::run(cfg.ops(20_000), seed),
        "nfs" => apps::nfs(cfg.ops(4_000), seed),
        "exim" => apps::exim(cfg.ops(400), seed),
        "mysql" => apps::mysql(cfg.ops(1_500), seed),
        other => panic!("unknown application {other:?}; expected one of {APP_NAMES:?}"),
    };
    let mut analysis = analyze(&run);
    if SIM_APPS.contains(&name) {
        let sim_ops = |base: usize| cfg.ops(base) / 2;
        let sim = match name {
            "echo" => apps::echo::run_unpaced(sim_ops(20_000), seed),
            "nstore-ycsb" => apps::nstore::run_ycsb_unpaced(sim_ops(16_000), seed),
            "redis" => apps::redis::run_unpaced(sim_ops(20_000), seed),
            "ctree" => apps::micro::ctree_unpaced(sim_ops(16_000), seed),
            "hashmap" => apps::micro::hashmap_unpaced(sim_ops(16_000), seed),
            "vacation" => apps::vacation::run_unpaced(sim_ops(10_000), seed),
            _ => unreachable!("SIM_APPS covered above"),
        };
        analysis.fig10 =
            figure10_bars(&sim.events, &TimingConfig::default(), &HopsConfig::default());
    }
    AppResult { run, analysis }
}

/// Run the whole suite in Table 1 order.
pub fn run_suite(cfg: &SuiteConfig) -> Vec<AppResult> {
    APP_NAMES.iter().map(|n| run_app(n, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_app_dispatches_every_name() {
        let cfg = SuiteConfig {
            scale: 0.008,
            seed: 1,
        };
        for name in APP_NAMES {
            let r = run_app(name, &cfg);
            assert_eq!(r.run.name, name, "name round-trips");
            assert!(r.analysis.epoch_count > 0, "{name}: no epochs recorded");
            assert!(r.analysis.epochs_per_sec > 0.0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        run_app("nope", &SuiteConfig::quick());
    }

    #[test]
    fn analysis_fig10_has_five_bars() {
        let r = run_app("hashmap", &SuiteConfig { scale: 0.01, seed: 2 });
        assert_eq!(r.analysis.fig10.len(), 5);
        let base = r.analysis.fig10[0];
        assert_eq!(base.0, PersistModel::X86Nvm);
        assert!((base.1 - 1.0).abs() < 1e-9);
    }
}
