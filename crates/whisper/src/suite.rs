//! Suite driver: run applications, analyze traces, bundle results.
//!
//! Table 1 is a *throughput* table, so the driver itself is built for
//! throughput: applications run in parallel across a scoped thread
//! pool (each run is seeded and fully self-contained, so results are
//! bit-identical to the serial order), and each trace is analyzed in a
//! single streaming pass ([`pmtrace::analysis::Analyzer`]) instead of
//! one walk per statistic.

use crate::apps::{self, AppRun};
use hops::{figure10_bars, HopsConfig, PersistModel, TimingConfig};
use pmtrace::analysis::{
    self, AmplificationReport, Analyzer, DepStats, EpochSizeHistogram, TxStats,
};
use pmtrace::Event;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The eleven Table 1 rows (ten applications; N-store contributes two
/// workloads).
pub const APP_NAMES: [&str; 11] = [
    "echo",
    "nstore-ycsb",
    "nstore-tpcc",
    "redis",
    "ctree",
    "hashmap",
    "vacation",
    "memcached",
    "nfs",
    "exim",
    "mysql",
];

/// Base (scale 1.0) operation counts per Table 1 row — the single
/// source [`run_app`] scales and the JSON report echoes back as
/// `config.effective_ops`.
pub const OP_BASES: [(&str, usize); 11] = [
    ("echo", 20_000),
    ("nstore-ycsb", 16_000),
    ("nstore-tpcc", 3_000),
    ("redis", 20_000),
    ("ctree", 16_000),
    ("hashmap", 16_000),
    ("vacation", 10_000),
    ("memcached", 20_000),
    ("nfs", 4_000),
    ("exim", 400),
    ("mysql", 1_500),
];

/// The six applications the paper runs under gem5 for Figures 6 and 10.
pub const SIM_APPS: [&str; 6] = [
    "echo",
    "nstore-ycsb",
    "redis",
    "ctree",
    "hashmap",
    "vacation",
];

/// Suite-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Multiplier on each workload's base operation count. The paper's
    /// full counts (e.g. 8 M transactions) are scaled so the whole
    /// suite runs in seconds; every reported metric is a rate or a
    /// distribution, insensitive to duration.
    pub scale: f64,
    /// Master seed for workloads and interleavings.
    pub seed: u64,
    /// Worker threads [`run_suite`] fans applications out across.
    /// `1` (or `0`) runs serially on the caller's thread. Parallelism
    /// never changes results: every application run is seeded and
    /// self-contained, and results come back in Table 1 order.
    pub parallelism: usize,
    /// Logical worker threads *inside* the scheduler-interleaved
    /// applications (redis, memcached, vacation): the seeded
    /// [`memsim::Scheduler`] interleaves this many clients over one
    /// shared machine. Unlike `parallelism` (a host knob), this is a
    /// workload parameter — it changes the trace, so it is part of the
    /// deterministic config the JSON report echoes back.
    pub worker_threads: u32,
}

/// Default scheduler-worker count for the interleaved applications —
/// the paper's Table 1 runs them with 4 client threads.
pub const DEFAULT_WORKER_THREADS: u32 = 4;

impl SuiteConfig {
    /// Fast configuration for unit tests and smoke runs.
    pub fn quick() -> SuiteConfig {
        SuiteConfig {
            scale: 0.05,
            ..SuiteConfig::standard()
        }
    }

    /// The default, statistically stable configuration: full scale,
    /// one suite worker per available core.
    pub fn standard() -> SuiteConfig {
        SuiteConfig {
            scale: 1.0,
            seed: 42,
            parallelism: default_parallelism(),
            worker_threads: DEFAULT_WORKER_THREADS,
        }
    }

    fn ops(&self, base: usize) -> usize {
        let requested = (base as f64 * self.scale) as usize;
        assert!(
            requested > 0,
            "scale {} yields 0 effective ops for base {base}; \
             the smallest usable scale is {} (1 op of the smallest base)",
            self.scale,
            1.0 / MIN_OP_BASE as f64
        );
        if requested < MIN_OPS && !OPS_FLOOR_WARNED.swap(true, Ordering::Relaxed) {
            OPS_FLOOR_WARN_COUNT.fetch_add(1, Ordering::Relaxed);
            pmobs::warn!(
                "scale {} floors op counts at {MIN_OPS} (requested {requested} \
                 of base {base}); reported rates use the floored count",
                self.scale
            );
        }
        requested.max(MIN_OPS)
    }

    /// Reject configurations under which any Table 1 row would scale to
    /// zero effective operations. A zero-op run would silently report
    /// rates for work that never happened, so this is a hard config
    /// error (the CLI maps it to exit code 2) rather than a warning.
    pub fn validate(&self) -> Result<(), String> {
        for (name, base) in OP_BASES {
            if (base as f64 * self.scale) as usize == 0 {
                return Err(format!(
                    "--scale {} yields 0 effective ops for {name} (base {base}); \
                     use at least {} so every app runs ≥ 1 op",
                    self.scale,
                    1.0 / MIN_OP_BASE as f64
                ));
            }
        }
        if !(1..=64).contains(&self.worker_threads) {
            return Err(format!(
                "--threads {} out of range; the scheduler supports 1..=64 workers",
                self.worker_threads
            ));
        }
        Ok(())
    }

    /// The operation count [`run_app`] actually runs for `name` at this
    /// scale — the [`OP_BASES`] base scaled and clamped to the
    /// [`MIN_OPS`] floor. `None` for names outside [`APP_NAMES`].
    pub fn effective_ops(&self, name: &str) -> Option<usize> {
        OP_BASES
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, base)| self.ops(*base))
    }
}

/// Floor under every scaled op count: a workload below this never
/// exercises its steady state, so tiny `--scale` values clamp here (and
/// warn once — the reported rates then describe the floored count, not
/// the requested one). Scales that truncate to **zero** ops are a hard
/// error instead — see [`SuiteConfig::validate`].
pub const MIN_OPS: usize = 20;

/// The smallest base in [`OP_BASES`] (exim); `1 / MIN_OP_BASE` is the
/// smallest scale at which every app still runs at least one op.
pub const MIN_OP_BASE: usize = 400;

/// One-shot latch for the op-count floor warning.
static OPS_FLOOR_WARNED: AtomicBool = AtomicBool::new(false);

/// How many times the floor warning has actually been emitted — the
/// swap on [`OPS_FLOOR_WARNED`] is the only way in, so this can never
/// pass 1 in a process, however many workers race into
/// [`SuiteConfig::ops`]. Exposed for the once-under-parallelism test.
static OPS_FLOOR_WARN_COUNT: AtomicUsize = AtomicUsize::new(0);

/// How many times the op-count floor warning has been emitted (0 or 1).
pub fn ops_floor_warnings() -> u64 {
    OPS_FLOOR_WARN_COUNT.load(Ordering::Relaxed) as u64
}

/// One suite worker per available core (1 if the count is unknown).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig::standard()
    }
}

/// Everything computed from one application's trace — the inputs to
/// every table and figure.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Total epochs in the trace.
    pub epoch_count: usize,
    /// Table 1's rightmost column.
    pub epochs_per_sec: f64,
    /// Figure 3's statistic.
    pub tx_stats: TxStats,
    /// Figure 4.
    pub size_hist: EpochSizeHistogram,
    /// Figure 5.
    pub deps: DepStats,
    /// Section 5.2 write amplification.
    pub amplification: AmplificationReport,
    /// Consequence 10's NT-store byte fraction.
    pub nt_fraction: Option<f64>,
    /// Section 5.1: singletons under 10 bytes.
    pub small_singleton_fraction: Option<f64>,
    /// Figure 6: PM share of all memory accesses.
    pub pm_fraction: f64,
    /// Figure 10: normalized runtime per persistence model.
    pub fig10: Vec<(PersistModel, f64)>,
}

/// One suite row: the raw run plus its analysis.
#[derive(Debug)]
pub struct AppResult {
    /// The application run.
    pub run: AppRun,
    /// Its analysis.
    pub analysis: Analysis,
}

/// Analyze a finished run in a single streaming pass over its trace.
///
/// The Figure 10 timing replay is **not** performed here: it is by far
/// the most expensive analysis step (five full-trace replays), and the
/// right trace to replay depends on the application — the six gem5
/// subset apps replay a second *unpaced* run, everything else replays
/// the paced trace. [`run_app`] attaches it via [`fig10_for`];
/// `Analysis::fig10` stays empty until someone does.
pub fn analyze(run: &AppRun) -> Analysis {
    let report = Analyzer::analyze_events(&run.events);
    Analysis {
        epoch_count: report.epoch_count,
        epochs_per_sec: analysis::epochs_per_second(report.epoch_count, run.duration_ns),
        tx_stats: report.tx_stats,
        size_hist: report.size_hist,
        deps: report.deps,
        amplification: report.amplification,
        nt_fraction: report.nt_fraction,
        small_singleton_fraction: report.small_singleton_fraction,
        pm_fraction: run.stats.pm_fraction(),
        fig10: Vec::new(),
    }
}

/// One Figure 10 replay of a trace under all five persistence models,
/// with the suite's default timing. Each trace should pass through
/// here exactly once — the replay dominates analysis cost.
pub fn fig10_for(events: &[Event]) -> Vec<(PersistModel, f64)> {
    figure10_bars(events, &TimingConfig::default(), &HopsConfig::default())
}

/// Run one application by Table 1 name.
///
/// For the six gem5-subset applications, Figure 10 is replayed from a
/// second, *unpaced* run — mirroring the paper's methodology, where
/// Table 1 rates come from real-hardware runs with full client stacks
/// while Figures 6 and 10 come from trimmed full-system simulations.
/// Every trace gets exactly one Figure 10 replay: the paced trace for
/// regular apps, the unpaced trace for sim apps (the paced trace is
/// never replayed just to be discarded).
///
/// # Panics
///
/// Panics on an unknown name; the valid names are [`APP_NAMES`].
pub fn run_app(name: &str, cfg: &SuiteConfig) -> AppResult {
    // Host wall-clock for the whole run+replay of this app; the
    // simulated duration goes to the deterministic `sim.*` namespace.
    let _span = pmobs::span!("suite.run", name);
    // Trace tracks created under this app (machines, replays) get
    // deterministic `<name>/<kind>/<seq>` names, whichever worker
    // thread runs it.
    let _ctx = pmobs::trace::context(name);
    let seed = cfg.seed;
    let ops = cfg
        .effective_ops(name)
        .unwrap_or_else(|| panic!("unknown application {name:?}; expected one of {APP_NAMES:?}"));
    let run = run_named_threads(name, ops, seed, cfg.worker_threads);
    let mut analysis = analyze(&run);
    analysis.fig10 = if SIM_APPS.contains(&name) {
        let sim_ops = ops / 2;
        let sim = match name {
            "echo" => apps::echo::run_unpaced(sim_ops, seed),
            "nstore-ycsb" => apps::nstore::run_ycsb_unpaced(sim_ops, seed),
            "redis" => apps::redis::run_unpaced(sim_ops, seed),
            "ctree" => apps::micro::ctree_unpaced(sim_ops, seed),
            "hashmap" => apps::micro::hashmap_unpaced(sim_ops, seed),
            "vacation" => apps::vacation::run_unpaced(sim_ops, seed),
            _ => unreachable!("SIM_APPS covered above"),
        };
        fig10_for(&sim.events)
    } else {
        fig10_for(&run.events)
    };
    pmobs::count!("suite.apps_run");
    if pmobs::enabled() {
        pmobs::record_sim_ns(&format!("app_duration/{name}"), run.duration_ns);
    }
    AppResult { run, analysis }
}

/// Run one application by Table 1 name with an explicit op count and
/// seed, without analysis. This is the raw dispatch table [`run_app`]
/// is built on; the serving engine uses it directly to calibrate
/// per-shard service times from independently seeded runs.
///
/// # Panics
///
/// Panics on an unknown name; the valid names are [`APP_NAMES`].
pub fn run_named(name: &str, ops: usize, seed: u64) -> AppRun {
    run_named_threads(name, ops, seed, DEFAULT_WORKER_THREADS)
}

/// [`run_named`] with an explicit scheduler-worker count. Only the
/// scheduler-interleaved applications (redis, memcached, vacation)
/// respond to `workers`; the rest model their Table 1 thread counts
/// internally and ignore it.
///
/// # Panics
///
/// Panics on an unknown name; the valid names are [`APP_NAMES`].
pub fn run_named_threads(name: &str, ops: usize, seed: u64, workers: u32) -> AppRun {
    match name {
        "echo" => apps::echo::run(ops, seed),
        "nstore-ycsb" => apps::nstore::run_ycsb(ops, seed),
        "nstore-tpcc" => apps::nstore::run_tpcc(ops, seed),
        "redis" => apps::redis::run_threads(ops, seed, workers),
        "ctree" => apps::ctree(ops, seed),
        "hashmap" => apps::hashmap(ops, seed),
        "vacation" => apps::vacation::run_threads(ops, seed, workers),
        "memcached" => apps::memcached::run_threads(ops, seed, workers),
        "nfs" => apps::nfs(ops, seed),
        "exim" => apps::exim(ops, seed),
        "mysql" => apps::mysql(ops, seed),
        _ => panic!("unknown application {name:?}; expected one of {APP_NAMES:?}"),
    }
}

/// Run the whole suite in Table 1 order, fanned out across
/// `cfg.parallelism` scoped worker threads (serially when it is 1).
pub fn run_suite(cfg: &SuiteConfig) -> Vec<AppResult> {
    run_apps(&APP_NAMES, cfg)
}

/// Run a chosen set of applications, in the given order.
///
/// Workers claim applications from a shared cursor, so a slow app
/// (echo, nstore) does not serialize the rest behind it; results are
/// reassembled into input order afterwards. Each [`run_app`] call
/// builds its own machine, trace, and RNG from `cfg.seed`, so the
/// result is identical — event-for-event — whatever the parallelism.
pub fn run_apps(names: &[&str], cfg: &SuiteConfig) -> Vec<AppResult> {
    let workers = cfg.parallelism.clamp(1, names.len().max(1));
    // Queue wait = time from suite dispatch until a worker claims the
    // app; host wall-clock, so only sampled when recording is on. The
    // per-app histograms are resolved once here — the claim loop is the
    // dispatch hot path and must not allocate registry names per claim.
    let waits = QueueWaits::register(names);
    if workers == 1 {
        return names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                waits.note(i);
                run_app(n, cfg)
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let finished: Mutex<Vec<(usize, AppResult)>> = Mutex::new(Vec::with_capacity(names.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(name) = names.get(i) else { break };
                waits.note(i);
                let result = run_app(name, cfg);
                finished.lock().unwrap().push((i, result));
            });
        }
    });

    let mut slots = finished.into_inner().unwrap();
    slots.sort_unstable_by_key(|(i, _)| *i);
    slots.into_iter().map(|(_, r)| r).collect()
}

/// Pre-registered `suite.queue_wait_ns/<app>` histograms, resolved once
/// at dispatch so workers record by index without per-claim `format!`
/// or registry lookups. Empty (and free) when recording is off.
struct QueueWaits {
    dispatched: Option<std::time::Instant>,
    hists: Vec<std::sync::Arc<pmobs::Histogram>>,
}

impl QueueWaits {
    fn register(names: &[&str]) -> QueueWaits {
        let dispatched = pmobs::enabled().then(std::time::Instant::now);
        let hists = if dispatched.is_some() {
            names
                .iter()
                .map(|n| {
                    pmobs::global()
                        .histogram(&format!("suite.queue_wait_ns/{n}"), pmobs::Unit::Nanos)
                })
                .collect()
        } else {
            Vec::new()
        };
        QueueWaits { dispatched, hists }
    }

    /// Record how long app `i` sat queued before a worker claimed it.
    fn note(&self, i: usize) {
        if let Some(t0) = self.dispatched {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hists[i].record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(scale: f64, seed: u64) -> SuiteConfig {
        SuiteConfig {
            scale,
            seed,
            parallelism: 1,
            worker_threads: DEFAULT_WORKER_THREADS,
        }
    }

    #[test]
    fn run_app_dispatches_every_name() {
        let cfg = test_cfg(0.008, 1);
        for name in APP_NAMES {
            let r = run_app(name, &cfg);
            assert_eq!(r.run.name, name, "name round-trips");
            assert!(r.analysis.epoch_count > 0, "{name}: no epochs recorded");
            assert!(r.analysis.epochs_per_sec > 0.0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        run_app("nope", &SuiteConfig::quick());
    }

    #[test]
    fn effective_ops_matches_bases_and_floors() {
        let cfg = test_cfg(1.0, 1);
        assert_eq!(cfg.effective_ops("echo"), Some(20_000));
        assert_eq!(cfg.effective_ops("nope"), None);
        // The smallest valid scale: every app runs ≥ 1 op, and the
        // small-base apps floor up to MIN_OPS.
        let tiny = test_cfg(1.0 / MIN_OP_BASE as f64, 1);
        tiny.validate().expect("smallest valid scale validates");
        for name in ["exim", "mysql", "nstore-tpcc", "nfs"] {
            assert_eq!(tiny.effective_ops(name), Some(MIN_OPS), "{name}");
        }
        // OP_BASES enumerates exactly the Table 1 rows, in order, and
        // MIN_OP_BASE really is the smallest base.
        assert!(OP_BASES.iter().map(|(n, _)| *n).eq(APP_NAMES));
        assert_eq!(OP_BASES.iter().map(|(_, b)| *b).min(), Some(MIN_OP_BASE));
    }

    #[test]
    fn zero_effective_ops_is_a_hard_config_error() {
        // Below 1/MIN_OP_BASE some app truncates to 0 ops; that must be
        // rejected up front, not silently floored into fake rates.
        let bad = test_cfg(0.000_01, 1);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("0 effective ops"), "unhelpful error: {err}");
        assert!(err.contains("echo"), "names the offending app: {err}");
        assert!(test_cfg(0.05, 1).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "0 effective ops")]
    fn zero_effective_ops_panics_if_run_anyway() {
        test_cfg(0.000_01, 1).effective_ops("echo");
    }

    #[test]
    fn analysis_fig10_has_five_bars() {
        let r = run_app("hashmap", &test_cfg(0.01, 2));
        assert_eq!(r.analysis.fig10.len(), 5);
        let base = r.analysis.fig10[0];
        assert_eq!(base.0, PersistModel::X86Nvm);
        assert!((base.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig10_replayed_exactly_once_per_run_app() {
        // The Figure 10 replay is the expensive step; the old driver
        // replayed the paced trace, threw the result away, and replayed
        // the unpaced trace for every sim app. The counter is
        // per-thread, so parallel sibling tests cannot perturb it.
        let cfg = test_cfg(0.008, 1);

        let before = hops::fig10_invocations();
        run_app("hashmap", &cfg); // gem5-subset app: unpaced replay only
        assert_eq!(hops::fig10_invocations() - before, 1);

        let before = hops::fig10_invocations();
        run_app("memcached", &cfg); // regular app: paced replay only
        assert_eq!(hops::fig10_invocations() - before, 1);
    }

    #[test]
    fn analyze_leaves_fig10_to_the_caller() {
        let r = apps::hashmap(50, 3);
        let a = analyze(&r);
        assert!(a.fig10.is_empty(), "analyze() must not pay for a replay");
        assert!(a.epoch_count > 0);
    }

    #[test]
    fn parallel_suite_matches_serial() {
        let serial = SuiteConfig {
            scale: 0.004,
            seed: 11,
            parallelism: 1,
            worker_threads: DEFAULT_WORKER_THREADS,
        };
        let parallel = SuiteConfig {
            parallelism: 4,
            ..serial
        };
        let a = run_apps(&["hashmap", "ctree", "nfs", "exim", "redis"], &serial);
        let b = run_apps(&["hashmap", "ctree", "nfs", "exim", "redis"], &parallel);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.run.name, y.run.name, "Table 1 order preserved");
            assert_eq!(x.run.events, y.run.events, "{}: traces differ", x.run.name);
            assert_eq!(x.run.stats, y.run.stats);
            assert_eq!(x.run.duration_ns, y.run.duration_ns);
            assert_eq!(x.analysis.fig10, y.analysis.fig10);
        }
    }

    #[test]
    fn worker_threads_are_a_workload_knob_not_a_host_knob() {
        // `parallelism` is a host knob: fanning the interleaved apps
        // out across 8 suite workers must reproduce the serial traces
        // bit-identically. `worker_threads` is a workload knob: it
        // feeds the in-app scheduler, so changing it changes the trace
        // — and at 1 worker the cross-thread epoch dependencies vanish.
        let base = SuiteConfig {
            scale: 0.004,
            seed: 9,
            parallelism: 1,
            worker_threads: DEFAULT_WORKER_THREADS,
        };
        let wide = SuiteConfig {
            parallelism: 8,
            ..base
        };
        let names = ["redis", "memcached", "vacation"];
        let a = run_apps(&names, &base);
        let b = run_apps(&names, &wide);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.run.events, y.run.events,
                "{}: host knob leaked",
                x.run.name
            );
        }
        let single = SuiteConfig {
            worker_threads: 1,
            ..base
        };
        let c = run_apps(&names, &single);
        for (x, y) in a.iter().zip(&c) {
            assert_ne!(
                x.run.events, y.run.events,
                "{}: worker count must change the trace",
                x.run.name
            );
            assert!(
                x.analysis.deps.cross_dep_epochs > 0,
                "{}: 4 workers share structures",
                x.run.name
            );
            assert_eq!(
                y.analysis.deps.cross_dep_epochs, 0,
                "{}: a single worker cannot cross-depend",
                y.run.name
            );
        }
    }

    #[test]
    fn floor_warning_fires_at_most_once_across_threads() {
        // Many threads racing into ops() on a flooring scale must
        // advance the emission count by at most one, process-wide: the
        // swap latch admits a single winner. (Another test may have
        // latched the warning already, in which case the count stays
        // put — "at most once" is exactly the satellite's contract.)
        let before = ops_floor_warnings();
        let tiny = test_cfg(1.0 / MIN_OP_BASE as f64, 1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        tiny.effective_ops("exim");
                    }
                });
            }
        });
        let after = ops_floor_warnings();
        assert!(after <= 1, "warning emitted {after} times");
        assert!(after >= before, "count never goes backwards");
    }

    #[test]
    fn oversized_parallelism_is_clamped() {
        let cfg = SuiteConfig {
            scale: 0.004,
            seed: 5,
            parallelism: 64,
            worker_threads: DEFAULT_WORKER_THREADS,
        };
        let r = run_apps(&["hashmap", "exim"], &cfg);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].run.name, "hashmap");
        assert_eq!(r[1].run.name, "exim");
    }
}
