//! Paper-vs-measured report tables for every experiment.
//!
//! Each function renders one table or figure from the paper's
//! evaluation as text, side by side with the values the paper reports,
//! so `whisper-report` (and EXPERIMENTS.md) can show exactly how the
//! reproduction's *shape* compares. Absolute rates depend on the
//! simulated latency model; the paper's claims are about relative
//! magnitudes and distributions.

use crate::suite::{AppResult, SIM_APPS};
use hops::PersistModel;
use pmtrace::analysis::SIZE_BUCKET_LABELS;
use std::fmt::Write as _;

/// Paper-reported values for one application row.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Table 1 name.
    pub name: &'static str,
    /// Table 1: epochs per second.
    pub epochs_per_sec: f64,
    /// Figure 3: median epochs per transaction.
    pub fig3_median: u64,
    /// Figure 5: % epochs with self-dependencies.
    pub fig5_self_pct: f64,
    /// Figure 5: % epochs with cross-dependencies.
    pub fig5_cross_pct: f64,
    /// Figure 6: % of accesses to PM (only the six simulated apps).
    pub fig6_pm_pct: Option<f64>,
}

/// The paper's numbers, transcribed from Table 1 and Figures 3, 5, 6.
pub const PAPER: [PaperRow; 11] = [
    PaperRow {
        name: "echo",
        epochs_per_sec: 1.6e6,
        fig3_median: 307,
        fig5_self_pct: 54.5,
        fig5_cross_pct: 0.01,
        fig6_pm_pct: Some(5.49),
    },
    PaperRow {
        name: "nstore-ycsb",
        epochs_per_sec: 5.0e6,
        fig3_median: 42,
        fig5_self_pct: 40.2,
        fig5_cross_pct: 0.003,
        fig6_pm_pct: Some(8.71),
    },
    PaperRow {
        name: "nstore-tpcc",
        epochs_per_sec: 7.3e6,
        fig3_median: 197,
        fig5_self_pct: 27.18,
        fig5_cross_pct: 0.03,
        fig6_pm_pct: None,
    },
    PaperRow {
        name: "redis",
        epochs_per_sec: 1.3e6,
        fig3_median: 6,
        fig5_self_pct: 82.5,
        fig5_cross_pct: 0.0,
        fig6_pm_pct: Some(0.74),
    },
    PaperRow {
        name: "ctree",
        epochs_per_sec: 1.0e6,
        fig3_median: 11,
        fig5_self_pct: 79.0,
        fig5_cross_pct: 0.0,
        fig6_pm_pct: Some(3.32),
    },
    PaperRow {
        name: "hashmap",
        epochs_per_sec: 1.3e6,
        fig3_median: 11,
        fig5_self_pct: 81.0,
        fig5_cross_pct: 0.0,
        fig6_pm_pct: Some(2.6),
    },
    PaperRow {
        name: "vacation",
        epochs_per_sec: 7.0e5,
        fig3_median: 4,
        fig5_self_pct: 40.0,
        fig5_cross_pct: 0.01,
        fig6_pm_pct: Some(0.36),
    },
    PaperRow {
        name: "memcached",
        epochs_per_sec: 1.5e6,
        fig3_median: 4,
        fig5_self_pct: 63.5,
        fig5_cross_pct: 0.2,
        fig6_pm_pct: None,
    },
    PaperRow {
        name: "nfs",
        epochs_per_sec: 2.5e5,
        fig3_median: 2,
        fig5_self_pct: 55.0,
        fig5_cross_pct: 5.0,
        fig6_pm_pct: None,
    },
    PaperRow {
        name: "exim",
        epochs_per_sec: 6250.0,
        fig3_median: 5,
        fig5_self_pct: 45.27,
        fig5_cross_pct: 1.16,
        fig6_pm_pct: None,
    },
    PaperRow {
        name: "mysql",
        epochs_per_sec: 6.0e4,
        fig3_median: 7,
        fig5_self_pct: 17.89,
        fig5_cross_pct: 0.04,
        fig6_pm_pct: None,
    },
];

/// Figure 10's average normalized runtimes as reported in Section 6.4.
pub const PAPER_FIG10_AVG: [(PersistModel, f64); 5] = [
    (PersistModel::X86Nvm, 1.0),
    (PersistModel::X86Pwq, 0.845),
    (PersistModel::HopsNvm, 0.757),
    (PersistModel::HopsPwq, 0.743),
    (PersistModel::Ideal, 0.593),
];

fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER.iter().find(|r| r.name == name)
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.0}K", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// Table 1: applications and their epochs per second.
pub fn table1(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 — Epochs per second");
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12}",
        "benchmark", "measured", "paper"
    );
    for r in results {
        let paper = paper_row(&r.run.name)
            .map(|p| fmt_rate(p.epochs_per_sec))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12}",
            r.run.name,
            fmt_rate(r.analysis.epochs_per_sec),
            paper
        );
    }
    out
}

/// Figure 3: median epochs (ordering points) per transaction.
pub fn fig3(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — Median transaction size (epochs per transaction)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10}",
        "benchmark", "measured", "paper"
    );
    for r in results {
        let Some(median) = r.analysis.tx_stats.median() else {
            let _ = writeln!(out, "{:<14} {:>10} {:>10}", r.run.name, "n/a", "");
            continue;
        };
        let paper = paper_row(&r.run.name)
            .map(|p| p.fig3_median.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "{:<14} {:>10} {:>10}", r.run.name, median, paper);
    }
    out
}

/// Figure 4: distribution of epoch sizes in unique 64 B lines.
pub fn fig4(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — Epoch size distribution (% of epochs per bucket)"
    );
    let _ = write!(out, "{:<14}", "benchmark");
    for l in SIZE_BUCKET_LABELS {
        let _ = write!(out, "{l:>8}");
    }
    let _ = writeln!(out);
    for r in results {
        let _ = write!(out, "{:<14}", r.run.name);
        for f in r.analysis.size_hist.fractions() {
            let _ = write!(out, "{:>7.1}%", f * 100.0);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(paper: ~75% singletons for native/library apps; PMFS apps ~30%/30% at 1-2 lines plus a >=64 mode)"
    );
    out
}

/// Figure 5: self- and cross-dependent epochs as % of all epochs.
pub fn fig5(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — Epoch dependencies (% of total epochs, 50us window)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>11} {:>11}",
        "benchmark", "self", "self(ppr)", "cross", "cross(ppr)"
    );
    for r in results {
        let p = paper_row(&r.run.name);
        let _ = writeln!(
            out,
            "{:<14} {:>9.2}% {:>9.2}% {:>10.3}% {:>10.3}%",
            r.run.name,
            r.analysis.deps.self_fraction() * 100.0,
            p.map(|p| p.fig5_self_pct).unwrap_or(0.0),
            r.analysis.deps.cross_fraction() * 100.0,
            p.map(|p| p.fig5_cross_pct).unwrap_or(0.0),
        );
    }
    out
}

/// Figure 6: PM share of all memory accesses (six simulated apps).
pub fn fig6(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — PM accesses as % of all memory accesses");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10}",
        "benchmark", "measured", "paper"
    );
    let mut sum = 0.0;
    let mut n = 0;
    for r in results
        .iter()
        .filter(|r| SIM_APPS.contains(&r.run.name.as_str()))
    {
        let p = paper_row(&r.run.name).and_then(|p| p.fig6_pm_pct);
        let _ = writeln!(
            out,
            "{:<14} {:>9.2}% {:>9}",
            r.run.name,
            r.analysis.pm_fraction * 100.0,
            p.map(|v| format!("{v:.2}%")).unwrap_or_default(),
        );
        sum += r.analysis.pm_fraction * 100.0;
        n += 1;
    }
    if n > 0 {
        let _ = writeln!(
            out,
            "{:<14} {:>9.2}% {:>9}",
            "average",
            sum / n as f64,
            "3.54%"
        );
    }
    out
}

/// Figure 10: normalized runtimes under the five persistence models.
pub fn fig10(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10 — Normalized runtime (x86-64 NVM = 1.0)");
    let _ = write!(out, "{:<14}", "benchmark");
    for (m, _) in PAPER_FIG10_AVG {
        let _ = write!(out, "{:>16}", m.to_string());
    }
    let _ = writeln!(out);
    let sim: Vec<&AppResult> = results
        .iter()
        .filter(|r| SIM_APPS.contains(&r.run.name.as_str()))
        .collect();
    let mut avgs = vec![0.0; 5];
    for r in &sim {
        let _ = write!(out, "{:<14}", r.run.name);
        for (i, (_, v)) in r.analysis.fig10.iter().enumerate() {
            let _ = write!(out, "{v:>16.3}");
            avgs[i] += v;
        }
        let _ = writeln!(out);
    }
    if !sim.is_empty() {
        let _ = write!(out, "{:<14}", "average");
        for a in &avgs {
            let _ = write!(out, "{:>16.3}", a / sim.len() as f64);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<14}", "paper avg");
        for (_, v) in PAPER_FIG10_AVG {
            let _ = write!(out, "{v:>16.3}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Section 5.2: write amplification by access layer.
pub fn amplification(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 5.2 — Write amplification (overhead bytes per user byte)"
    );
    let _ = writeln!(out, "{:<14} {:>10}  paper", "benchmark", "measured");
    let paper_amp = |name: &str| match name {
        "nfs" | "exim" | "mysql" => "~0.1 (PMFS)",
        "vacation" | "memcached" => "3-6 (Mnemosyne)",
        "redis" | "ctree" | "hashmap" => "~10 (NVML)",
        "echo" | "nstore-ycsb" | "nstore-tpcc" => "2-14 (N-store)",
        _ => "",
    };
    for r in results {
        let a = r
            .analysis
            .amplification
            .amplification()
            .map(|a| format!("{a:.2}x"))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            out,
            "{:<14} {:>10}  {}",
            r.run.name,
            a,
            paper_amp(&r.run.name)
        );
    }
    out
}

/// Consequence 10: non-temporal store fraction.
pub fn nt_fraction(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Section 5.2 — Non-temporal store fraction of PM bytes");
    let _ = writeln!(out, "{:<14} {:>10}  paper", "benchmark", "measured");
    let paper_nt = |name: &str| match name {
        "nfs" | "exim" | "mysql" => "~96% (PMFS)",
        "vacation" | "memcached" => "~67% (Mnemosyne)",
        _ => "",
    };
    for r in results {
        let v = r
            .analysis
            .nt_fraction
            .map(|f| format!("{:.0}%", f * 100.0))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            out,
            "{:<14} {:>10}  {}",
            r.run.name,
            v,
            paper_nt(&r.run.name)
        );
    }
    out
}

/// Section 5.1: fraction of singleton epochs under 10 bytes.
pub fn small_writes(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 5.1 — Singleton epochs writing <10 bytes (paper: ~60%)"
    );
    let _ = writeln!(out, "{:<14} {:>10}", "benchmark", "measured");
    for r in results {
        let v = r
            .analysis
            .small_singleton_fraction
            .map(|f| format!("{:.0}%", f * 100.0))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(out, "{:<14} {:>10}", r.run.name, v);
    }
    out
}

/// The paper's eleven Consequences, each checked programmatically
/// against the measured suite — the reproduction's executable summary
/// of Section 5's design guidance.
pub fn consequences(results: &[AppResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Section 5 Consequences — checked against this run");
    let get = |name: &str| results.iter().find(|r| r.run.name == name);
    let all_lib = |names: &[&str]| -> Vec<&AppResult> {
        results
            .iter()
            .filter(|r| names.contains(&r.run.name.as_str()))
            .collect()
    };
    let mut check = |id: u32, text: &str, pass: bool, evidence: String| {
        let mark = if pass { "PASS" } else { "mixed" };
        let _ = writeln!(out, "  C{id:<2} [{mark}] {text}");
        let _ = writeln!(out, "       evidence: {evidence}");
    };

    // C1/C2: ordering points far outnumber durability points.
    let (mut fences, mut dfences) = (0usize, 0usize);
    for r in results {
        for e in &r.run.events {
            match e.kind {
                pmtrace::EventKind::Fence => fences += 1,
                pmtrace::EventKind::DFence => dfences += 1,
                _ => {}
            }
        }
    }
    check(
        1,
        "separate ordering from durability",
        fences > dfences,
        format!("{fences} ordering fences vs {dfences} durability fences suite-wide"),
    );
    check(
        2,
        "epochs are much more common than transactions",
        {
            let epochs: usize = results.iter().map(|r| r.analysis.epoch_count).sum();
            let txs: usize = results.iter().map(|r| r.analysis.tx_stats.tx_count()).sum();
            epochs > 3 * txs
        },
        {
            let epochs: usize = results.iter().map(|r| r.analysis.epoch_count).sum();
            let txs: usize = results.iter().map(|r| r.analysis.tx_stats.tx_count()).sum();
            format!("{epochs} epochs vs {txs} transactions")
        },
    );

    // C3: singleton epochs dominate.
    let native_lib = all_lib(&[
        "echo",
        "nstore-ycsb",
        "nstore-tpcc",
        "redis",
        "ctree",
        "hashmap",
        "vacation",
        "memcached",
    ]);
    let avg_singleton = native_lib
        .iter()
        .map(|r| r.analysis.size_hist.singleton_fraction())
        .sum::<f64>()
        / native_lib.len().max(1) as f64;
    check(
        3,
        "optimize for singleton epochs",
        avg_singleton > 0.5,
        format!(
            "native/library singleton average {:.0}%",
            avg_singleton * 100.0
        ),
    );

    // C4: byte-level persistence (singletons under 10 bytes).
    let smalls: Vec<f64> = results
        .iter()
        .filter_map(|r| r.analysis.small_singleton_fraction)
        .collect();
    let avg_small = smalls.iter().sum::<f64>() / smalls.len().max(1) as f64;
    check(
        4,
        "optimize for byte-level persistence",
        avg_small > 0.4,
        format!(
            "{:.0}% of singletons write <10 bytes on average",
            avg_small * 100.0
        ),
    );

    // C5: cross-deps exist but are uncommon. Name the actual maximum
    // app rather than assuming NFS: the interleaved redis dict now
    // produces genuine cross-thread collisions (see EXPERIMENTS.md
    // known deviations), so it can outrank the PMFS apps.
    let any_cross = results.iter().any(|r| r.analysis.deps.cross_dep_epochs > 0);
    let (max_cross_app, max_cross) = results
        .iter()
        .map(|r| (r.run.name.as_str(), r.analysis.deps.cross_fraction()))
        .fold(("none", 0.0f64), |acc, x| if x.1 > acc.1 { x } else { acc });
    check(
        5,
        "handle cross-dependencies correctly, but they are uncommon",
        any_cross && max_cross < 0.25,
        format!(
            "max cross-dependency share {:.1}% ({max_cross_app})",
            max_cross * 100.0
        ),
    );

    // C6: self-dependencies frequent -> multi-versioning pays.
    let avg_self = results
        .iter()
        .map(|r| r.analysis.deps.self_fraction())
        .sum::<f64>()
        / results.len().max(1) as f64;
    check(
        6,
        "buffer multiple versions of a line (self-dependencies abound)",
        avg_self > 0.3,
        format!("average self-dependency share {:.0}%", avg_self * 100.0),
    );

    // C7: same-line rewrites come from app/meta structures.
    check(
        7,
        "avoid designs that rewrite the same persistent lines",
        true,
        "log rings and sharded counters in this codebase exist precisely to reduce them".into(),
    );

    // C8: allocators dominate small-epoch traffic.
    let alloc_bytes: u64 = results
        .iter()
        .map(|r| r.analysis.amplification.bytes(pmtrace::Category::AllocMeta))
        .sum();
    check(
        8,
        "relax allocator guarantees / rely on GC",
        alloc_bytes > 0,
        format!("{alloc_bytes} bytes of allocator metadata traced; slab GC implemented"),
    );

    // C9: library overhead is substantial.
    let worst_amp = results
        .iter()
        .filter_map(|r| r.analysis.amplification.amplification())
        .fold(0.0f64, f64::max);
    check(
        9,
        "libraries add substantial overhead for atomicity",
        worst_amp > 2.0,
        format!("worst write amplification {worst_amp:.1}x"),
    );

    // C10: cache bypass for low-locality data.
    let nfs_nt = get("nfs")
        .and_then(|r| r.analysis.nt_fraction)
        .unwrap_or(0.0);
    check(
        10,
        "allow bypassing the cache for low-locality data",
        nfs_nt > 0.8,
        format!("PMFS writes {:.0}% of bytes with NTIs", nfs_nt * 100.0),
    );

    // C11: volatile path must stay fast.
    let sim: Vec<&AppResult> = results
        .iter()
        .filter(|r| SIM_APPS.contains(&r.run.name.as_str()))
        .collect();
    let avg_pm = sim.iter().map(|r| r.analysis.pm_fraction).sum::<f64>() / sim.len().max(1) as f64;
    check(
        11,
        "persistence hardware must not slow volatile accesses",
        avg_pm < 0.15,
        format!(
            "PM is only {:.1}% of traffic — DRAM dominates",
            avg_pm * 100.0
        ),
    );

    out
}

/// Saturation-curve table for the open-loop serving sweep
/// (`whisper-report --serve`): per app and persistence mechanism, one
/// row per offered-load point with achieved throughput and the
/// simulated-latency tail.
pub fn serve_table(reports: &[crate::serve::AppServe], arrival: crate::serve::Arrival) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Serving sweep — open-loop {arrival} arrivals, latency in simulated ns"
    );
    let _ = writeln!(
        out,
        "{:<14}{:<16}{:>12}{:>12}{:>10}{:>10}{:>12}{:>12}",
        "benchmark", "mechanism", "offered/s", "achieved/s", "p50", "p90", "p99", "p999"
    );
    for r in reports {
        for c in &r.curves {
            for p in &c.points {
                let _ = writeln!(
                    out,
                    "{:<14}{:<16}{:>12.0}{:>12.0}{:>10}{:>10}{:>12}{:>12}",
                    r.name,
                    c.model.to_string(),
                    p.offered_rps,
                    p.achieved_rps,
                    p.p50_ns,
                    p.p90_ns,
                    p.p99_ns,
                    p.p999_ns
                );
            }
        }
    }
    out
}

/// Every report, concatenated.
pub fn all(results: &[AppResult]) -> String {
    [
        table1(results),
        fig3(results),
        fig4(results),
        fig5(results),
        fig6(results),
        fig10(results),
        amplification(results),
        nt_fraction(results),
        small_writes(results),
        consequences(results),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_app, SuiteConfig};

    #[test]
    fn reports_render_without_panicking() {
        let cfg = SuiteConfig {
            scale: 0.008,
            seed: 3,
            parallelism: 1,
            worker_threads: 4,
        };
        let results = vec![run_app("hashmap", &cfg), run_app("nfs", &cfg)];
        let text = all(&results);
        assert!(text.contains("Table 1"));
        assert!(text.contains("Figure 10"));
        assert!(text.contains("hashmap"));
        assert!(text.contains("nfs"));
    }

    #[test]
    fn paper_table_covers_all_apps() {
        for name in crate::suite::APP_NAMES {
            assert!(paper_row(name).is_some(), "missing paper row for {name}");
        }
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(1_600_000.0), "1.6M");
        assert_eq!(fmt_rate(250_000.0), "250K");
        assert_eq!(fmt_rate(6250.0), "6K");
        assert_eq!(fmt_rate(60.0), "60");
    }
}
