//! Per-app epoch dependency graphs (`whisper-report --check-graph`).
//!
//! Builds [`pmcheck::hb::EpochGraph`] over every application's
//! recorded trace: nodes are store-containing epochs, red cross edges
//! are release→acquire dependencies between epochs of different
//! threads — the §5.2 dependency structure the paper reads off its
//! Fig. 5 graphs. The summary statistics land in the JSON report's
//! `hb.graph` section; the full graphs are written next to it as
//! `<dir>/<app>.json` + `<dir>/<app>.dot` for inspection and
//! `dot -Tsvg` rendering.

use crate::suite::AppResult;
use pmcheck::hb::EpochGraph;
use pmobs::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One app's epoch dependency graph plus its precomputed §5.2 stats
/// (`max_antichain` enumerates thread subsets, so it is computed once).
pub struct AppGraph {
    /// Table 1 application name.
    pub name: String,
    /// The dependency graph over the app's trace.
    pub graph: EpochGraph,
    /// Epochs that are the target of at least one cross edge.
    pub epochs_with_cross_dep: usize,
    /// Largest set of pairwise-concurrent epochs.
    pub max_antichain: usize,
}

/// Build the graph (and its stats) for every suite result.
pub fn build_graphs(results: &[AppResult]) -> Vec<AppGraph> {
    results
        .iter()
        .map(|r| {
            let _span = pmobs::span!("hbgraph.build", &r.run.name);
            let graph = EpochGraph::build(&r.run.events);
            let epochs_with_cross_dep = graph.epochs_with_cross_dep();
            let max_antichain = graph.max_antichain();
            AppGraph {
                name: r.run.name.clone(),
                graph,
                epochs_with_cross_dep,
                max_antichain,
            }
        })
        .collect()
}

fn stats_fields(g: &AppGraph) -> Json {
    Json::obj()
        .field("name", g.name.as_str())
        .field("threads", g.graph.threads.len() as u64)
        .field("epochs", g.graph.nodes.len() as u64)
        .field("po_edges", g.graph.po_edges as u64)
        .field("cross_edges", g.graph.cross_edges.len() as u64)
        .field("epochs_with_cross_dep", g.epochs_with_cross_dep as u64)
        .field("max_antichain", g.max_antichain as u64)
}

/// The `hb.graph` section of the JSON report: per-app dependency
/// statistics (the full node/edge lists live in the `--check-graph`
/// output files, not the report).
pub fn stats_json(graphs: &[AppGraph]) -> Json {
    let apps: Vec<Json> = graphs.iter().map(stats_fields).collect();
    Json::obj()
        .field("apps", apps)
        .field(
            "total_epochs",
            graphs
                .iter()
                .map(|g| g.graph.nodes.len() as u64)
                .sum::<u64>(),
        )
        .field(
            "total_cross_edges",
            graphs
                .iter()
                .map(|g| g.graph.cross_edges.len() as u64)
                .sum::<u64>(),
        )
}

/// The human-readable table printed by `--check-graph` (the
/// EXPERIMENTS.md epoch-graph stats table is this, verbatim).
pub fn summary_table(graphs: &[AppGraph]) -> String {
    let mut out = String::from(
        "Epoch dependency graphs (pmcheck::hb)\n\
         app            threads  epochs  po-edges  cross-edges  w/cross-dep  max-antichain\n",
    );
    for g in graphs {
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>9} {:>12} {:>12} {:>14}\n",
            g.name,
            g.graph.threads.len(),
            g.graph.nodes.len(),
            g.graph.po_edges,
            g.graph.cross_edges.len(),
            g.epochs_with_cross_dep,
            g.max_antichain
        ));
    }
    out.push_str(&format!(
        "total: {} epoch(s), {} cross edge(s) across {} app(s)\n",
        graphs.iter().map(|g| g.graph.nodes.len()).sum::<usize>(),
        graphs
            .iter()
            .map(|g| g.graph.cross_edges.len())
            .sum::<usize>(),
        graphs.len()
    ));
    out
}

/// Write `<dir>/<app>.json` and `<dir>/<app>.dot` for every graph,
/// creating `dir` if needed. Returns the written paths. An app name
/// that is itself a path (`--from-trace /some/archive.wtr`) is
/// flattened to a plain file stem so the output cannot escape `dir`
/// (a `Path::join` with an absolute name would replace the base).
pub fn write_graphs(graphs: &[AppGraph], dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::with_capacity(graphs.len() * 2);
    for g in graphs {
        let stem = g.name.trim_matches(['/', '\\']).replace(['/', '\\'], "_");
        let json_path = dir.join(format!("{stem}.json"));
        let mut f = std::fs::File::create(&json_path)?;
        writeln!(f, "{}", g.graph.to_json(&g.name).to_pretty())?;
        written.push(json_path);
        let dot_path = dir.join(format!("{stem}.dot"));
        std::fs::write(&dot_path, g.graph.to_dot(&g.name))?;
        written.push(dot_path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::{Category, Tid, TraceBuffer};

    fn two_thread_graphs() -> Vec<AppGraph> {
        // A dependency: t1 stores a line t0 persisted, so t1's epoch
        // acquires t0's — one cross edge, and the two epochs cannot be
        // an antichain with each other.
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 1);
        t.flush(Tid(0), 0, 2);
        t.fence(Tid(0), 3);
        t.pm_store(Tid(1), 0, 8, false, Category::UserData, 4);
        t.pm_store(Tid(1), 64, 8, false, Category::UserData, 5);
        t.flush(Tid(1), 0, 6);
        t.flush(Tid(1), 64, 7);
        t.fence(Tid(1), 8);
        let graph = EpochGraph::build(t.events());
        let epochs_with_cross_dep = graph.epochs_with_cross_dep();
        let max_antichain = graph.max_antichain();
        vec![AppGraph {
            name: "toy".into(),
            graph,
            epochs_with_cross_dep,
            max_antichain,
        }]
    }

    #[test]
    fn stats_json_carries_the_graph_shape() {
        let graphs = two_thread_graphs();
        let doc = stats_json(&graphs);
        assert_eq!(doc.get("total_epochs").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            doc.get("total_cross_edges").and_then(Json::as_f64),
            Some(1.0)
        );
        let apps = doc.get("apps").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(
            apps[0].get("max_antichain").and_then(Json::as_f64),
            Some(1.0)
        );
        let table = summary_table(&graphs);
        assert!(table.contains("toy"), "{table}");
        assert!(
            table.contains("total: 2 epoch(s), 1 cross edge(s)"),
            "{table}"
        );
    }

    #[test]
    fn path_like_app_names_stay_inside_the_output_dir() {
        let mut graphs = two_thread_graphs();
        graphs[0].name = "/tmp/somewhere/archive.wtr".into();
        let dir = std::env::temp_dir().join(format!("hbgraph-esc-{}", std::process::id()));
        let written = write_graphs(&graphs, &dir).unwrap();
        for p in &written {
            assert!(
                p.starts_with(&dir),
                "{} escaped {}",
                p.display(),
                dir.display()
            );
        }
        assert!(written[0].ends_with("tmp_somewhere_archive.wtr.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_graphs_emits_json_and_dot() {
        let graphs = two_thread_graphs();
        let dir = std::env::temp_dir().join(format!("hbgraph-test-{}", std::process::id()));
        let written = write_graphs(&graphs, &dir).unwrap();
        assert_eq!(written.len(), 2);
        let json = std::fs::read_to_string(&written[0]).unwrap();
        let parsed = pmobs::json::parse(&json).unwrap();
        assert_eq!(parsed.get("epochs").and_then(Json::as_f64), Some(2.0));
        let dot = std::fs::read_to_string(&written[1]).unwrap();
        assert!(dot.starts_with("digraph"), "{dot}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
