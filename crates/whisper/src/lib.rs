//! WHISPER — the Wisconsin–HP Labs Suite for Persistence, reproduced.
//!
//! This crate is the top of the reproduction: the ten crash-recoverable
//! PM applications of Table 1, their workload generators, the suite
//! runner, and the report code that regenerates every table and figure
//! in the paper's evaluation.
//!
//! | Benchmark | Access layer | Workload |
//! |-----------|--------------|----------|
//! | [`apps::echo`] | native custom transactions | echo-test, 4 clients |
//! | [`apps::nstore`] | native (OPTWAL) | YCSB-like and TPC-C-like |
//! | [`apps::redis`] | library / NVML-style undo | redis-cli lru-test |
//! | [`apps::ctree`] | library / NVML-style undo | 4-client inserts |
//! | [`apps::hashmap`] | library / NVML-style undo | 4-client inserts |
//! | [`apps::vacation`] | library / Mnemosyne-style redo | travel reservations |
//! | [`apps::memcached`] | library / Mnemosyne-style redo | memslap, 5% SET |
//! | [`apps::nfs`] | filesystem / PMFS | filebench fileserver |
//! | [`apps::exim`] | filesystem / PMFS | postal, paced |
//! | [`apps::mysql`] | filesystem / PMFS | sysbench OLTP-complex |
//!
//! Every application runs on the instrumented [`memsim::Machine`],
//! produces a [`pmtrace`] event stream plus DRAM/PM access counters,
//! and is built from the substrate crates exactly as the original apps
//! were built from Mnemosyne, NVML, PMFS, and custom engines.
//!
//! # Quick start
//!
//! ```no_run
//! use whisper::suite::{SuiteConfig, run_app};
//!
//! let cfg = SuiteConfig::quick();
//! let result = run_app("hashmap", &cfg);
//! println!("epochs/s: {:.0}", result.analysis.epochs_per_sec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod check;
pub mod crashtest;
pub mod crossval;
pub mod hbgraph;
pub mod json_report;
pub mod optimize;
pub mod profile;
pub mod region;
pub mod report;
pub mod serve;
pub mod suite;
pub mod workloads;
