//! Memcached over Mnemosyne-style transactions (Section 3.2.2).
//!
//! "Memcached is an in-memory key-value store used by web applications
//! as an object cache ... It stores objects in a hash table and an LRU
//! replacement policy. We modified Memcached to allocate the hash table
//! in PM segments, ensured that all accesses to PM execute atomically
//! in durable transactions, and replaced all locks used for
//! synchronizing concurrent access to the table with transactions."
//!
//! The worker threads (memcached is natively threaded; Table 1 runs 4)
//! are interleaved per-request by a seeded [`memsim::Scheduler`] and
//! share one machine. The object table is a [`pmds::CHash`] — the
//! former table lock region replaced by the concurrent hash's announce
//! discipline, its per-worker slots standing in for the paper's
//! lock-to-transaction conversion. The LRU list keeps its Mnemosyne
//! redo transactions (`begin`/`commit` around each former lock region),
//! which also keeps the redo log's NT write stream prominent
//! (Consequence 10). A GET is volatile except for memcached's lazy LRU
//! bump, which keeps PM write traffic low at memslap's 5 % SET mix.

use super::{machine_for, AppRun, VolatileArena, WORKERS};
use crate::region::RegionPlanner;
use crate::workloads::{self, MemslapOp};
use memsim::{Machine, MachineConfig, PmWriter, Scheduler};
use pmalloc::ShardedSlab;
use pmds::{CHash, PLruList};
use pmem::{Addr, AddrRange, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::{Category, Tid};
use pmtx::RedoTxEngine;
use std::collections::HashMap;

pub(crate) struct Memcached {
    pub(crate) eng: RedoTxEngine,
    pub(crate) alloc: ShardedSlab,
    pub(crate) table: CHash,
    pub(crate) lru: PLruList,
    /// Volatile map key → LRU node (memcached keeps such pointers in
    /// its item headers; ours lives in DRAM like the rest of the item
    /// bookkeeping).
    pub(crate) lru_nodes: HashMap<u64, Addr>,
    pub(crate) log_region: AddrRange,
    pub(crate) table_region: AddrRange,
    /// One line per worker for the crash-run fence prologue.
    pub(crate) scratch: Addr,
    /// Monotone sequence tags for the table's announce slots.
    seq: u64,
}

impl Memcached {
    pub(crate) fn build(m: &mut Machine, workers: u32, ops: usize) -> Memcached {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        let log_region = plan.take(8 << 20);
        let arena_lines = (ops as u64 * 8).max(1 << 12);
        let table_region = plan.take(CHash::region_bytes(workers, arena_lines));
        let lru_region = plan.take(64);
        let scratch = plan.take(u64::from(workers) * 64).base;
        let mut eng = RedoTxEngine::format(m, log_region, workers);
        let mut w = PmWriter::new(Tid(0));
        // Mnemosyne's allocator keeps per-thread arenas.
        let heap = plan.take(ShardedSlab::region_bytes(64 << 20, workers as usize));
        let alloc = ShardedSlab::format(m, &mut w, heap.base, 64 << 20, workers as usize);
        let table = CHash::create(m, Tid(0), table_region, workers, 64).expect("table");
        eng.begin(m, Tid(0)).expect("setup tx");
        let lru = PLruList::create(m, &mut eng, Tid(0), lru_region).expect("lru");
        eng.commit(m, Tid(0)).expect("setup");
        Memcached {
            eng,
            alloc,
            table,
            lru,
            lru_nodes: HashMap::new(),
            log_region,
            table_region,
            scratch,
            seq: 0,
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn set(&mut self, m: &mut Machine, tid: Tid, key: u64, val: &[u8], capacity: usize) {
        let kb = key.to_le_bytes();
        // Former lock region 1, the hash table — now the concurrent
        // hash's announce discipline, no lock and no transaction.
        let seq = self.next_seq();
        let fresh = self
            .table
            .upsert(m, tid, tid.0, seq, &kb, val)
            .expect("insert");
        // Former lock region 2, the LRU list — one redo transaction,
        // only for fresh items; overwrites just refresh the item's
        // volatile access stamp (memcached's lazy LRU maintenance).
        if fresh {
            self.alloc.select(tid.0 as usize);
            self.eng.begin(m, tid).expect("tx");
            let node = self
                .lru
                .push_front(m, &mut self.eng, tid, &mut self.alloc, key)
                .expect("lru push");
            self.lru_nodes.insert(key, node);
            let victim = if self.lru_nodes.len() > capacity {
                self.lru
                    .pop_back(m, &mut self.eng, tid, &mut self.alloc)
                    .expect("evict")
            } else {
                None
            };
            self.eng.commit(m, tid).expect("commit");
            // The item itself is unlinked outside the LRU transaction
            // (memcached frees the item after the lock is dropped).
            if let Some(victim) = victim {
                self.lru_nodes.remove(&victim);
                let seq = self.next_seq();
                self.table
                    .remove(m, tid, tid.0, seq, &victim.to_le_bytes())
                    .expect("evict item");
            }
        }
    }

    fn get(&mut self, m: &mut Machine, tid: Tid, key: u64, lazy_touch: bool) -> Option<Vec<u8>> {
        let v = self.table.get(m, tid, &key.to_le_bytes());
        if v.is_some() && lazy_touch {
            if let Some(&node) = self.lru_nodes.get(&key) {
                self.eng.begin(m, tid).expect("tx");
                self.lru.touch(m, &mut self.eng, tid, node).expect("touch");
                self.eng.commit(m, tid).expect("commit");
            }
        }
        v
    }
}

/// Crash workload + recovery oracle (see [`crate::crashtest`]): a
/// SET-only stream over a small keyspace with capacity above the
/// operation count, so no eviction runs. A SET is the concurrent
/// table's detectable upsert followed, for fresh keys, by the LRU redo
/// transaction; the oracle recovers both and requires every committed
/// key to carry its last committed value. The in-flight SET may have
/// landed neither, only the table phase, or both — the LRU length must
/// sit between the committed distinct-key count and one more.
pub(crate) fn crash_run(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const CRASH_KEYSPACE: u64 = 24;
    let workers = WORKERS;
    let mut m = machine_for(workers);
    m.trace_mut().set_enabled(false);
    let mut mc = Memcached::build(&mut m, workers, ops);
    let mut sched = Scheduler::new(workers, 0x3e7c);
    let schedule: Vec<Tid> = (0..ops)
        .map(|_| sched.next().expect("workers live"))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x3e7c);
    let plan_ops: Vec<(u64, [u8; 16])> = (0..ops)
        .map(|i| {
            let key = rng.gen_range(0..CRASH_KEYSPACE);
            let mut val = [0u8; 16];
            val[0..8].copy_from_slice(&key.to_le_bytes());
            val[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            (key, val)
        })
        .collect();

    crate::crashtest::arm(&mut m, points);
    // Fence prologue: see `apps::redis::crash_run` — the HB crossval
    // proof needs every traced thread to fence once before it can
    // prove anything.
    for wk in 0..workers {
        let tid = Tid(wk);
        let mut w = PmWriter::new(tid);
        w.write_u64(
            &mut m,
            mc.scratch + u64::from(wk) * 64,
            1,
            Category::AppMeta,
        );
        w.durability_fence(&mut m);
    }
    for (i, (key, val)) in plan_ops.iter().enumerate() {
        let tid = schedule[i];
        mc.set(&mut m, tid, *key, val, ops + 10);
        m.note_progress(i as u64 + 1);
    }

    let log = mc.log_region;
    let table_region = mc.table_region;
    let lru = mc.lru;
    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut cfg = MachineConfig::asplos17();
        cfg.threads = cfg.threads.max(workers);
        let mut m2 = Machine::from_image(cfg, img);
        let _eng2 = RedoTxEngine::recover(&mut m2, Tid(0), log, workers);
        let mut table2 = CHash::open(&mut m2, Tid(0), table_region)
            .map_err(|e| format!("table open failed: {e:?}"))?;
        let _ = table2.recover(&mut m2, Tid(0));
        let mut model: HashMap<u64, [u8; 16]> = HashMap::new();
        for (k, v) in &plan_ops[..progress as usize] {
            model.insert(*k, *v);
        }
        let in_flight = plan_ops.get(progress as usize);
        for key in 0..CRASH_KEYSPACE {
            let got = table2.get(&mut m2, Tid(0), &key.to_le_bytes());
            let committed_ok = match (got.as_deref(), model.get(&key)) {
                (Some(g), Some(w)) => g == w.as_slice(),
                (None, None) => true,
                _ => false,
            };
            let in_flight_ok = matches!(
                in_flight,
                Some((k, v)) if *k == key && got.as_deref() == Some(v.as_slice())
            );
            if !(committed_ok || in_flight_ok) {
                return Err(format!(
                    "key {key}: recovered {:?} != committed {:?}",
                    got.as_deref().map(<[u8]>::to_vec),
                    model.get(&key).map(|v| v.to_vec())
                ));
            }
        }
        let committed_distinct = model.len() as u64;
        let lru_len = lru.len(&mut m2, Tid(0));
        if lru_len != committed_distinct && lru_len != committed_distinct + 1 {
            return Err(format!(
                "LRU length {lru_len} outside [{committed_distinct}, {}]",
                committed_distinct + 1
            ));
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total, oracle)
}

/// Run memslap (Table 1: 4 clients, 5 % SET).
pub fn run(ops: usize, seed: u64) -> AppRun {
    run_threads(ops, seed, WORKERS)
}

/// [`run`] with an explicit worker-thread count (`--threads`).
pub fn run_threads(ops: usize, seed: u64, workers: u32) -> AppRun {
    let mut m = machine_for(workers);
    // Setup is untraced: the measured interval is the memslap run.
    m.trace_mut().set_enabled(false);
    let mut mc = Memcached::build(&mut m, workers, ops);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    let keyspace = (ops / 2).clamp(64, 4000);
    let capacity = keyspace;

    // Seeded per-request worker interleaving — deterministic in `seed`.
    let mut sched = Scheduler::new(workers, seed);
    m.trace_mut().set_enabled(true);
    for op in workloads::memslap(keyspace, ops, 5, seed) {
        let tid = sched.next().expect("workers never retire");
        // Protocol parsing, connection state, item header checks.
        arena.work(&mut m, tid, 250);
        // Connection turnaround between requests.
        m.advance_ns(4_500);
        match op {
            MemslapOp::Get { key } => {
                // Lazy LRU: memcached only re-links items idle for a
                // while, so touches are rare.
                let lazy = rng.gen_range(0..128) == 0;
                if mc.get(&mut m, tid, key, lazy).is_none() {
                    // Cache miss: the web app would fetch and SET.
                    mc.set(&mut m, tid, key, &[key as u8; 24], capacity);
                }
            }
            MemslapOp::Set { key, vsize } => {
                mc.set(&mut m, tid, key, &vec![key as u8; vsize.min(24)], capacity);
            }
        }
    }

    AppRun::collect("memcached", "memslap / 4 clients, 5% SET", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CrashSpec;
    use pmtrace::analysis;

    #[test]
    fn transactions_small_and_epochs_singleton_heavy() {
        let run = run(400, 11);
        let epochs = analysis::split_epochs(&run.events);
        let median = analysis::tx_stats(&epochs).median().unwrap();
        assert!((3..=25).contains(&median), "memcached median {median}");
        let hist = analysis::epoch_size_histogram(&epochs);
        assert!(
            hist.singleton_fraction() > 0.5,
            "singletons {}",
            hist.singleton_fraction()
        );
    }

    #[test]
    fn mnemosyne_nt_fraction_substantial() {
        // Consequence 10: ~67% of Mnemosyne's writes are NT (redo log).
        let run = run(400, 11);
        let epochs = analysis::split_epochs(&run.events);
        let nt = analysis::nt_fraction(&epochs).unwrap();
        assert!(nt > 0.35 && nt < 0.95, "NT fraction {nt}");
    }

    #[test]
    fn four_workers_share_the_table() {
        let run = run(400, 11);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.cross_dep_epochs > 0,
            "scheduler-interleaved workers over one table: cross-deps expected"
        );
    }

    #[test]
    fn cache_behaves_like_lru() {
        let mut m = machine_for(WORKERS);
        let mut mc = Memcached::build(&mut m, WORKERS, 64);
        for key in 0..5u64 {
            mc.set(&mut m, Tid(0), key, b"value-xx", 3);
        }
        // Capacity 3: keys 0 and 1 evicted.
        assert!(mc.get(&mut m, Tid(0), 0, false).is_none());
        assert!(mc.get(&mut m, Tid(0), 4, false).is_some());
        assert_eq!(mc.lru.len(&mut m, Tid(0)), 3);
    }

    #[test]
    fn committed_sets_survive_crash() {
        let mut m = machine_for(WORKERS);
        let mut mc = Memcached::build(&mut m, WORKERS, 64);
        mc.set(&mut m, Tid(2), 99, b"cached!!", 100);
        let table_region = mc.table_region;
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut table2 = CHash::open(&mut m2, Tid(0), table_region).unwrap();
        let _ = table2.recover(&mut m2, Tid(0));
        assert_eq!(
            table2.get(&mut m2, Tid(0), &99u64.to_le_bytes()).as_deref(),
            Some(&b"cached!!"[..])
        );
    }
}
