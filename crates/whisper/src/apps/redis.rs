//! Redis with an NVML-backed persistent hash table (Section 3.2.2).
//!
//! "Redis ... stores frequently accessed key-value pairs in a hash
//! table and resolves collisions through chaining. It uses a
//! single-threaded event programming model to serve clients. ... We
//! borrowed a partially recoverable version of Redis ... modified to
//! store string keys and values in a hash table allocated in PM using
//! NVML."
//!
//! One server thread runs the event loop (heavy volatile work per
//! command — parsing, reply buffers, the volatile dict machinery), and
//! every mutation is an NVML-style undo transaction. The `lru-test`
//! driver GETs keys from a space larger than the live set, SETting on
//! miss and evicting when over capacity — so steady state mixes reads,
//! same-size overwrites (the 1-undo-record transactions behind Redis's
//! small Figure 3 median), inserts, and deletions.

use super::{AppRun, VolatileArena};
use crate::region::RegionPlanner;
use crate::workloads;
use memsim::{Machine, MachineConfig, PmWriter};
use pmalloc::SlabBitmapAlloc;
use pmds::PHashMap;
use pmem::Addr;
use pmtrace::Tid;
use pmtx::UndoTxEngine;
use std::collections::VecDeque;

const SERVER: Tid = Tid(0);

pub(crate) struct Redis {
    pub(crate) eng: UndoTxEngine,
    pub(crate) alloc: SlabBitmapAlloc,
    pub(crate) dict: PHashMap,
    #[allow(dead_code)] // recovery handle, used by crash tests
    pub(crate) log_region: pmem::AddrRange,
    #[allow(dead_code)] // recovery handle, used by crash tests
    pub(crate) dict_head: Addr,
}

impl Redis {
    pub(crate) fn build(m: &mut Machine) -> Redis {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        let log_region = plan.take(4 << 20);
        let heap_region = plan.take(256 << 20);
        let dict_region = plan.take(PHashMap::region_bytes(512));
        let mut eng = UndoTxEngine::format(m, log_region, 1);
        let mut w = PmWriter::new(SERVER);
        let alloc = SlabBitmapAlloc::format(m, &mut w, heap_region);
        eng.begin(m, SERVER).expect("fresh engine");
        let dict = PHashMap::create(m, &mut eng, SERVER, dict_region, 512).expect("dict");
        eng.commit(m, SERVER).expect("setup");
        Redis {
            eng,
            alloc,
            dict,
            log_region,
            dict_head: dict_region.base,
        }
    }
}

/// lru-test without event-loop pacing (gem5-style, for Figures 6/10).
pub fn run_unpaced(ops: usize, seed: u64) -> AppRun {
    run_inner(ops, seed, false)
}

/// Run `redis-cli lru-test` against the PM-backed dictionary.
pub fn run(ops: usize, seed: u64) -> AppRun {
    run_inner(ops, seed, true)
}

pub(crate) fn run_inner(ops: usize, seed: u64, paced: bool) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    let mut r = Redis::build(&mut m);
    // Setup (engine/allocator/structure formatting) is untraced: the
    // measured interval is the steady-state workload, as in the paper.
    m.trace_mut().set_enabled(false);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    let keyspace = (ops / 2).clamp(64, 8000);
    let capacity = keyspace / 2;
    // Approximate Redis's eviction pool with insertion-order tracking.
    let mut live: VecDeque<u64> = VecDeque::new();

    m.trace_mut().set_enabled(true);
    for op in workloads::lru_test(keyspace, ops, seed) {
        // The event loop: read the command, walk the volatile dict
        // machinery, build a reply — thousands of DRAM accesses per
        // command, dwarfing the few PM lines a SET persists (Figure 6
        // measures redis at 0.74% PM).
        arena.work(&mut m, SERVER, if paced { 1900 } else { 2800 });
        // Event-loop turnaround between commands.
        if paced {
            m.advance_ns(2_600);
        }
        let key = op.key.to_le_bytes();
        match r.dict.get(&mut m, &mut r.eng, SERVER, &key) {
            Some(_) => {
                // Cache hit: occasionally refresh the value in place
                // (same size → single-undo-record transaction).
                if op.key % 8 == 0 {
                    r.eng.begin(&mut m, SERVER).expect("tx");
                    r.dict
                        .insert(
                            &mut m,
                            &mut r.eng,
                            SERVER,
                            &mut r.alloc,
                            &key,
                            &[op.key as u8; 64],
                        )
                        .expect("overwrite");
                    r.eng.commit(&mut m, SERVER).expect("commit");
                }
            }
            None => {
                // Miss: SET, evicting if over capacity.
                r.eng.begin(&mut m, SERVER).expect("tx");
                r.dict
                    .insert(
                        &mut m,
                        &mut r.eng,
                        SERVER,
                        &mut r.alloc,
                        &key,
                        &[op.key as u8; 64],
                    )
                    .expect("insert");
                r.eng.commit(&mut m, SERVER).expect("commit");
                live.push_back(op.key);
                if live.len() > capacity {
                    let victim = live.pop_front().expect("nonempty").to_le_bytes();
                    r.eng.begin(&mut m, SERVER).expect("tx");
                    r.dict
                        .remove(&mut m, &mut r.eng, SERVER, &mut r.alloc, &victim)
                        .expect("evict");
                    r.eng.commit(&mut m, SERVER).expect("commit");
                }
            }
        }
    }

    AppRun::collect("redis", "redis-cli / lru-test", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CrashSpec;
    use pmtrace::analysis;

    #[test]
    fn pm_fraction_is_small() {
        // Figure 6: redis has the second-lowest PM share (0.74%).
        let run = run(400, 2);
        let f = run.stats.pm_fraction();
        assert!(f < 0.05, "redis PM fraction {f} should be tiny");
    }

    #[test]
    fn self_dependencies_dominate() {
        // Figure 5: NVML-based Redis shows ~80% self-dependent epochs
        // (log-slot and dictionary-line reuse).
        let run = run(400, 3);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.self_fraction() > 0.5,
            "self-dep fraction {} too low for an NVML app",
            deps.self_fraction()
        );
        assert!(
            deps.cross_fraction() < 0.01,
            "single-threaded: no cross-deps"
        );
    }

    #[test]
    fn committed_sets_survive_crash() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut r = Redis::build(&mut m);
        r.eng.begin(&mut m, SERVER).unwrap();
        r.dict
            .insert(
                &mut m,
                &mut r.eng,
                SERVER,
                &mut r.alloc,
                b"cached",
                b"value",
            )
            .unwrap();
        r.eng.commit(&mut m, SERVER).unwrap();
        let log = r.log_region;
        let head = r.dict_head;
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, SERVER, log, 1);
        let dict2 = PHashMap::open(&mut m2, SERVER, head).unwrap();
        assert_eq!(
            dict2.get(&mut m2, &mut eng2, SERVER, b"cached").as_deref(),
            Some(&b"value"[..])
        );
    }
}
