//! Redis with an NVML-backed persistent hash table (Section 3.2.2).
//!
//! "Redis ... stores frequently accessed key-value pairs in a hash
//! table and resolves collisions through chaining. It uses a
//! single-threaded event programming model to serve clients. ... We
//! borrowed a partially recoverable version of Redis ... modified to
//! store string keys and values in a hash table allocated in PM using
//! NVML."
//!
//! One server thread runs the event loop (heavy volatile work per
//! command — parsing, reply buffers, the volatile dict machinery), and
//! every mutation is an NVML-style undo transaction. The `lru-test`
//! driver GETs keys from a space larger than the live set, SETting on
//! miss and evicting when over capacity — so steady state mixes reads,
//! same-size overwrites (the 1-undo-record transactions behind Redis's
//! small Figure 3 median), inserts, and deletions.

use super::{AppRun, VolatileArena};
use crate::region::RegionPlanner;
use crate::workloads;
use memsim::{Machine, MachineConfig, PmWriter};
use pmalloc::SlabBitmapAlloc;
use pmds::PHashMap;
use pmem::{Addr, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::Tid;
use pmtx::UndoTxEngine;
use std::collections::{HashMap, VecDeque};

const SERVER: Tid = Tid(0);

pub(crate) struct Redis {
    pub(crate) eng: UndoTxEngine,
    pub(crate) alloc: SlabBitmapAlloc,
    pub(crate) dict: PHashMap,
    pub(crate) log_region: pmem::AddrRange,
    pub(crate) dict_head: Addr,
}

impl Redis {
    pub(crate) fn build(m: &mut Machine) -> Redis {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        let log_region = plan.take(4 << 20);
        let heap_region = plan.take(256 << 20);
        let dict_region = plan.take(PHashMap::region_bytes(512));
        let mut eng = UndoTxEngine::format(m, log_region, 1);
        let mut w = PmWriter::new(SERVER);
        let alloc = SlabBitmapAlloc::format(m, &mut w, heap_region);
        eng.begin(m, SERVER).expect("fresh engine");
        let dict = PHashMap::create(m, &mut eng, SERVER, dict_region, 512).expect("dict");
        eng.commit(m, SERVER).expect("setup");
        Redis {
            eng,
            alloc,
            dict,
            log_region,
            dict_head: dict_region.base,
        }
    }
}

/// Crash workload + recovery oracle (see [`crate::crashtest`]): a
/// SET-only stream over a small keyspace, one undo transaction per
/// operation. The oracle recovers the engine, re-opens the dictionary,
/// and requires every key to carry its last committed value — the one
/// in-flight SET may be fully applied or fully rolled back.
pub(crate) fn crash_run(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const CRASH_KEYSPACE: u64 = 32;
    let mut m = Machine::new(MachineConfig::asplos17());
    let mut r = Redis::build(&mut m);
    m.trace_mut().set_enabled(false);
    let mut rng = SmallRng::seed_from_u64(0x4ed1);
    let plan_ops: Vec<(u64, [u8; 16])> = (0..ops)
        .map(|i| {
            let key = rng.gen_range(0..CRASH_KEYSPACE);
            let mut val = [0u8; 16];
            val[0..8].copy_from_slice(&key.to_le_bytes());
            val[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            (key, val)
        })
        .collect();

    crate::crashtest::arm(&mut m, points);
    for (i, (key, val)) in plan_ops.iter().enumerate() {
        r.eng.begin(&mut m, SERVER).expect("tx");
        r.dict
            .insert(
                &mut m,
                &mut r.eng,
                SERVER,
                &mut r.alloc,
                &key.to_le_bytes(),
                val,
            )
            .expect("set");
        r.eng.commit(&mut m, SERVER).expect("commit");
        m.note_progress(i as u64 + 1);
    }

    let log = r.log_region;
    let head = r.dict_head;
    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, SERVER, log, 1);
        let dict2 = PHashMap::open(&mut m2, SERVER, head)
            .map_err(|e| format!("dict open failed: {e:?}"))?;
        let mut model: HashMap<u64, [u8; 16]> = HashMap::new();
        for (k, v) in &plan_ops[..progress as usize] {
            model.insert(*k, *v);
        }
        let in_flight = plan_ops.get(progress as usize);
        for key in 0..CRASH_KEYSPACE {
            let got = dict2.get(&mut m2, &mut eng2, SERVER, &key.to_le_bytes());
            let committed_ok = match (got.as_deref(), model.get(&key)) {
                (Some(g), Some(w)) => g == w.as_slice(),
                (None, None) => true,
                _ => false,
            };
            let in_flight_ok = matches!(
                in_flight,
                Some((k, v)) if *k == key && got.as_deref() == Some(v.as_slice())
            );
            if !(committed_ok || in_flight_ok) {
                return Err(format!(
                    "key {key}: recovered {:?} != committed {:?}",
                    got.as_deref().map(<[u8]>::to_vec),
                    model.get(&key).map(|v| v.to_vec())
                ));
            }
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total, oracle)
}

/// lru-test without event-loop pacing (gem5-style, for Figures 6/10).
pub fn run_unpaced(ops: usize, seed: u64) -> AppRun {
    run_inner(ops, seed, false)
}

/// Run `redis-cli lru-test` against the PM-backed dictionary.
pub fn run(ops: usize, seed: u64) -> AppRun {
    run_inner(ops, seed, true)
}

pub(crate) fn run_inner(ops: usize, seed: u64, paced: bool) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    let mut r = Redis::build(&mut m);
    // Setup (engine/allocator/structure formatting) is untraced: the
    // measured interval is the steady-state workload, as in the paper.
    m.trace_mut().set_enabled(false);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    let keyspace = (ops / 2).clamp(64, 8000);
    let capacity = keyspace / 2;
    // Approximate Redis's eviction pool with insertion-order tracking.
    let mut live: VecDeque<u64> = VecDeque::new();

    m.trace_mut().set_enabled(true);
    for op in workloads::lru_test(keyspace, ops, seed) {
        // The event loop: read the command, walk the volatile dict
        // machinery, build a reply — thousands of DRAM accesses per
        // command, dwarfing the few PM lines a SET persists (Figure 6
        // measures redis at 0.74% PM).
        arena.work(&mut m, SERVER, if paced { 1900 } else { 2800 });
        // Event-loop turnaround between commands.
        if paced {
            m.advance_ns(2_600);
        }
        let key = op.key.to_le_bytes();
        match r.dict.get(&mut m, &mut r.eng, SERVER, &key) {
            Some(_) => {
                // Cache hit: occasionally refresh the value in place
                // (same size → single-undo-record transaction).
                if op.key % 8 == 0 {
                    r.eng.begin(&mut m, SERVER).expect("tx");
                    r.dict
                        .insert(
                            &mut m,
                            &mut r.eng,
                            SERVER,
                            &mut r.alloc,
                            &key,
                            &[op.key as u8; 64],
                        )
                        .expect("overwrite");
                    r.eng.commit(&mut m, SERVER).expect("commit");
                }
            }
            None => {
                // Miss: SET, evicting if over capacity.
                r.eng.begin(&mut m, SERVER).expect("tx");
                r.dict
                    .insert(
                        &mut m,
                        &mut r.eng,
                        SERVER,
                        &mut r.alloc,
                        &key,
                        &[op.key as u8; 64],
                    )
                    .expect("insert");
                r.eng.commit(&mut m, SERVER).expect("commit");
                live.push_back(op.key);
                if live.len() > capacity {
                    let victim = live.pop_front().expect("nonempty").to_le_bytes();
                    r.eng.begin(&mut m, SERVER).expect("tx");
                    r.dict
                        .remove(&mut m, &mut r.eng, SERVER, &mut r.alloc, &victim)
                        .expect("evict");
                    r.eng.commit(&mut m, SERVER).expect("commit");
                }
            }
        }
    }

    AppRun::collect("redis", "redis-cli / lru-test", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CrashSpec;
    use pmtrace::analysis;

    #[test]
    fn pm_fraction_is_small() {
        // Figure 6: redis has the second-lowest PM share (0.74%).
        let run = run(400, 2);
        let f = run.stats.pm_fraction();
        assert!(f < 0.05, "redis PM fraction {f} should be tiny");
    }

    #[test]
    fn self_dependencies_dominate() {
        // Figure 5: NVML-based Redis shows ~80% self-dependent epochs
        // (log-slot and dictionary-line reuse).
        let run = run(400, 3);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.self_fraction() > 0.5,
            "self-dep fraction {} too low for an NVML app",
            deps.self_fraction()
        );
        assert!(
            deps.cross_fraction() < 0.01,
            "single-threaded: no cross-deps"
        );
    }

    #[test]
    fn committed_sets_survive_crash() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut r = Redis::build(&mut m);
        r.eng.begin(&mut m, SERVER).unwrap();
        r.dict
            .insert(
                &mut m,
                &mut r.eng,
                SERVER,
                &mut r.alloc,
                b"cached",
                b"value",
            )
            .unwrap();
        r.eng.commit(&mut m, SERVER).unwrap();
        let log = r.log_region;
        let head = r.dict_head;
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, SERVER, log, 1);
        let dict2 = PHashMap::open(&mut m2, SERVER, head).unwrap();
        assert_eq!(
            dict2.get(&mut m2, &mut eng2, SERVER, b"cached").as_deref(),
            Some(&b"value"[..])
        );
    }
}
