//! Redis with an NVML-backed persistent hash table (Section 3.2.2).
//!
//! "Redis ... stores frequently accessed key-value pairs in a hash
//! table and resolves collisions through chaining. ... We borrowed a
//! partially recoverable version of Redis ... modified to store string
//! keys and values in a hash table allocated in PM using NVML."
//!
//! Upstream Redis is single-threaded, but its modern `io-threads`
//! deployment dispatches commands from the event loop to N worker
//! threads — the configuration this port models so the Figure 5
//! dependency analysis sees real cross-thread epoch edges. A seeded
//! [`memsim::Scheduler`] interleaves the workers per-command
//! (deterministically: the interleaving is a pure function of the run
//! seed, bit-identical at any host `--parallel`). The workers share two
//! concurrent durable structures with detectable recovery:
//!
//! * a [`pmds::CHash`] — the keyspace dictionary (per-worker announce
//!   slots, incremental resize), and
//! * a [`pmds::DurableQueue`] — the eviction backlog the `lru-test`
//!   driver pops victims from (per-worker producer slots).
//!
//! Every command still performs heavy volatile work (parsing, reply
//! buffers, the volatile dict machinery), so PM stays a tiny share of
//! traffic (Figure 6 measures redis at 0.74% PM).

use super::{machine_for, AppRun, VolatileArena, WORKERS};
use crate::region::RegionPlanner;
use crate::workloads;
use memsim::{Machine, MachineConfig, PmWriter, Scheduler};
use pmds::{CHash, DurableQueue};
use pmem::{Addr, AddrRange, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::{Category, Tid};
use std::collections::{HashMap, VecDeque};

pub(crate) struct Redis {
    pub(crate) dict: CHash,
    pub(crate) backlog: DurableQueue,
    pub(crate) dict_region: AddrRange,
    pub(crate) queue_head: Addr,
    /// One line per worker: the post-arm fence prologue in `crash_run`
    /// touches these so every thread drains its untraced-setup entries.
    pub(crate) scratch: Addr,
    /// Monotone sequence tags for announce-slot operations (never 0).
    seq: u64,
}

impl Redis {
    /// Build the shared structures, sized for `ops` commands from
    /// `workers` workers.
    pub(crate) fn build(m: &mut Machine, workers: u32, ops: usize) -> Redis {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        // Arena sizing: one node per insert/overwrite plus resize
        // copies and directory lines; generous, the image is sparse.
        let arena_lines = (ops as u64 * 8).max(1 << 12);
        let dict_region = plan.take(CHash::region_bytes(workers, arena_lines));
        let queue_region = plan.take(DurableQueue::region_bytes(workers, ops as u64 + 64));
        let scratch = plan.take(u64::from(workers) * 64).base;
        let dict = CHash::create(m, Tid(0), dict_region, workers, 64).expect("dict");
        let backlog =
            DurableQueue::create(m, Tid(0), queue_region, workers, ops as u64 + 64).expect("queue");
        Redis {
            dict,
            backlog,
            dict_region,
            queue_head: queue_region.base,
            scratch,
            seq: 0,
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// One crash-campaign command: each touches exactly one structure, so
/// the in-flight operation at any fence crash point is wholly applied
/// or wholly absent after detectable recovery.
#[derive(Debug, Clone, Copy)]
enum COp {
    /// Dictionary upsert.
    Set { key: u64, val: [u8; 16] },
    /// Dictionary tombstone.
    Del { key: u64 },
    /// Backlog enqueue.
    Enq { key: u64 },
    /// Backlog dequeue (no-op on an empty backlog).
    Deq,
}

/// Crash workload + recovery oracle (see [`crate::crashtest`]): a
/// seeded-scheduler interleaving of SET/DEL/enqueue/dequeue commands
/// over the shared [`CHash`] and [`DurableQueue`]. The oracle runs both
/// structures' detectable recovery and requires every committed command
/// to be fully visible — the one in-flight command may be rolled
/// forward or discarded, never torn.
pub(crate) fn crash_run(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const CRASH_KEYSPACE: u64 = 32;
    let workers = WORKERS;
    let mut m = machine_for(workers);
    m.trace_mut().set_enabled(false);
    let mut r = Redis::build(&mut m, workers, ops);

    // The global command order is a pure function of the seed: the
    // oracle replays the same schedule below without re-running it.
    let mut sched = Scheduler::new(workers, 0x4ed1);
    let schedule: Vec<Tid> = (0..ops)
        .map(|_| sched.next().expect("workers live"))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x4ed1);
    let mut planned_backlog = 0usize;
    let plan_ops: Vec<COp> = (0..ops)
        .map(|i| {
            let key = rng.gen_range(0..CRASH_KEYSPACE);
            let mut val = [0u8; 16];
            val[0..8].copy_from_slice(&key.to_le_bytes());
            val[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            if i % 4 == 3 {
                if planned_backlog > 0 && i % 8 == 7 {
                    planned_backlog -= 1;
                    COp::Deq
                } else {
                    planned_backlog += 1;
                    COp::Enq { key }
                }
            } else if i % 5 == 4 {
                COp::Del { key }
            } else {
                COp::Set { key, val }
            }
        })
        .collect();

    crate::crashtest::arm(&mut m, points);
    // Prologue: every worker retires one traced durable store, in fixed
    // tid order. Untraced setup leaves in-flight entries the HB
    // cross-validation cannot see; its durability proof stays vacuous
    // until each thread appearing in the trace has fenced once.
    for wk in 0..workers {
        let tid = Tid(wk);
        let mut w = PmWriter::new(tid);
        w.write_u64(&mut m, r.scratch + u64::from(wk) * 64, 1, Category::AppMeta);
        w.durability_fence(&mut m);
    }
    for (i, op) in plan_ops.iter().enumerate() {
        let tid = schedule[i];
        let seq = i as u64 + 1;
        match *op {
            COp::Set { key, val } => {
                r.dict
                    .upsert(&mut m, tid, tid.0, seq, &key.to_le_bytes(), &val)
                    .expect("set");
            }
            COp::Del { key } => {
                r.dict
                    .remove(&mut m, tid, tid.0, seq, &key.to_le_bytes())
                    .expect("del");
            }
            COp::Enq { key } => {
                r.backlog
                    .enqueue(&mut m, tid, tid.0, seq, &key.to_le_bytes())
                    .expect("enqueue");
            }
            COp::Deq => {
                r.backlog.dequeue(&mut m, tid, seq).expect("dequeue");
            }
        }
        m.note_progress(i as u64 + 1);
    }

    let dict_region = r.dict_region;
    let qhead = r.queue_head;
    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut cfg = MachineConfig::asplos17();
        cfg.threads = cfg.threads.max(workers);
        let mut m2 = Machine::from_image(cfg, img);
        let mut dict2 = CHash::open(&mut m2, Tid(0), dict_region)
            .map_err(|e| format!("dict open failed: {e:?}"))?;
        let _ = dict2.recover(&mut m2, Tid(0));
        let mut q2 = DurableQueue::open(&mut m2, Tid(0), qhead)
            .map_err(|e| format!("queue open failed: {e:?}"))?;
        let _ = q2.recover(&mut m2, Tid(0));

        // Replay the committed prefix into volatile models.
        let mut model: HashMap<u64, [u8; 16]> = HashMap::new();
        let mut backlog: VecDeque<(u64, u64)> = VecDeque::new(); // (seq, key)
        let apply = |model: &mut HashMap<u64, [u8; 16]>,
                     backlog: &mut VecDeque<(u64, u64)>,
                     i: usize,
                     op: &COp| match *op {
            COp::Set { key, val } => {
                model.insert(key, val);
            }
            COp::Del { key } => {
                model.remove(&key);
            }
            COp::Enq { key } => backlog.push_back((i as u64 + 1, key)),
            COp::Deq => {
                backlog.pop_front();
            }
        };
        for (i, op) in plan_ops[..progress as usize].iter().enumerate() {
            apply(&mut model, &mut backlog, i, op);
        }
        let in_flight = plan_ops.get(progress as usize);

        // Dictionary: every key holds its last committed value; the
        // in-flight SET/DEL may additionally be applied in full.
        for key in 0..CRASH_KEYSPACE {
            let got = dict2.get(&mut m2, Tid(0), &key.to_le_bytes());
            let committed_ok = match (got.as_deref(), model.get(&key)) {
                (Some(g), Some(w)) => g == w.as_slice(),
                (None, None) => true,
                _ => false,
            };
            let in_flight_ok = match in_flight {
                Some(COp::Set { key: k, val }) => *k == key && got.as_deref() == Some(&val[..]),
                Some(COp::Del { key: k }) => *k == key && got.is_none(),
                _ => false,
            };
            if !(committed_ok || in_flight_ok) {
                return Err(format!(
                    "key {key}: recovered {:?} != committed {:?}",
                    got.as_deref().map(<[u8]>::to_vec),
                    model.get(&key).map(|v| v.to_vec())
                ));
            }
        }

        // Backlog: FIFO order of the committed enqueues, with the
        // in-flight enqueue possibly at the tail (rolled forward) or
        // the in-flight dequeue possibly already taken from the head.
        let want: Vec<(u64, Vec<u8>)> = backlog
            .iter()
            .map(|(s, k)| (*s, k.to_le_bytes().to_vec()))
            .collect();
        let snapshot = q2.iter_snapshot(&mut m2, Tid(0));
        let queue_ok = snapshot == want
            || match in_flight {
                Some(COp::Enq { key }) => {
                    let mut w = want.clone();
                    w.push((progress + 1, key.to_le_bytes().to_vec()));
                    snapshot == w
                }
                Some(COp::Deq) if !want.is_empty() => snapshot == want[1..],
                _ => false,
            };
        if !queue_ok {
            return Err(format!(
                "backlog: recovered {} item(s) {:?} != committed {} item(s)",
                snapshot.len(),
                snapshot.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                want.len()
            ));
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total, oracle)
}

/// lru-test without event-loop pacing (gem5-style, for Figures 6/10).
pub fn run_unpaced(ops: usize, seed: u64) -> AppRun {
    run_inner(ops, seed, false, WORKERS)
}

/// Run `redis-cli lru-test` against the PM-backed dictionary with the
/// Table 1 worker count.
pub fn run(ops: usize, seed: u64) -> AppRun {
    run_inner(ops, seed, true, WORKERS)
}

/// [`run`] with an explicit worker-thread count (`--threads`).
pub fn run_threads(ops: usize, seed: u64, workers: u32) -> AppRun {
    run_inner(ops, seed, true, workers)
}

pub(crate) fn run_inner(ops: usize, seed: u64, paced: bool, workers: u32) -> AppRun {
    let mut m = machine_for(workers);
    // Setup (structure formatting) is untraced: the measured interval
    // is the steady-state workload, as in the paper.
    m.trace_mut().set_enabled(false);
    let mut r = Redis::build(&mut m, workers, ops);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    let keyspace = (ops / 2).clamp(64, 8000);
    let capacity = keyspace / 2;
    // The backlog length mirror (Redis tracks its eviction pool size
    // volatilely; the queue itself is the durable source of truth).
    let mut backlog_len = 0usize;

    // The event loop dispatches each command to a seeded worker pick —
    // deterministic in `seed` alone, whatever the host parallelism.
    let mut sched = Scheduler::new(workers, seed);
    m.trace_mut().set_enabled(true);
    for op in workloads::lru_test(keyspace, ops, seed) {
        let tid = sched.next().expect("workers never retire");
        // The worker: read the command, walk the volatile dict
        // machinery, build a reply — thousands of DRAM accesses per
        // command, dwarfing the few PM lines a SET persists (Figure 6
        // measures redis at 0.74% PM).
        arena.work(&mut m, tid, if paced { 1900 } else { 2800 });
        // Event-loop turnaround between commands.
        if paced {
            m.advance_ns(2_600);
        }
        let key = op.key.to_le_bytes();
        match r.dict.get(&mut m, tid, &key) {
            Some(_) => {
                // Cache hit: occasionally refresh the value in place
                // (same size → a single new version in the chain).
                if op.key % 8 == 0 {
                    let seq = r.next_seq();
                    r.dict
                        .upsert(&mut m, tid, tid.0, seq, &key, &[op.key as u8; 24])
                        .expect("overwrite");
                }
            }
            None => {
                // Miss: SET and record the key in the eviction
                // backlog, popping a victim when over capacity.
                let seq = r.next_seq();
                r.dict
                    .upsert(&mut m, tid, tid.0, seq, &key, &[op.key as u8; 24])
                    .expect("insert");
                let seq = r.next_seq();
                r.backlog
                    .enqueue(&mut m, tid, tid.0, seq, &key)
                    .expect("backlog");
                backlog_len += 1;
                if backlog_len > capacity {
                    let seq = r.next_seq();
                    if let Some((_, victim)) = r.backlog.dequeue(&mut m, tid, seq).expect("victim")
                    {
                        let seq = r.next_seq();
                        r.dict
                            .remove(&mut m, tid, tid.0, seq, &victim)
                            .expect("evict");
                        backlog_len -= 1;
                    }
                }
            }
        }
    }

    AppRun::collect("redis", "redis-cli / lru-test", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::analysis;

    #[test]
    fn pm_fraction_is_small() {
        // Figure 6: redis has the second-lowest PM share (0.74%).
        let run = run(400, 2);
        let f = run.stats.pm_fraction();
        assert!(f < 0.05, "redis PM fraction {f} should be tiny");
    }

    #[test]
    fn self_dependencies_dominate_but_cross_deps_appear() {
        // Figure 5: NVML-based Redis shows mostly self-dependent epochs
        // (announce-slot and dictionary-line reuse) — but with N worker
        // threads sharing the dictionary and backlog, cross-thread
        // epoch dependencies must now exist (shared bucket heads, the
        // allocation cursor, the queue tail).
        let run = run(400, 3);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.self_fraction() > 0.3,
            "self-dep fraction {} too low for an NVML app",
            deps.self_fraction()
        );
        assert!(
            deps.cross_dep_epochs > 0,
            "4 workers over shared structures: cross-deps expected"
        );
    }

    #[test]
    fn single_worker_has_no_cross_deps() {
        // `--threads 1` degenerates to the classic single-threaded
        // Redis: every dependency is a self-dependency.
        let run = run_threads(400, 3, 1);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert_eq!(deps.cross_dep_epochs, 0, "single worker cannot cross");
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        // The scheduler interleaving is a pure function of the seed.
        let a = run_threads(200, 9, 4);
        let b = run_threads(200, 9, 4);
        assert_eq!(a.events, b.events, "same seed must be bit-identical");
        let c = run_threads(200, 10, 4);
        assert_ne!(a.events, c.events, "different seeds must diverge");
    }

    #[test]
    fn committed_sets_survive_crash() {
        let mut m = machine_for(WORKERS);
        let mut r = Redis::build(&mut m, WORKERS, 64);
        let seq = r.next_seq();
        r.dict
            .upsert(&mut m, Tid(1), 1, seq, b"cached", b"value")
            .unwrap();
        let region = r.dict_region;
        let img = m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut dict2 = CHash::open(&mut m2, Tid(0), region).unwrap();
        let _ = dict2.recover(&mut m2, Tid(0));
        assert_eq!(
            dict2.get(&mut m2, Tid(0), b"cached").as_deref(),
            Some(&b"value"[..])
        );
    }
}
