//! The NVML example micro-benchmarks: `ctree` and `hashmap`
//! (Section 3.2.2).
//!
//! "C-tree and Hashmap are multi-threaded micro-benchmarks written for
//! NVML that perform inserts and deletes operations into a persistent
//! crit-bit tree or a hashmap. These benchmarks are part of the
//! examples shipped with NVML." The paper notes micro-benchmarks like
//! these are "simulator-suitable" stand-ins whose "memory access
//! patterns are representative of larger workloads".
//!
//! Table 1 drives both with 4 clients and 100 K INSERT transactions;
//! we mix in the deletes the benchmark also implements.

use super::{AppRun, VolatileArena};
use crate::region::RegionPlanner;
use memsim::{Machine, MachineConfig, PmWriter};
use pmalloc::ShardedSlab;
use pmds::{CritBitTree, PHashMap};
use pmem::{AddrRange, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::Tid;
use pmtx::UndoTxEngine;
use std::collections::HashMap;

const THREADS: u32 = 4;

struct MicroEnv {
    m: Machine,
    eng: UndoTxEngine,
    /// Per-thread allocator arenas, as in NVML's per-thread allocation
    /// classes — shared allocator metadata would otherwise manufacture
    /// cross-thread dependencies the real benchmarks do not have.
    alloc: ShardedSlab,
    arena: VolatileArena,
    /// Engine log region — the recovery oracle's re-open handle.
    log_region: AddrRange,
}

fn build_env() -> (MicroEnv, RegionPlanner) {
    let mut m = Machine::new(MachineConfig::asplos17());
    // Setup is untraced: the measured interval is the insert workload.
    m.trace_mut().set_enabled(false);
    let mut plan = RegionPlanner::new(m.config().map.pm);
    let log_region = plan.take(8 << 20);
    let eng = UndoTxEngine::format(&mut m, log_region, THREADS);
    let mut w = PmWriter::new(Tid(0));
    let heap = plan.take(ShardedSlab::region_bytes(96 << 20, THREADS as usize));
    let alloc = ShardedSlab::format(&mut m, &mut w, heap.base, 96 << 20, THREADS as usize);
    let arena = VolatileArena::new(&mut m, 1 << 20);
    (
        MicroEnv {
            m,
            eng,
            alloc,
            arena,
            log_region,
        },
        plan,
    )
}

const CRASH_KEYSPACE: u64 = 32;

/// The shared crash-campaign op plan: (is-insert, key) pairs, 85 %
/// inserts over a small keyspace.
fn crash_plan_ops(ops: usize, seed: u64) -> Vec<(bool, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| (rng.gen_range(0..100) < 85, rng.gen_range(0..CRASH_KEYSPACE)))
        .collect()
}

/// Crash workload + oracle for `ctree` (see [`crate::crashtest`]):
/// per-op insert/remove transactions; the oracle recovers the engine,
/// re-opens the crit-bit tree, and compares every key against the
/// committed prefix, allowing the in-flight op's key to hold either
/// its old or its new state.
pub(crate) fn crash_run_ctree(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    let (mut env, mut plan) = build_env();
    let tree_region = plan.take(pmds::CRITBIT_REGION_BYTES);
    env.eng.begin(&mut env.m, Tid(0)).expect("setup tx");
    let tree = CritBitTree::create(&mut env.m, &mut env.eng, Tid(0), tree_region).expect("tree");
    env.eng.commit(&mut env.m, Tid(0)).expect("setup");
    let plan_ops = crash_plan_ops(ops, 0xc47ee);

    crate::crashtest::arm(&mut env.m, points);
    for (i, (insert, key)) in plan_ops.iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        env.alloc.select(tid.0 as usize);
        env.eng.begin(&mut env.m, tid).expect("tx");
        if *insert {
            tree.insert(
                &mut env.m,
                &mut env.eng,
                tid,
                &mut env.alloc,
                &key.to_be_bytes(),
                i as u64 + 1,
            )
            .expect("insert");
        } else {
            tree.remove(
                &mut env.m,
                &mut env.eng,
                tid,
                &mut env.alloc,
                &key.to_be_bytes(),
            )
            .expect("remove");
        }
        env.eng.commit(&mut env.m, tid).expect("commit");
        env.m.note_progress(i as u64 + 1);
    }

    let log = env.log_region;
    let tree_base = tree_region.base;
    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, Tid(0), log, THREADS);
        let tree2 = CritBitTree::open(&mut m2, Tid(0), tree_base)
            .map_err(|e| format!("tree open failed: {e:?}"))?;
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, (insert, key)) in plan_ops[..progress as usize].iter().enumerate() {
            if *insert {
                model.insert(*key, i as u64 + 1);
            } else {
                model.remove(key);
            }
        }
        let in_flight = plan_ops.get(progress as usize);
        for key in 0..CRASH_KEYSPACE {
            let got = tree2.get(&mut m2, &mut eng2, Tid(0), &key.to_be_bytes());
            let want = model.get(&key).copied();
            if got == want {
                continue;
            }
            let after = match in_flight {
                Some((insert, k)) if *k == key => {
                    if *insert {
                        Some(progress + 1)
                    } else {
                        None
                    }
                }
                _ => {
                    return Err(format!(
                        "key {key}: recovered {got:?} != committed {want:?}"
                    ));
                }
            };
            if got != after {
                return Err(format!(
                    "key {key}: recovered {got:?}, neither old {want:?} nor in-flight {after:?}"
                ));
            }
        }
        Ok(())
    });
    let MicroEnv { m, .. } = env;
    crate::crashtest::harvest(m, total, oracle)
}

/// Crash workload + oracle for `hashmap`: same shape as
/// [`crash_run_ctree`] over the persistent chained hash map.
pub(crate) fn crash_run_hashmap(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    let (mut env, mut plan) = build_env();
    let map_region = plan.take(PHashMap::region_bytes(512));
    env.eng.begin(&mut env.m, Tid(0)).expect("setup tx");
    let map = PHashMap::create(&mut env.m, &mut env.eng, Tid(0), map_region, 512).expect("map");
    env.eng.commit(&mut env.m, Tid(0)).expect("setup");
    let plan_ops = crash_plan_ops(ops, 0x4a54);

    crate::crashtest::arm(&mut env.m, points);
    for (i, (insert, key)) in plan_ops.iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        env.alloc.select(tid.0 as usize);
        env.eng.begin(&mut env.m, tid).expect("tx");
        if *insert {
            map.insert(
                &mut env.m,
                &mut env.eng,
                tid,
                &mut env.alloc,
                &key.to_le_bytes(),
                &[(i + 1) as u8; 32],
            )
            .expect("insert");
        } else {
            map.remove(
                &mut env.m,
                &mut env.eng,
                tid,
                &mut env.alloc,
                &key.to_le_bytes(),
            )
            .expect("remove");
        }
        env.eng.commit(&mut env.m, tid).expect("commit");
        env.m.note_progress(i as u64 + 1);
    }

    let log = env.log_region;
    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, Tid(0), log, THREADS);
        let map2 = PHashMap::open(&mut m2, Tid(0), map_region.base)
            .map_err(|e| format!("map open failed: {e:?}"))?;
        let mut model: HashMap<u64, [u8; 32]> = HashMap::new();
        for (i, (insert, key)) in plan_ops[..progress as usize].iter().enumerate() {
            if *insert {
                model.insert(*key, [(i + 1) as u8; 32]);
            } else {
                model.remove(key);
            }
        }
        let in_flight = plan_ops.get(progress as usize);
        for key in 0..CRASH_KEYSPACE {
            let got = map2.get(&mut m2, &mut eng2, Tid(0), &key.to_le_bytes());
            let want = model.get(&key).map(|v| v.to_vec());
            if got == want {
                continue;
            }
            let after = match in_flight {
                Some((insert, k)) if *k == key => insert.then(|| vec![(progress + 1) as u8; 32]),
                _ => {
                    return Err(format!(
                        "key {key}: recovered {got:?} != committed {want:?}"
                    ));
                }
            };
            if got != after {
                return Err(format!(
                    "key {key}: recovered {got:?}, neither old {want:?} nor in-flight {after:?}"
                ));
            }
        }
        Ok(())
    });
    let MicroEnv { m, .. } = env;
    crate::crashtest::harvest(m, total, oracle)
}

/// `ctree` without driver overhead (gem5-style, for Figures 6/10).
pub fn ctree_unpaced(ops: usize, seed: u64) -> AppRun {
    ctree_inner(ops, seed, false)
}

/// The `ctree` micro-benchmark: transactional inserts (and some
/// deletes) into a persistent crit-bit tree.
pub fn ctree(ops: usize, seed: u64) -> AppRun {
    ctree_inner(ops, seed, true)
}

pub(crate) fn ctree_inner(ops: usize, seed: u64, paced: bool) -> AppRun {
    let (mut env, mut plan) = build_env();
    let tree_region = plan.take(pmds::CRITBIT_REGION_BYTES);
    env.eng.begin(&mut env.m, Tid(0)).expect("setup tx");
    let tree = CritBitTree::create(&mut env.m, &mut env.eng, Tid(0), tree_region).expect("tree");
    env.eng.commit(&mut env.m, Tid(0)).expect("setup");
    let mut rng = SmallRng::seed_from_u64(seed);
    let keyspace = (ops * 2).max(64) as u64;

    env.m.trace_mut().set_enabled(true);
    for i in 0..ops {
        let tid = Tid((i % THREADS as usize) as u32);
        env.arena
            .work(&mut env.m, tid, if paced { 900 } else { 300 });
        // The benchmark driver's per-op loop overhead.
        if paced {
            env.m.advance_ns(11_000);
        }
        let key = rng.gen_range(0..keyspace).to_be_bytes();
        env.alloc.select(tid.0 as usize);
        env.eng.begin(&mut env.m, tid).expect("tx");
        if rng.gen_range(0..100) < 85 {
            tree.insert(
                &mut env.m,
                &mut env.eng,
                tid,
                &mut env.alloc,
                &key,
                i as u64,
            )
            .expect("insert");
        } else {
            tree.remove(&mut env.m, &mut env.eng, tid, &mut env.alloc, &key)
                .expect("remove");
        }
        env.eng.commit(&mut env.m, tid).expect("commit");
    }

    AppRun::collect("ctree", "4 clients, INSERT transactions", env.m)
}

/// `hashmap` without driver overhead (gem5-style, for Figures 6/10).
pub fn hashmap_unpaced(ops: usize, seed: u64) -> AppRun {
    hashmap_inner(ops, seed, false)
}

/// The `hashmap` micro-benchmark: transactional inserts (and some
/// deletes) into a persistent chained hash map.
pub fn hashmap(ops: usize, seed: u64) -> AppRun {
    hashmap_inner(ops, seed, true)
}

pub(crate) fn hashmap_inner(ops: usize, seed: u64, paced: bool) -> AppRun {
    let (mut env, mut plan) = build_env();
    let map_region = plan.take(PHashMap::region_bytes(512));
    env.eng.begin(&mut env.m, Tid(0)).expect("setup tx");
    let map = PHashMap::create(&mut env.m, &mut env.eng, Tid(0), map_region, 512).expect("map");
    env.eng.commit(&mut env.m, Tid(0)).expect("setup");
    let mut rng = SmallRng::seed_from_u64(seed);
    let keyspace = (ops * 2).max(64) as u64;

    env.m.trace_mut().set_enabled(true);
    for i in 0..ops {
        let tid = Tid((i % THREADS as usize) as u32);
        env.arena
            .work(&mut env.m, tid, if paced { 850 } else { 280 });
        if paced {
            env.m.advance_ns(6_500);
        }
        let key = rng.gen_range(0..keyspace).to_le_bytes();
        env.alloc.select(tid.0 as usize);
        env.eng.begin(&mut env.m, tid).expect("tx");
        if rng.gen_range(0..100) < 85 {
            map.insert(
                &mut env.m,
                &mut env.eng,
                tid,
                &mut env.alloc,
                &key,
                &[i as u8; 32],
            )
            .expect("insert");
        } else {
            map.remove(&mut env.m, &mut env.eng, tid, &mut env.alloc, &key)
                .expect("remove");
        }
        env.eng.commit(&mut env.m, tid).expect("commit");
    }

    AppRun::collect("hashmap", "4 clients, INSERT transactions", env.m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::analysis;

    #[test]
    fn ctree_transactions_in_figure3_band() {
        let run = ctree(300, 4);
        let epochs = analysis::split_epochs(&run.events);
        let median = analysis::tx_stats(&epochs).median().unwrap();
        assert!((5..=30).contains(&median), "ctree median {median}");
    }

    #[test]
    fn hashmap_transactions_in_figure3_band() {
        let run = hashmap(300, 4);
        let epochs = analysis::split_epochs(&run.events);
        let median = analysis::tx_stats(&epochs).median().unwrap();
        assert!((5..=30).contains(&median), "hashmap median {median}");
    }

    #[test]
    fn nvml_micros_are_singleton_heavy() {
        // Figure 4: library-based applications average ~75% singletons.
        for run in [ctree(300, 7), hashmap(300, 7)] {
            let epochs = analysis::split_epochs(&run.events);
            let hist = analysis::epoch_size_histogram(&epochs);
            assert!(
                hist.singleton_fraction() > 0.55,
                "{}: singleton fraction {}",
                run.name,
                hist.singleton_fraction()
            );
        }
    }

    #[test]
    fn nvml_micros_self_deps_high() {
        // Figure 5: ctree 79%, hashmap 81%.
        for run in [ctree(300, 9), hashmap(300, 9)] {
            let epochs = analysis::split_epochs(&run.events);
            let deps = analysis::dependencies(&epochs);
            assert!(
                deps.self_fraction() > 0.5,
                "{}: self-dep {}",
                run.name,
                deps.self_fraction()
            );
        }
    }
}
