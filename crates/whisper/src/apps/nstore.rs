//! N-store: a persistent-memory RDBMS (paper Section 3.2.1).
//!
//! "N-store is a RDBMS for PM inspired by the design of H-store. It
//! models the database as partitions of tables and each DB thread
//! executes transactions on a single partition independent of others.
//! ... Among the six back-end engines in N-store, we chose the
//! optimized write-ahead log (OPTWAL) engine. ... OPTWAL places tables
//! and indexes in these segments and uses an undo log to atomically
//! update them."
//!
//! Per the paper's Section 5.2, N-store's write amplification
//! (200–1400 %) comes "largely due to its PM allocator that uses a
//! buddy system" — so tuples here come from [`pmalloc::BuddyAlloc`],
//! whose split/merge cascades generate exactly that metadata traffic.
//! Each partition header (per-thread txid/count words) is rewritten by
//! every writing transaction, one of the self-dependency sources the
//! paper attributes to native applications.

use super::{AppRun, VolatileArena};
use crate::region::RegionPlanner;
use crate::workloads::{self, TpccTx, YcsbOp};
use memsim::{Machine, MachineConfig, PmWriter};
use pmalloc::{BuddyAlloc, PmAllocator};
use pmds::{PBTree, PHashMap};
use pmem::{Addr, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::{Category, Tid};
use pmtx::{TxMem, UndoTxEngine};
use std::collections::HashMap;

const THREADS: u32 = 4;
const FIELD_BYTES: usize = 10;
const FIELDS: usize = 10;
/// Tuple: key u64 + 10 fields × 10 B = 108, buddy rounds to 128.
const TUPLE_BYTES: u64 = 8 + (FIELDS * FIELD_BYTES) as u64;

pub(crate) struct NStore {
    pub(crate) eng: UndoTxEngine,
    pub(crate) alloc: BuddyAlloc,
    /// Primary index: key → tuple address.
    pub(crate) index: PHashMap,
    /// Ordered secondary index (OPTWAL "places tables and indexes in
    /// these segments" — a persistent B-tree, as in PMFS metadata).
    pub(crate) ordered: PBTree,
    /// Per-partition (per-thread) header: last txid + tuple count.
    pub(crate) partitions: Vec<Addr>,
    pub(crate) log_region: pmem::AddrRange,
    pub(crate) index_head: Addr,
}

impl NStore {
    pub(crate) fn build(m: &mut Machine) -> NStore {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        let log_region = plan.take(8 << 20);
        let heap_region = plan.take(512 << 20);
        let index_region = plan.take(PHashMap::region_bytes(1024));
        let part_region = plan.take(64 * THREADS as u64);

        let ordered_region = plan.take(pmds::BTREE_REGION_BYTES);
        let mut eng = UndoTxEngine::format(m, log_region, THREADS);
        let mut w = PmWriter::new(Tid(0));
        let mut alloc = BuddyAlloc::format(m, &mut w, heap_region);
        eng.begin(m, Tid(0)).expect("fresh engine");
        let index = PHashMap::create(m, &mut eng, Tid(0), index_region, 1024).expect("index");
        let ordered =
            PBTree::create(m, &mut eng, Tid(0), &mut alloc, ordered_region).expect("ordered index");
        eng.commit(m, Tid(0)).expect("setup");
        NStore {
            eng,
            alloc,
            index,
            ordered,
            partitions: (0..THREADS as u64)
                .map(|i| part_region.base + i * 64)
                .collect(),
            log_region,
            index_head: index_region.base,
        }
    }

    /// Stamp the partition header (txid, tuple count delta) — two
    /// same-line writes per writing transaction.
    fn stamp_partition(&mut self, m: &mut Machine, tid: Tid, delta: i64) {
        let hdr = self.partitions[tid.0 as usize];
        let txid = self.eng.tx_read_u64(m, tid, hdr);
        self.eng
            .tx_write_u64(m, tid, hdr, txid + 1, Category::AppMeta)
            .expect("partition txid");
        let count = self.eng.tx_read_u64(m, tid, hdr + 8);
        self.eng
            .tx_write_u64(
                m,
                tid,
                hdr + 8,
                count.checked_add_signed(delta).expect("count"),
                Category::AppMeta,
            )
            .expect("partition count");
    }

    /// Insert a tuple: buddy allocation (split cascade), field writes,
    /// index insert. Caller holds the transaction.
    fn insert_tuple(&mut self, m: &mut Machine, tid: Tid, key: u64, fill: u8) -> Addr {
        let mut w = PmWriter::new(tid);
        let tuple = self.alloc.alloc(m, &mut w, TUPLE_BYTES).expect("heap");
        self.eng
            .tx_write_u64(m, tid, tuple, key, Category::UserData)
            .expect("key");
        // set_varchar-style per-field writes (Figure 2's PM_STRCPY).
        for f in 0..FIELDS {
            self.eng
                .tx_write(
                    m,
                    tid,
                    tuple + 8 + (f * FIELD_BYTES) as u64,
                    &[fill; FIELD_BYTES],
                    Category::UserData,
                )
                .expect("field");
        }
        self.index
            .insert(
                m,
                &mut self.eng,
                tid,
                &mut self.alloc,
                &key.to_le_bytes(),
                &tuple.to_le_bytes(),
            )
            .expect("index");
        self.ordered
            .insert(m, &mut self.eng, tid, &mut self.alloc, key, tuple)
            .expect("ordered index");
        tuple
    }

    /// Ordered scan over the secondary index (TPC-C order-status style).
    pub(crate) fn scan(&mut self, m: &mut Machine, tid: Tid, lo: u64, hi: u64) -> Vec<(u64, Addr)> {
        self.ordered.range(m, tid, lo, hi)
    }

    fn find_tuple(&mut self, m: &mut Machine, tid: Tid, key: u64) -> Option<Addr> {
        self.index
            .get(m, &mut self.eng, tid, &key.to_le_bytes())
            .map(|v| u64::from_le_bytes(v.try_into().expect("addr")))
    }

    fn update_fields(&mut self, m: &mut Machine, tid: Tid, tuple: Addr, fields: u8, fill: u8) {
        for f in 0..(fields as usize).min(FIELDS) {
            self.eng
                .tx_write(
                    m,
                    tid,
                    tuple + 8 + (f * FIELD_BYTES) as u64,
                    &[fill; FIELD_BYTES],
                    Category::UserData,
                )
                .expect("field");
        }
    }
}

/// One action inside a crash-campaign transaction.
#[derive(Debug, Clone, Copy)]
enum CrashAction {
    Insert { key: u64, fill: u8 },
    Update { key: u64, fields: u8, fill: u8 },
}

const CRASH_PRELOAD: u64 = 24;

/// Crash workload for the YCSB-like row (see [`crate::crashtest`]):
/// single-action transactions — 70 % field updates on preloaded keys,
/// 30 % fresh-key inserts.
pub(crate) fn crash_run_ycsb(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    let mut rng = SmallRng::seed_from_u64(0x5ca1e);
    let mut next_key = CRASH_PRELOAD;
    let txs: Vec<Vec<CrashAction>> = (0..ops)
        .map(|i| {
            if rng.gen_bool(0.3) {
                let key = next_key;
                next_key += 1;
                vec![CrashAction::Insert { key, fill: i as u8 }]
            } else {
                vec![CrashAction::Update {
                    key: rng.gen_range(0..CRASH_PRELOAD),
                    fields: rng.gen_range(1..=FIELDS) as u8,
                    fill: i as u8,
                }]
            }
        })
        .collect();
    crash_run_inner(txs, points)
}

/// Crash workload for the TPC-C-like row: multi-action transactions
/// (order + order-line inserts + a stock update) alternating with
/// payment-style updates — the all-or-nothing check spans every action
/// of the in-flight transaction.
pub(crate) fn crash_run_tpcc(txs: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    let mut rng = SmallRng::seed_from_u64(0x79cc);
    let mut next_order = 1_000u64;
    let plan: Vec<Vec<CrashAction>> = (0..txs)
        .map(|i| {
            if i % 2 == 0 {
                let order = next_order;
                next_order += 2;
                vec![
                    CrashAction::Insert {
                        key: order,
                        fill: i as u8,
                    },
                    CrashAction::Insert {
                        key: order + 1,
                        fill: i as u8,
                    },
                    CrashAction::Update {
                        key: rng.gen_range(0..CRASH_PRELOAD),
                        fields: 2,
                        fill: i as u8,
                    },
                ]
            } else {
                vec![CrashAction::Update {
                    key: rng.gen_range(0..CRASH_PRELOAD),
                    fields: 3,
                    fill: i as u8,
                }]
            }
        })
        .collect();
    crash_run_inner(plan, points)
}

/// Replay a transaction against the volatile row model (key → per-field
/// fill bytes).
fn apply_model(model: &mut HashMap<u64, [u8; FIELDS]>, tx: &[CrashAction]) {
    for a in tx {
        match *a {
            CrashAction::Insert { key, fill } => {
                model.insert(key, [fill; FIELDS]);
            }
            CrashAction::Update { key, fields, fill } => {
                if let Some(row) = model.get_mut(&key) {
                    for f in row.iter_mut().take((fields as usize).min(FIELDS)) {
                        *f = fill;
                    }
                }
            }
        }
    }
}

/// Shared crash-campaign runner: preload, execute the transaction plan
/// with the plan armed, and return an oracle that requires the
/// recovered database to equal the committed-prefix model — with the
/// in-flight transaction applied in full or not at all.
fn crash_run_inner(txs: Vec<Vec<CrashAction>>, points: &[u64]) -> crate::crashtest::CrashRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    m.trace_mut().set_enabled(false);
    let mut db = NStore::build(&mut m);
    for key in 0..CRASH_PRELOAD {
        let tid = Tid((key % THREADS as u64) as u32);
        db.eng.begin(&mut m, tid).expect("load tx");
        db.insert_tuple(&mut m, tid, key, 0xAB);
        db.eng.commit(&mut m, tid).expect("load commit");
    }

    crate::crashtest::arm(&mut m, points);
    for (i, tx) in txs.iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        db.eng.begin(&mut m, tid).expect("tx");
        let mut inserted = 0i64;
        for a in tx {
            match *a {
                CrashAction::Insert { key, fill } => {
                    db.insert_tuple(&mut m, tid, key, fill);
                    inserted += 1;
                }
                CrashAction::Update { key, fields, fill } => {
                    let t = db.find_tuple(&mut m, tid, key).expect("key preloaded");
                    db.update_fields(&mut m, tid, t, fields, fill);
                }
            }
        }
        db.stamp_partition(&mut m, tid, inserted);
        db.eng.commit(&mut m, tid).expect("commit");
        m.note_progress(i as u64 + 1);
    }

    let mut universe: Vec<u64> = (0..CRASH_PRELOAD).collect();
    universe.extend(txs.iter().flatten().filter_map(|a| match a {
        CrashAction::Insert { key, .. } => Some(*key),
        CrashAction::Update { .. } => None,
    }));
    let log = db.log_region;
    let index_head = db.index_head;
    let ordered = db.ordered;
    let ops = txs.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, Tid(0), log, THREADS);
        let index2 = PHashMap::open(&mut m2, Tid(0), index_head)
            .map_err(|e| format!("index open failed: {e:?}"))?;
        ordered
            .check_invariants(&mut m2, Tid(0))
            .map_err(|e| format!("ordered index invariants: {e}"))?;

        let mut before: HashMap<u64, [u8; FIELDS]> =
            (0..CRASH_PRELOAD).map(|k| (k, [0xAB; FIELDS])).collect();
        for tx in &txs[..progress as usize] {
            apply_model(&mut before, tx);
        }
        let mut after = before.clone();
        if let Some(tx) = txs.get(progress as usize) {
            apply_model(&mut after, tx);
        }

        let check = |m2: &mut Machine,
                     eng2: &mut UndoTxEngine,
                     want: &HashMap<u64, [u8; FIELDS]>|
         -> Result<(), String> {
            for key in &universe {
                let got = index2.get(m2, eng2, Tid(0), &key.to_le_bytes());
                match (got, want.get(key)) {
                    (None, None) => {}
                    (Some(v), Some(row)) => {
                        let t = u64::from_le_bytes(
                            v.try_into()
                                .map_err(|_| format!("key {key}: bad index value"))?,
                        );
                        if m2.load_u64(Tid(0), t) != *key {
                            return Err(format!("key {key}: tuple key field mismatch"));
                        }
                        for (f, fill) in row.iter().enumerate() {
                            let bytes =
                                m2.load_vec(Tid(0), t + 8 + (f * FIELD_BYTES) as u64, FIELD_BYTES);
                            if bytes != vec![*fill; FIELD_BYTES] {
                                return Err(format!(
                                    "key {key} field {f}: {bytes:?} != fill {fill:#x}"
                                ));
                            }
                        }
                        if ordered.get(m2, eng2, Tid(0), *key) != Some(t) {
                            return Err(format!("key {key}: ordered index disagrees"));
                        }
                    }
                    (g, w) => {
                        return Err(format!(
                            "key {key}: present={} but committed present={}",
                            g.is_some(),
                            w.is_some()
                        ))
                    }
                }
            }
            Ok(())
        };
        if check(&mut m2, &mut eng2, &before).is_ok() {
            return Ok(());
        }
        check(&mut m2, &mut eng2, &after).map_err(|e| {
            format!("state matches neither the committed prefix nor prefix+in-flight: {e}")
        })
    });
    crate::crashtest::harvest(m, ops, oracle)
}

/// YCSB without driver overhead (gem5-style, for Figures 6 and 10).
pub fn run_ycsb_unpaced(ops: usize, seed: u64) -> AppRun {
    run_ycsb_inner(ops, seed, false)
}

/// Run the YCSB-like workload (Table 1: 4 clients, 80 % writes).
pub fn run_ycsb(ops: usize, seed: u64) -> AppRun {
    run_ycsb_inner(ops, seed, true)
}

pub(crate) fn run_ycsb_inner(ops: usize, seed: u64, paced: bool) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // Build + load are untraced: the measured interval is steady state.
    m.trace_mut().set_enabled(false);
    let mut db = NStore::build(&mut m);
    let mut arena = VolatileArena::new(&mut m, 1 << 20);
    let n_keys = ops.clamp(64, 40_000);
    for key in 0..n_keys as u64 {
        let tid = Tid((key % THREADS as u64) as u32);
        db.eng.begin(&mut m, tid).expect("load tx");
        db.insert_tuple(&mut m, tid, key, 0xAB);
        db.eng.commit(&mut m, tid).expect("load commit");
    }
    m.trace_mut().set_enabled(true);

    for (i, op) in workloads::ycsb(n_keys, ops, 80, seed)
        .into_iter()
        .enumerate()
    {
        let tid = Tid((i % THREADS as usize) as u32);
        arena.work(&mut m, tid, if paced { 800 } else { 40 });
        match op {
            YcsbOp::Read { key } => {
                if let Some(t) = db.find_tuple(&mut m, tid, key) {
                    let _ = m.load_vec(tid, t, TUPLE_BYTES as usize);
                }
            }
            YcsbOp::Update { key, fields } => {
                if let Some(t) = db.find_tuple(&mut m, tid, key) {
                    db.eng.begin(&mut m, tid).expect("tx");
                    db.update_fields(&mut m, tid, t, fields, i as u8);
                    db.stamp_partition(&mut m, tid, 0);
                    db.eng.commit(&mut m, tid).expect("commit");
                }
            }
            YcsbOp::Insert { key } => {
                db.eng.begin(&mut m, tid).expect("tx");
                db.insert_tuple(&mut m, tid, key, i as u8);
                db.stamp_partition(&mut m, tid, 1);
                db.eng.commit(&mut m, tid).expect("commit");
            }
        }
    }

    AppRun::collect("nstore-ycsb", "YCSB like / 4 clients, 80% writes", m)
}

/// Run the TPC-C-like workload (Table 1: 4 clients, 40 % writes).
pub fn run_tpcc(txs: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // Build + load are untraced: the measured interval is steady state.
    m.trace_mut().set_enabled(false);
    let mut db = NStore::build(&mut m);
    let mut arena = VolatileArena::new(&mut m, 1 << 20);
    let n_customers = 200;
    let n_items = 400;
    for key in 0..(n_customers + n_items) as u64 {
        let key = if key < n_customers as u64 {
            key
        } else {
            1_000_000 + key
        };
        let tid = Tid((key % THREADS as u64) as u32);
        db.eng.begin(&mut m, tid).expect("load tx");
        db.insert_tuple(&mut m, tid, key, 1);
        db.eng.commit(&mut m, tid).expect("load commit");
    }
    m.trace_mut().set_enabled(true);

    let mut next_order: u64 = 2_000_000;
    for (i, tx) in workloads::tpcc(n_customers, n_items, txs, seed)
        .into_iter()
        .enumerate()
    {
        let tid = Tid((i % THREADS as usize) as u32);
        arena.work(&mut m, tid, 2600);
        match tx {
            TpccTx::NewOrder { customer, items } => {
                db.eng.begin(&mut m, tid).expect("tx");
                // Order row + one order-line row per item + stock update.
                db.insert_tuple(&mut m, tid, next_order, customer as u8);
                next_order += 1;
                for item in &items {
                    db.insert_tuple(&mut m, tid, next_order, *item as u8);
                    next_order += 1;
                    if let Some(stock) =
                        db.find_tuple(&mut m, tid, 1_000_000 + n_customers as u64 + item)
                    {
                        db.update_fields(&mut m, tid, stock, 2, 2);
                    }
                }
                db.stamp_partition(&mut m, tid, 1 + items.len() as i64);
                db.eng.commit(&mut m, tid).expect("commit");
            }
            TpccTx::Payment { customer, amount } => {
                db.eng.begin(&mut m, tid).expect("tx");
                if let Some(c) = db.find_tuple(&mut m, tid, customer) {
                    db.update_fields(&mut m, tid, c, 3, amount as u8);
                }
                db.stamp_partition(&mut m, tid, 0);
                db.eng.commit(&mut m, tid).expect("commit");
            }
            TpccTx::OrderStatus { customer } => {
                if let Some(c) = db.find_tuple(&mut m, tid, customer) {
                    let _ = m.load_vec(tid, c, TUPLE_BYTES as usize);
                }
                // Scan the customer's recent orders via the ordered index.
                let hits = db.scan(&mut m, tid, 2_000_000, 2_000_000 + 64);
                for (_, t) in hits.iter().take(4) {
                    let _ = m.load_vec(tid, *t, TUPLE_BYTES as usize);
                }
                arena.work(&mut m, tid, 40);
            }
        }
    }

    AppRun::collect("nstore-tpcc", "TPC-C like / 4 clients, 40% writes", m)
}

/// The OPTSP (optimized shadow-paging) engine variant: updates write a
/// complete new tuple version, make it durable, then atomically swing
/// an 8-byte index pointer — "atomic transactions may not be needed for
/// some data structures, such as ... copy-on-write trees" (Section 2).
/// No undo log, no per-field records: a whole transaction is three
/// epochs (version + pointer swing + reclamation), which is why the
/// paper's engine comparison motivates OPTWAL only for workloads that
/// need in-place mutation.
pub fn run_ycsb_sp(ops: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    m.trace_mut().set_enabled(false);
    let mut plan = RegionPlanner::new(m.config().map.pm);
    let heap_region = plan.take(512 << 20);
    let n_keys = ops.clamp(64, 40_000);
    // Direct pointer-array index, H-store partition style.
    let index = plan.take(n_keys as u64 * 8);
    let mut w = PmWriter::new(Tid(0));
    let mut alloc = BuddyAlloc::format(&mut m, &mut w, heap_region);
    let mut arena = VolatileArena::new(&mut m, 1 << 20);

    // Load: one version per key.
    let write_version = |m: &mut Machine, alloc: &mut BuddyAlloc, tid: Tid, key: u64, fill: u8| {
        let mut w = PmWriter::new(tid);
        let tuple = alloc.alloc(m, &mut w, TUPLE_BYTES).expect("heap");
        w.write_u64(m, tuple, key, Category::UserData);
        w.write(
            m,
            tuple + 8,
            &[fill; FIELDS * FIELD_BYTES],
            Category::UserData,
        );
        // The whole version becomes durable before it is published.
        w.durability_fence(m);
        // Atomic 8-byte pointer swing publishes it.
        let slot = index.base + key * 8;
        let old = m.load_u64(tid, slot);
        w.write_u64(m, slot, tuple, Category::AppMeta);
        w.durability_fence(m);
        if old != 0 {
            // Reclaim the previous version (crash here only leaks).
            alloc.free(m, &mut w, old).expect("old version");
        }
        tuple
    };
    for key in 0..n_keys as u64 {
        write_version(
            &mut m,
            &mut alloc,
            Tid((key % THREADS as u64) as u32),
            key,
            0xAB,
        );
    }
    m.trace_mut().set_enabled(true);

    for (i, op) in workloads::ycsb(n_keys, ops, 80, seed)
        .into_iter()
        .enumerate()
    {
        let tid = Tid((i % THREADS as usize) as u32);
        arena.work(&mut m, tid, 800);
        match op {
            YcsbOp::Read { key } => {
                let t = m.load_u64(tid, index.base + key * 8);
                if t != 0 {
                    let _ = m.load_vec(tid, t, TUPLE_BYTES as usize);
                }
            }
            YcsbOp::Update { key, .. } => {
                let id = m.fresh_tx_id(tid);
                m.tx_begin(tid, id);
                write_version(&mut m, &mut alloc, tid, key, i as u8);
                m.tx_end(tid, id);
            }
            YcsbOp::Insert { key } => {
                let id = m.fresh_tx_id(tid);
                m.tx_begin(tid, id);
                write_version(&mut m, &mut alloc, tid, key % n_keys as u64, i as u8);
                m.tx_end(tid, id);
            }
        }
    }

    AppRun::collect(
        "nstore-ycsb-sp",
        "YCSB like / OPTSP shadow-paging engine",
        m,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CrashSpec;
    use pmtrace::analysis;

    #[test]
    fn ycsb_runs_and_is_write_heavy() {
        let run = run_ycsb(300, 5);
        let epochs = analysis::split_epochs(&run.events);
        assert!(!epochs.is_empty());
        let stats = analysis::tx_stats(&epochs);
        let median = stats.median().unwrap();
        assert!(
            (10..=80).contains(&median),
            "YCSB median {median} outside the paper's 5-50 band neighborhood"
        );
    }

    #[test]
    fn tpcc_transactions_are_much_larger() {
        let y = run_ycsb(200, 5);
        let t = run_tpcc(100, 5);
        let ym = analysis::tx_stats(&analysis::split_epochs(&y.events))
            .median()
            .unwrap();
        let tm = analysis::tx_stats(&analysis::split_epochs(&t.events))
            .median()
            .unwrap();
        assert!(tm > ym * 2, "TPC-C median {tm} vs YCSB {ym}");
        assert!(tm > 100, "TPC-C well over a hundred epochs: {tm}");
    }

    #[test]
    fn shadow_paging_is_far_cheaper_per_tx() {
        // The copy-on-write engine needs no log: a handful of epochs
        // per transaction vs OPTWAL's dozens.
        let wal = run_ycsb(300, 5);
        let sp = run_ycsb_sp(300, 5);
        let med = |r: &AppRun| {
            analysis::tx_stats(&analysis::split_epochs(&r.events))
                .median()
                .unwrap()
        };
        assert!(
            med(&sp) * 3 <= med(&wal),
            "OPTSP median {} vs OPTWAL {}",
            med(&sp),
            med(&wal)
        );
        // And its amplification is mostly allocator metadata.
        let amp = analysis::amplification(&analysis::split_epochs(&sp.events));
        assert!(
            amp.amplification().unwrap() < 2.0,
            "SP amplification {:?}",
            amp.amplification()
        );
    }

    #[test]
    fn shadow_paging_versions_are_published_atomically() {
        // Reads through the pointer array always see a complete tuple:
        // the version is durable before the swing.
        let run = run_ycsb_sp(200, 9);
        assert!(!run.events.is_empty());
    }

    #[test]
    fn buddy_allocator_amplifies_writes() {
        let run = run_ycsb(300, 6);
        let epochs = analysis::split_epochs(&run.events);
        let amp = analysis::amplification(&epochs);
        let a = amp.amplification().unwrap();
        assert!(a > 1.0, "N-store amplification {a} should exceed 100%");
    }

    #[test]
    fn committed_data_survives_crash() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut db = NStore::build(&mut m);
        let tid = Tid(0);
        db.eng.begin(&mut m, tid).unwrap();
        let tuple = db.insert_tuple(&mut m, tid, 42, 0xCD);
        db.eng.commit(&mut m, tid).unwrap();
        // Uncommitted update, then crash.
        db.eng.begin(&mut m, tid).unwrap();
        db.update_fields(&mut m, tid, tuple, 10, 0xEE);
        let log = db.log_region;
        let index_head = db.index_head;
        let img = m.crash(CrashSpec::Adversarial { seed: 5 });
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, Tid(0), log, THREADS);
        let index2 = PHashMap::open(&mut m2, Tid(0), index_head).unwrap();
        let taddr = index2
            .get(&mut m2, &mut eng2, Tid(0), &42u64.to_le_bytes())
            .expect("tuple indexed");
        let taddr = u64::from_le_bytes(taddr.try_into().unwrap());
        let field = m2.load_vec(Tid(0), taddr + 8, FIELD_BYTES);
        assert_eq!(
            field,
            vec![0xCD; FIELD_BYTES],
            "uncommitted update rolled back"
        );
    }
}
