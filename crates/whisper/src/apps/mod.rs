//! The ten WHISPER applications (paper Section 3).
//!
//! Every application follows the same contract: build its persistent
//! state on a fresh instrumented [`memsim::Machine`], drive its Table 1
//! workload with logical clients interleaved onto the machine's four
//! hardware threads, and return an [`AppRun`] carrying the trace,
//! access counters, and simulated duration — the raw material for every
//! table and figure.
//!
//! Each module also contains crash-recovery tests: the paper's headline
//! requirement is that "WHISPER includes crash-recoverable
//! applications, which means that they persist all information in PM
//! that is necessary to recover after a crash."

pub mod echo;
pub mod fsapps;
pub mod memcached;
pub mod micro;
pub mod nstore;
pub mod redis;
pub mod vacation;

pub use fsapps::{exim, mysql, nfs};
pub use micro::{ctree, hashmap};

use memsim::{Machine, MachineConfig, MemStats};
use pmem::Addr;
use pmtrace::{Category, Event, Tid};

/// Table 1 worker-thread count for the scheduler-interleaved apps
/// (redis, memcached, vacation); `--threads` overrides it per run.
pub(crate) const WORKERS: u32 = crate::suite::DEFAULT_WORKER_THREADS;

/// An `asplos17` machine with at least `workers` hardware threads, so
/// every scheduler-picked [`Tid`] is in range.
pub(crate) fn machine_for(workers: u32) -> Machine {
    let mut cfg = MachineConfig::asplos17();
    cfg.threads = cfg.threads.max(workers);
    Machine::new(cfg)
}

/// The outcome of one application run: everything the analysis needs.
#[derive(Debug)]
pub struct AppRun {
    /// Application name (Table 1, first column).
    pub name: String,
    /// Workload description (Table 1, third column).
    pub workload: String,
    /// The recorded PM-operation trace.
    pub events: Vec<Event>,
    /// DRAM/PM access counters (Figure 6).
    pub stats: MemStats,
    /// Simulated wall-clock duration (denominator of Table 1).
    pub duration_ns: u64,
    /// Hardware threads used.
    pub threads: u32,
}

impl AppRun {
    /// Finish a run: harvest the machine's trace, counters, and clock.
    pub(crate) fn collect(name: &str, workload: &str, mut machine: Machine) -> AppRun {
        let stats = machine.stats();
        let duration_ns = machine.now_ns();
        let threads = machine.config().threads;
        let events = std::mem::take(machine.trace_mut()).into_events();
        AppRun {
            name: name.to_string(),
            workload: workload.to_string(),
            events,
            stats,
            duration_ns,
            threads,
        }
    }
}

/// A DRAM scratch region over which applications perform their
/// *volatile* work — request parsing, volatile indexes, client
/// buffers. The paper's Figure 6 point is that "the majority (>96%) of
/// accesses are to DRAM" because "applications optimize by placing
/// transient data structures in volatile memory"; each app models its
/// characteristic volatile footprint by touching this arena a tuned
/// number of times per operation.
#[derive(Debug)]
pub(crate) struct VolatileArena {
    base: Addr,
    len: u64,
    cursor: u64,
}

impl VolatileArena {
    pub(crate) fn new(m: &mut Machine, bytes: u64) -> VolatileArena {
        VolatileArena {
            base: m.alloc_dram(bytes, 64),
            len: bytes,
            cursor: 0,
        }
    }

    /// Perform `accesses` DRAM operations: a handful of real 8-byte
    /// loads/stores for functional realism, the rest accounted through
    /// the machine's bulk path (identical counters and clock, without
    /// simulating each access).
    pub(crate) fn work(&mut self, m: &mut Machine, tid: Tid, accesses: u64) {
        let real = accesses.min(4);
        for i in 0..real {
            let at = self.base + (self.cursor % (self.len - 8));
            if i % 3 == 2 {
                m.store_u64(tid, at, i, Category::UserData);
            } else {
                let _ = m.load_u64(tid, at);
            }
            self.cursor = self.cursor.wrapping_add(72);
        }
        m.dram_bulk(tid, accesses - real);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;

    #[test]
    fn volatile_arena_counts_only_dram() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut a = VolatileArena::new(&mut m, 4096);
        a.work(&mut m, Tid(0), 100);
        assert_eq!(m.stats().dram_accesses, 100);
        assert_eq!(m.stats().pm_total(), 0);
        assert!(m.trace().is_empty(), "volatile work never traced");
    }
}
