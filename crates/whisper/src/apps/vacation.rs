//! Vacation: the STAMP travel-reservation OLTP system, made persistent
//! with Mnemosyne-style transactions (Section 3.2.2).
//!
//! "Vacation is an OLTP system that emulates a travel reservation
//! system. It implements a key-value store using red black trees and
//! linked lists to track customers and their reservations. Several
//! client threads perform a number of transactions to make reservations
//! and cancellations. ... We modified Vacation to allocate red black
//! trees and linked lists in PM segments using Mnemosyne."
//!
//! The "several client threads" are interleaved per-transaction by a
//! seeded [`memsim::Scheduler`] over one shared machine. Vacation's
//! "global counters of the number of cars/flights/rooms ... updated in
//! transactions" are the paper's canonical cross-thread dependency
//! source; clients here update them periodically (STAMP batches such
//! statistics), keeping cross-deps present but rare, as in Figure 5.
//! Completed reservations are additionally appended to a shared
//! [`pmds::DurableQueue`] journal (STAMP's batched statistics stream,
//! made durable), whose per-client producer slots give the recovery
//! oracle a total order over committed reservations. The workload is
//! query-heavy, so PM is a tiny share of traffic (Figure 6: 0.36 %).

use super::{machine_for, AppRun, VolatileArena, WORKERS};
use crate::region::RegionPlanner;
use memsim::{Machine, MachineConfig, PmWriter, Scheduler};
use pmalloc::{PmAllocator, ShardedSlab};
use pmds::{DurableQueue, PRbTree};
use pmem::{Addr, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::{Category, Tid};
use pmtx::{RedoTxEngine, TxMem};
use std::collections::HashMap;

/// Reservation list node: next u64, resource u64, count u64.
const RNODE_BYTES: u64 = 24;

pub(crate) struct Vacation {
    pub(crate) eng: RedoTxEngine,
    pub(crate) alloc: ShardedSlab,
    /// Resource tables: cars, flights, rooms (item → seats available).
    pub(crate) tables: [PRbTree; 3],
    /// Customer reservation-list heads (customer id → list head ptr).
    pub(crate) customers: PRbTree,
    /// Global counters of cars/flights/rooms, one line each.
    pub(crate) counters: [Addr; 3],
    /// The shared committed-reservation journal.
    pub(crate) journal: DurableQueue,
    pub(crate) journal_head: Addr,
    pub(crate) log_region: pmem::AddrRange,
    /// One line per worker for the crash-run fence prologue.
    pub(crate) scratch: Addr,
    /// Monotone sequence tags for journal appends.
    seq: u64,
}

impl Vacation {
    pub(crate) fn build(m: &mut Machine, n_items: u64, workers: u32, ops: usize) -> Vacation {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        let log_region = plan.take(8 << 20);
        let mut eng = RedoTxEngine::format(m, log_region, workers);
        let mut w = PmWriter::new(Tid(0));
        // Mnemosyne's allocator keeps per-thread arenas.
        let heap = plan.take(ShardedSlab::region_bytes(64 << 20, workers as usize));
        let mut alloc = ShardedSlab::format(m, &mut w, heap.base, 64 << 20, workers as usize);
        eng.begin(m, Tid(0)).expect("setup tx");
        let tables = [(); 3].map(|_| {
            PRbTree::create(
                m,
                &mut eng,
                Tid(0),
                &mut alloc,
                plan.take(pmds::RBTREE_REGION_BYTES),
            )
            .expect("table")
        });
        let customers = PRbTree::create(
            m,
            &mut eng,
            Tid(0),
            &mut alloc,
            plan.take(pmds::RBTREE_REGION_BYTES),
        )
        .expect("customers");
        eng.commit(m, Tid(0)).expect("setup");
        let counter_region = plan.take(3 * 64);
        let counters = [0u64, 1, 2].map(|i| counter_region.base + i * 64);
        let journal_region = plan.take(DurableQueue::region_bytes(workers, ops as u64 + 64));
        let journal = DurableQueue::create(m, Tid(0), journal_region, workers, ops as u64 + 64)
            .expect("journal");
        let scratch = plan.take(u64::from(workers) * 64).base;
        // Populate resources (untraced load phase).
        m.trace_mut().set_enabled(false);
        for table in &tables {
            for item in 0..n_items {
                eng.begin(m, Tid(0)).expect("load tx");
                table
                    .insert(m, &mut eng, Tid(0), &mut alloc, item, 100)
                    .expect("load");
                eng.commit(m, Tid(0)).expect("load");
            }
        }
        m.trace_mut().set_enabled(true);
        Vacation {
            eng,
            alloc,
            tables,
            customers,
            counters,
            journal,
            journal_head: journal_region.base,
            log_region,
            scratch,
            seq: 0,
        }
    }

    /// Reserve one unit of `item` in table `t` for `customer`. Returns
    /// whether a seat was available (and the reservation made).
    fn reserve(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        t: usize,
        item: u64,
        customer: u64,
        update_counter: bool,
    ) -> bool {
        self.alloc.select(tid.0 as usize);
        self.eng.begin(m, tid).expect("tx");
        let mut reserved = false;
        if let Some(avail) = self.tables[t].get(m, &mut self.eng, tid, item) {
            if avail > 0 {
                reserved = true;
                self.tables[t]
                    .insert(m, &mut self.eng, tid, &mut self.alloc, item, avail - 1)
                    .expect("update avail");
                // Prepend to the customer's reservation linked list.
                let head = self
                    .customers
                    .get(m, &mut self.eng, tid, customer)
                    .unwrap_or(0);
                let mut w = PmWriter::new(tid);
                let node = self.alloc.alloc(m, &mut w, RNODE_BYTES).expect("heap");
                self.eng
                    .tx_write_u64(m, tid, node, head, Category::UserData)
                    .expect("node");
                self.eng
                    .tx_write_u64(
                        m,
                        tid,
                        node + 8,
                        (t as u64) << 32 | item,
                        Category::UserData,
                    )
                    .expect("node");
                self.eng
                    .tx_write_u64(m, tid, node + 16, 1, Category::UserData)
                    .expect("node");
                self.customers
                    .insert(m, &mut self.eng, tid, &mut self.alloc, customer, node)
                    .expect("customer");
                if update_counter {
                    let c = self.eng.read_u64(m, tid, self.counters[t]);
                    self.eng
                        .write_u64(m, tid, self.counters[t], c + 1, Category::AppMeta)
                        .expect("counter");
                }
            }
        }
        self.eng.commit(m, tid).expect("commit");
        // Journal the completed reservation outside the transaction
        // (STAMP batches its statistics after the critical section).
        if reserved {
            self.seq += 1;
            let mut payload = [0u8; 16];
            payload[0..8].copy_from_slice(&((t as u64) << 32 | item).to_le_bytes());
            payload[8..16].copy_from_slice(&customer.to_le_bytes());
            self.journal
                .enqueue(m, tid, tid.0, self.seq, &payload)
                .expect("journal");
        }
        reserved
    }

    /// Update the price/availability of an item (the common small tx).
    fn update_price(&mut self, m: &mut Machine, tid: Tid, t: usize, item: u64, price: u64) {
        self.alloc.select(tid.0 as usize);
        self.eng.begin(m, tid).expect("tx");
        if self.tables[t].get(m, &mut self.eng, tid, item).is_some() {
            self.tables[t]
                .insert(m, &mut self.eng, tid, &mut self.alloc, item, price)
                .expect("price");
        }
        self.eng.commit(m, tid).expect("commit");
    }

    /// Read-only customer query: walk the reservation list.
    fn query_customer(&mut self, m: &mut Machine, tid: Tid, customer: u64) -> u64 {
        let mut n = 0;
        if let Some(mut node) = self.customers.get(m, &mut self.eng, tid, customer) {
            while node != 0 && n < 64 {
                n += 1;
                node = m.load_u64(tid, node);
            }
        }
        n
    }
}

/// One crash-campaign operation.
#[derive(Debug, Clone, Copy)]
enum VOp {
    Price {
        t: usize,
        item: u64,
        price: u64,
    },
    Reserve {
        t: usize,
        item: u64,
        customer: u64,
        update_counter: bool,
    },
}

/// The volatile mirror of Vacation's persistent state the oracle
/// replays committed operations into.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VModel {
    /// Per table, per item: seats available (items dense 0..CRASH_ITEMS).
    avail: [Vec<u64>; 3],
    /// Per customer: reservation resource words, newest first.
    cust: HashMap<u64, Vec<u64>>,
    /// The three global counters.
    counters: [u64; 3],
    /// The journal: (seq, resource word, customer), append order.
    journal: Vec<(u64, u64, u64)>,
}

const CRASH_ITEMS: u64 = 12;
const CRASH_CUSTOMERS: u64 = 8;

fn apply_vmodel(model: &mut VModel, op: &VOp) {
    match *op {
        VOp::Price { t, item, price } => model.avail[t][item as usize] = price,
        VOp::Reserve {
            t,
            item,
            customer,
            update_counter,
        } => {
            if model.avail[t][item as usize] > 0 {
                model.avail[t][item as usize] -= 1;
                model
                    .cust
                    .entry(customer)
                    .or_default()
                    .insert(0, (t as u64) << 32 | item);
                if update_counter {
                    model.counters[t] += 1;
                }
                let seq = model.journal.len() as u64 + 1;
                model.journal.push((seq, (t as u64) << 32 | item, customer));
            }
        }
    }
}

/// Crash workload + oracle (see [`crate::crashtest`]): alternating
/// price updates and reservations over a small inventory, the clients
/// interleaved by the seeded scheduler. The oracle recovers the redo
/// engine and the journal queue, checks red-black invariants on all
/// four trees, and requires tables, reservation lists, global counters,
/// and the journal to match the committed-operation model — with the
/// in-flight operation applied in full, not at all, or stopped at its
/// transaction/journal boundary.
pub(crate) fn crash_run(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    let workers = WORKERS;
    let mut m = machine_for(workers);
    m.trace_mut().set_enabled(false);
    let mut v = Vacation::build(&mut m, CRASH_ITEMS, workers, ops);
    m.trace_mut().set_enabled(false);
    let mut sched = Scheduler::new(workers, 0x7ac4);
    let schedule: Vec<Tid> = (0..ops)
        .map(|_| sched.next().expect("workers live"))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x7ac4);
    let ops_plan: Vec<VOp> = (0..ops)
        .map(|i| {
            let t = rng.gen_range(0..3);
            let item = rng.gen_range(0..CRASH_ITEMS);
            if i % 2 == 0 {
                VOp::Price {
                    t,
                    item,
                    price: 200 + i as u64,
                }
            } else {
                VOp::Reserve {
                    t,
                    item,
                    customer: rng.gen_range(0..CRASH_CUSTOMERS),
                    update_counter: i % 8 == 1,
                }
            }
        })
        .collect();

    crate::crashtest::arm(&mut m, points);
    // Fence prologue: see `apps::redis::crash_run` — the HB crossval
    // proof needs every traced thread to fence once before it can
    // prove anything.
    for wk in 0..workers {
        let tid = Tid(wk);
        let mut w = PmWriter::new(tid);
        w.write_u64(&mut m, v.scratch + u64::from(wk) * 64, 1, Category::AppMeta);
        w.durability_fence(&mut m);
    }
    for (i, op) in ops_plan.iter().enumerate() {
        let tid = schedule[i];
        match *op {
            VOp::Price { t, item, price } => v.update_price(&mut m, tid, t, item, price),
            VOp::Reserve {
                t,
                item,
                customer,
                update_counter,
            } => {
                v.reserve(&mut m, tid, t, item, customer, update_counter);
            }
        }
        m.note_progress(i as u64 + 1);
    }

    let log = v.log_region;
    let tables = v.tables;
    let customers = v.customers;
    let counters = v.counters;
    let journal_head = v.journal_head;
    let total = ops_plan.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut cfg = MachineConfig::asplos17();
        cfg.threads = cfg.threads.max(workers);
        let mut m2 = Machine::from_image(cfg, img);
        let mut eng2 = RedoTxEngine::recover(&mut m2, Tid(0), log, workers);
        for (t, table) in tables.iter().enumerate() {
            table
                .check_invariants(&mut m2, Tid(0))
                .map_err(|e| format!("table {t} invariants: {e}"))?;
        }
        customers
            .check_invariants(&mut m2, Tid(0))
            .map_err(|e| format!("customer tree invariants: {e}"))?;
        let mut journal2 = DurableQueue::open(&mut m2, Tid(0), journal_head)
            .map_err(|e| format!("journal open failed: {e:?}"))?;
        let _ = journal2.recover(&mut m2, Tid(0));

        let mut before = VModel {
            avail: [(); 3].map(|_| vec![100u64; CRASH_ITEMS as usize]),
            cust: HashMap::new(),
            counters: [0; 3],
            journal: Vec::new(),
        };
        for op in &ops_plan[..progress as usize] {
            apply_vmodel(&mut before, op);
        }
        let mut after = before.clone();
        if let Some(op) = ops_plan.get(progress as usize) {
            apply_vmodel(&mut after, op);
        }

        let check =
            |m2: &mut Machine, eng2: &mut RedoTxEngine, want: &VModel| -> Result<(), String> {
                for (t, table) in tables.iter().enumerate() {
                    for item in 0..CRASH_ITEMS {
                        let got = table.get(m2, eng2, Tid(0), item);
                        if got != Some(want.avail[t][item as usize]) {
                            return Err(format!(
                                "table {t} item {item}: avail {got:?} != {}",
                                want.avail[t][item as usize]
                            ));
                        }
                    }
                    let c = m2.load_u64(Tid(0), counters[t]);
                    if c != want.counters[t] {
                        return Err(format!("counter {t}: {c} != {}", want.counters[t]));
                    }
                }
                for customer in 0..CRASH_CUSTOMERS {
                    let want_list = want.cust.get(&customer).cloned().unwrap_or_default();
                    let mut node = customers.get(m2, eng2, Tid(0), customer).unwrap_or(0);
                    let mut got_list = Vec::new();
                    while node != 0 {
                        if got_list.len() > want_list.len() + 2 {
                            return Err(format!("customer {customer}: list exceeds history"));
                        }
                        got_list.push(m2.load_u64(Tid(0), node + 8));
                        if m2.load_u64(Tid(0), node + 16) != 1 {
                            return Err(format!("customer {customer}: torn reservation node"));
                        }
                        node = m2.load_u64(Tid(0), node);
                    }
                    if got_list != want_list {
                        return Err(format!(
                            "customer {customer}: reservations {got_list:?} != {want_list:?}"
                        ));
                    }
                }
                Ok(())
            };
        if check(&mut m2, &mut eng2, &before).is_err() {
            check(&mut m2, &mut eng2, &after).map_err(|e| {
                format!("state matches neither the committed prefix nor prefix+in-flight: {e}")
            })?;
        }

        // The journal holds the committed reservations in global order,
        // with the in-flight reservation's entry possibly rolled
        // forward at the tail.
        let encode = |(s, res, cust): (u64, u64, u64)| -> (u64, Vec<u8>) {
            let mut p = Vec::with_capacity(16);
            p.extend_from_slice(&res.to_le_bytes());
            p.extend_from_slice(&cust.to_le_bytes());
            (s, p)
        };
        let want_journal: Vec<(u64, Vec<u8>)> =
            before.journal.iter().copied().map(encode).collect();
        let snapshot = journal2.iter_snapshot(&mut m2, Tid(0));
        let journal_ok = snapshot == want_journal
            || (after.journal.len() > before.journal.len() && {
                let mut w = want_journal.clone();
                w.push(encode(after.journal[after.journal.len() - 1]));
                snapshot == w
            });
        if !journal_ok {
            return Err(format!(
                "journal: recovered {} entr(ies) {:?} != committed {}",
                snapshot.len(),
                snapshot.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                want_journal.len()
            ));
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total, oracle)
}

/// Reservation mix with trimmed volatile phases (gem5-style, for
/// Figures 6 and 10).
pub fn run_unpaced(transactions: usize, seed: u64) -> AppRun {
    run_inner(transactions, seed, false, WORKERS)
}

/// Run the reservation mix (Table 1: 4 clients).
pub fn run(transactions: usize, seed: u64) -> AppRun {
    run_inner(transactions, seed, true, WORKERS)
}

/// [`run`] with an explicit client-thread count (`--threads`).
pub fn run_threads(transactions: usize, seed: u64, workers: u32) -> AppRun {
    run_inner(transactions, seed, true, workers)
}

pub(crate) fn run_inner(transactions: usize, seed: u64, paced: bool, workers: u32) -> AppRun {
    let mut m = machine_for(workers);
    // Build + load are untraced: the measured interval is steady state.
    m.trace_mut().set_enabled(false);
    let n_items = (transactions as u64 / 2).clamp(64, 4000);
    let mut v = Vacation::build(&mut m, n_items, workers, transactions);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_customers = n_items / 2 + 1;

    // Seeded per-transaction client interleaving — deterministic in
    // `seed` alone, whatever the host parallelism.
    let mut sched = Scheduler::new(workers, seed);
    m.trace_mut().set_enabled(true);
    for _ in 0..transactions {
        let tid = sched.next().expect("clients never retire");
        // STAMP's volatile query machinery: each transaction runs
        // several manager/tree searches over volatile state before the
        // few persistent updates — vacation is the suite's most
        // volatile-heavy app (Figure 6: 0.36% PM).
        arena.work(&mut m, tid, if paced { 12_000 } else { 520 });
        let t = rng.gen_range(0..3);
        let item = rng.gen_range(0..n_items);
        let customer = rng.gen_range(0..n_customers);
        match rng.gen_range(0..100) {
            0..=54 => v.update_price(&mut m, tid, t, item, rng.gen_range(1..500)),
            55..=89 => {
                let update_counter = rng.gen_range(0..16) == 0;
                v.reserve(&mut m, tid, t, item, customer, update_counter);
            }
            _ => {
                let _ = v.query_customer(&mut m, tid, customer);
            }
        }
    }

    AppRun::collect("vacation", "4 clients, reservation mix", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CrashSpec;
    use pmtrace::analysis;

    #[test]
    fn transactions_are_small() {
        // Figure 3: Mnemosyne apps have the smallest medians (~4-8).
        let run = run(300, 6);
        let epochs = analysis::split_epochs(&run.events);
        let median = analysis::tx_stats(&epochs).median().unwrap();
        assert!((3..=15).contains(&median), "vacation median {median}");
    }

    #[test]
    fn pm_fraction_lowest_of_suite() {
        let run = run(300, 6);
        let f = run.stats.pm_fraction();
        assert!(f < 0.03, "vacation PM fraction {f}");
    }

    #[test]
    fn cross_deps_exist_but_rare() {
        let run = run(500, 8);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.cross_dep_epochs > 0,
            "interleaved clients share counters and the journal"
        );
        assert!(
            deps.cross_fraction() < 0.3,
            "cross {}",
            deps.cross_fraction()
        );
        assert!(deps.self_fraction() > 0.2, "self {}", deps.self_fraction());
    }

    #[test]
    fn reservations_survive_crash() {
        let mut m = machine_for(WORKERS);
        let mut v = Vacation::build(&mut m, 16, WORKERS, 64);
        assert!(v.reserve(&mut m, Tid(0), 0, 3, 1, true));
        let avail_before = v.tables[0].get(&mut m, &mut v.eng, Tid(0), 3).unwrap();
        assert_eq!(avail_before, 99);
        let log = v.log_region;
        let journal_head = v.journal_head;
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut eng2 = RedoTxEngine::recover(&mut m2, Tid(0), log, WORKERS);
        // The table header is at a deterministic planner offset; rather
        // than re-derive it, check via the persistent tree re-opened
        // from the same machine image through the original handle.
        let avail_after = v.tables[0].get(&mut m2, &mut eng2, Tid(0), 3).unwrap();
        assert_eq!(avail_after, 99, "committed reservation durable");
        v.tables[0].check_invariants(&mut m2, Tid(0)).unwrap();
        // The journal survived with the reservation's entry.
        let mut journal2 = DurableQueue::open(&mut m2, Tid(0), journal_head).unwrap();
        let _ = journal2.recover(&mut m2, Tid(0));
        let snap = journal2.iter_snapshot(&mut m2, Tid(0));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, 1);
    }
}
