//! The filesystem applications: NFS, Exim, and MySQL over PMFS
//! (Section 3.2.3).
//!
//! "WHISPER includes three common applications to store and access
//! files in PM using PMFS. These applications are unmodified popular
//! open-source programs." What reaches PM is therefore exactly the
//! syscall stream each program makes; the servers themselves (RPC
//! decoding, SMTP, SQL parsing and buffer-pool logic) are volatile
//! work, and each driver's pacing (filebench clients, postal's
//! 1000 msgs/min, sysbench connections) sets the epoch *rate* — which
//! is why Table 1 spans 6250 epochs/s (Exim) to 250 K (NFS).

use super::{AppRun, VolatileArena};
use crate::workloads::{self, FileserverOp};
use memsim::{Machine, MachineConfig};
use pmem::{AddrRange, PmImage};
use pmfs::{Pmfs, PmfsConfig};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::Tid;

const THREADS: u32 = 4;

fn build_fs(m: &mut Machine) -> (Pmfs, AddrRange) {
    let region = AddrRange::new(m.config().map.pm.base, 96 << 20);
    let cfg = PmfsConfig {
        data_blocks: 16_384, // 64 MB of data
        inodes: 2048,
        journal_bytes: 128 * 1024,
    };
    let fs = Pmfs::mkfs(m, Tid(0), region, cfg).expect("mkfs");
    (fs, region)
}

/// One NFS crash-campaign operation.
#[derive(Debug, Clone, Copy)]
enum NfsOp {
    /// Replace `/export/f{file}` wholesale: unlink, create, write
    /// `size` bytes of `fill`.
    CreateWrite { file: u64, fill: u8, size: usize },
    /// Append `len` bytes of `fill` to `/export/biglog`.
    Append { fill: u8, len: usize },
}

/// Crash workload + recovery oracle for NFS-over-PMFS (see
/// [`crate::crashtest`]). Whole-file replacements rotate over a small
/// set, with appends growing a shared log file across block
/// boundaries. PMFS journals metadata but not user data, so the
/// journal's undo makes each create/write/unlink all-or-nothing at the
/// size level: the oracle mounts the image (journal recovery must
/// succeed) and requires every committed file to read back exactly,
/// with the in-flight replacement observed as old, absent, empty, or
/// complete — never a torn length.
pub(crate) fn crash_run_nfs(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const N_FILES: u64 = 6;
    let mut m = Machine::new(MachineConfig::asplos17());
    m.trace_mut().set_enabled(false);
    let (mut fs, region) = build_fs(&mut m);
    fs.mkdir(&mut m, Tid(0), "/export").expect("mkdir");
    fs.create(&mut m, Tid(0), "/export/biglog").expect("biglog");
    let mut rng = SmallRng::seed_from_u64(0x9f5c);
    let plan_ops: Vec<NfsOp> = (0..ops)
        .map(|i| {
            let fill = (i % 251 + 1) as u8;
            if i % 4 == 3 {
                NfsOp::Append {
                    fill,
                    len: rng.gen_range(200..2200),
                }
            } else {
                NfsOp::CreateWrite {
                    file: rng.gen_range(0..N_FILES),
                    fill,
                    size: rng.gen_range(256..2048),
                }
            }
        })
        .collect();

    crate::crashtest::arm(&mut m, points);
    for (i, op) in plan_ops.iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        match *op {
            NfsOp::CreateWrite { file, fill, size } => {
                let p = format!("/export/f{file:04}");
                let _ = fs.unlink(&mut m, tid, &p);
                fs.create(&mut m, tid, &p).expect("create");
                fs.write(&mut m, tid, &p, 0, &vec![fill; size])
                    .expect("write");
            }
            NfsOp::Append { fill, len } => {
                fs.append(&mut m, tid, "/export/biglog", &vec![fill; len])
                    .expect("append");
            }
        }
        m.note_progress(i as u64 + 1);
    }

    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let (mut fs2, _) =
            Pmfs::mount(&mut m2, Tid(0), region).map_err(|e| format!("mount failed: {e:?}"))?;
        // Replay the committed prefix into a volatile model.
        let mut files: Vec<Option<(u8, usize)>> = vec![None; N_FILES as usize];
        let mut biglog: Vec<u8> = Vec::new();
        for op in &plan_ops[..progress as usize] {
            match *op {
                NfsOp::CreateWrite { file, fill, size } => {
                    files[file as usize] = Some((fill, size));
                }
                NfsOp::Append { fill, len } => biglog.extend(std::iter::repeat_n(fill, len)),
            }
        }
        let in_flight = plan_ops.get(progress as usize).copied();
        let content = |fs2: &mut Pmfs, m2: &mut Machine, p: &str| -> Option<Vec<u8>> {
            fs2.read_file(m2, Tid(0), p).ok()
        };
        for f in 0..N_FILES {
            let p = format!("/export/f{f:04}");
            let got = content(&mut fs2, &mut m2, &p);
            let want = files[f as usize].map(|(fill, size)| vec![fill; size]);
            let committed_ok = got == want;
            let in_flight_ok = match in_flight {
                Some(NfsOp::CreateWrite { file, fill, size }) if file == f => {
                    match got.as_deref() {
                        None => true, // unlinked, not yet recreated
                        Some(b) => b.is_empty() || b == vec![fill; size].as_slice(),
                    }
                }
                _ => false,
            };
            if !(committed_ok || in_flight_ok) {
                return Err(format!(
                    "file {p}: recovered {:?} bytes != committed {:?}",
                    got.map(|b| b.len()),
                    want.map(|b| b.len())
                ));
            }
        }
        let got_log =
            content(&mut fs2, &mut m2, "/export/biglog").ok_or("biglog missing".to_string())?;
        let log_ok = got_log == biglog
            || matches!(
                in_flight,
                Some(NfsOp::Append { fill, len })
                    if got_log.len() == biglog.len() + len
                        && got_log[..biglog.len()] == biglog[..]
                        && got_log[biglog.len()..].iter().all(|b| *b == fill)
            );
        if !log_ok {
            return Err(format!(
                "biglog: recovered {} bytes != committed {}",
                got_log.len(),
                biglog.len()
            ));
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total, oracle)
}

/// NFS: an exported PMFS volume driven by filebench's `fileserver`
/// profile (Table 1: 8 clients, 8 NFS threads).
pub fn nfs(ops: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // mkfs and export setup are untraced.
    m.trace_mut().set_enabled(false);
    let (mut fs, _) = build_fs(&mut m);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    fs.mkdir(&mut m, Tid(0), "/export").expect("mkdir");
    let n_files = 64;
    // 8 logical NFS clients multiplexed onto the 4 hardware threads.
    m.trace_mut().set_enabled(true);
    let mut jitter = SmallRng::seed_from_u64(seed ^ 0x9f5);
    for (i, op) in workloads::fileserver(n_files, ops, 65_536, seed)
        .into_iter()
        .enumerate()
    {
        let client = i % 8;
        let tid = Tid((client % THREADS as usize) as u32);
        // RPC decode, export lookup, reply marshalling.
        arena.work(&mut m, tid, 90);
        // The 8 clients think in parallel, so about half the requests
        // arrive back to back with another client's — the overlap that
        // produces NFS's cross-thread dependencies on the shared
        // journal, bitmaps, and directories (Figure 5: 5%).
        if jitter.gen_bool(0.5) {
            m.advance_ns(jitter.gen_range(100_000..210_000));
        }
        let path = |f: u64| format!("/export/f{f:04}");
        match op {
            FileserverOp::CreateWrite { file, size } => {
                let p = path(file);
                let _ = fs.unlink(&mut m, tid, &p);
                fs.create(&mut m, tid, &p).expect("create");
                fs.write(&mut m, tid, &p, 0, &vec![file as u8; size.min(100_000)])
                    .expect("write");
            }
            FileserverOp::Append { file, size } => {
                let p = path(file);
                if fs.stat(&mut m, tid, &p).is_ok() {
                    let _ = fs.append(&mut m, tid, &p, &vec![file as u8; size.min(16_384)]);
                }
            }
            FileserverOp::ReadWhole { file } => {
                let _ = fs.read_file(&mut m, tid, &path(file));
            }
            FileserverOp::Stat { file } => {
                let _ = fs.stat(&mut m, tid, &path(file));
            }
            FileserverOp::Delete { file } => {
                let _ = fs.unlink(&mut m, tid, &path(file));
            }
        }
    }
    AppRun::collect("nfs", "filebench fileserver / 8 clients", m)
}

/// Crash workload + recovery oracle for Exim-over-PMFS (see
/// [`crate::crashtest`]). Each delivery is spool-create → spool-write
/// → mbox-append → log-append → spool-unlink, against pre-created
/// mailboxes. The oracle mounts the image and requires: every
/// committed delivery's spool file gone, each mailbox equal to the
/// concatenation of its committed bodies (the in-flight body may
/// additionally be present in full), the main log equal to the
/// committed delivery lines (plus at most the in-flight line), and the
/// in-flight spool file absent, empty, or complete.
pub(crate) fn crash_run_exim(msgs: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const MBOXES: u64 = 4;
    const BODY: usize = 600;
    let mut m = Machine::new(MachineConfig::asplos17());
    m.trace_mut().set_enabled(false);
    let (mut fs, region) = build_fs(&mut m);
    fs.mkdir(&mut m, Tid(0), "/spool").expect("mkdir");
    fs.mkdir(&mut m, Tid(0), "/mbox").expect("mkdir");
    fs.create(&mut m, Tid(0), "/mainlog").expect("log");
    for u in 0..MBOXES {
        fs.create(&mut m, Tid(0), &format!("/mbox/u{u:03}"))
            .expect("mbox");
    }
    let spool_path = |i: usize| format!("/spool/m{i:04}");
    let log_line = |i: usize, mbox: u64| format!("delivered m{i} to u{mbox:03}\n");
    let body_fill = |i: usize| (i % 251 + 1) as u8;

    crate::crashtest::arm(&mut m, points);
    for i in 0..msgs {
        let tid = Tid((i % THREADS as usize) as u32);
        let mbox = (i as u64 * 7 + 3) % MBOXES;
        let spool = spool_path(i);
        fs.create(&mut m, tid, &spool).expect("spool");
        fs.write(&mut m, tid, &spool, 0, &[body_fill(i); BODY])
            .expect("spool write");
        let body = fs.read_file(&mut m, tid, &spool).expect("read spool");
        fs.append(&mut m, tid, &format!("/mbox/u{mbox:03}"), &body)
            .expect("deliver");
        fs.append(&mut m, tid, "/mainlog", log_line(i, mbox).as_bytes())
            .expect("log");
        fs.unlink(&mut m, tid, &spool).expect("unspool");
        m.note_progress(i as u64 + 1);
    }

    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let (mut fs2, _) =
            Pmfs::mount(&mut m2, Tid(0), region).map_err(|e| format!("mount failed: {e:?}"))?;
        let committed = progress as usize;
        for i in 0..committed {
            if fs2.stat(&mut m2, Tid(0), &spool_path(i)).is_ok() {
                return Err(format!("committed spool {} still present", spool_path(i)));
            }
        }
        if committed < msgs {
            match fs2.read_file(&mut m2, Tid(0), &spool_path(committed)) {
                Err(_) => {}
                Ok(b) if b.is_empty() || b == vec![body_fill(committed); BODY] => {}
                Ok(b) => {
                    return Err(format!(
                        "in-flight spool torn: {} bytes, expected 0 or {BODY}",
                        b.len()
                    ))
                }
            }
        }
        let in_flight_mbox = (committed < msgs).then(|| (committed as u64 * 7 + 3) % MBOXES);
        for u in 0..MBOXES {
            let mut want: Vec<u8> = Vec::new();
            for i in 0..committed {
                if (i as u64 * 7 + 3) % MBOXES == u {
                    want.extend(std::iter::repeat_n(body_fill(i), BODY));
                }
            }
            let got = fs2
                .read_file(&mut m2, Tid(0), &format!("/mbox/u{u:03}"))
                .map_err(|e| format!("mbox u{u:03} unreadable: {e:?}"))?;
            let plus_in_flight = in_flight_mbox == Some(u)
                && got.len() == want.len() + BODY
                && got[..want.len()] == want[..]
                && got[want.len()..].iter().all(|b| *b == body_fill(committed));
            if got != want && !plus_in_flight {
                return Err(format!(
                    "mbox u{u:03}: {} bytes recovered, {} committed",
                    got.len(),
                    want.len()
                ));
            }
        }
        let mut want_log = String::new();
        for i in 0..committed {
            want_log.push_str(&log_line(i, (i as u64 * 7 + 3) % MBOXES));
        }
        let got_log = fs2
            .read_file(&mut m2, Tid(0), "/mainlog")
            .map_err(|e| format!("mainlog unreadable: {e:?}"))?;
        let with_in_flight = (committed < msgs)
            .then(|| {
                let mut s = want_log.clone();
                s.push_str(&log_line(committed, (committed as u64 * 7 + 3) % MBOXES));
                s
            })
            .is_some_and(|s| got_log == s.as_bytes());
        if got_log != want_log.as_bytes() && !with_in_flight {
            return Err(format!(
                "mainlog: {} bytes recovered, {} committed",
                got_log.len(),
                want_log.len()
            ));
        }
        Ok(())
    });
    crate::crashtest::harvest(m, msgs as u64, oracle)
}

/// Exim: mail delivery over PMFS spool and mailboxes, paced like
/// postal at 1000 msgs/min (Table 1: 100 KB messages, 250 mailboxes —
/// message bodies scaled to 24 KB, see DESIGN.md).
pub fn exim(msgs: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // mkfs and mailbox setup are untraced.
    m.trace_mut().set_enabled(false);
    let (mut fs, _) = build_fs(&mut m);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    fs.mkdir(&mut m, Tid(0), "/spool").expect("mkdir");
    fs.mkdir(&mut m, Tid(0), "/mbox").expect("mkdir");
    fs.create(&mut m, Tid(0), "/mainlog").expect("log");
    let n_mailboxes = 250;
    let mut pace = SmallRng::seed_from_u64(seed ^ 0xe41);

    m.trace_mut().set_enabled(true);
    for (i, msg) in workloads::postal(n_mailboxes, msgs, 24_576, seed)
        .into_iter()
        .enumerate()
    {
        let tid = Tid((i % THREADS as usize) as u32);
        // SMTP session + routing + the three child processes' work.
        arena.work(&mut m, tid, 150);
        // postal pacing: ~1000 msgs/min; most deliveries are spaced
        // out, an occasional pair overlaps (the rare cross-thread
        // dependency, Figure 5: 1.16%).
        if pace.gen_bool(0.75) {
            m.advance_ns(29_300_000);
        }
        let spool = format!("/spool/m{i:06}");
        let mbox = format!("/mbox/u{:03}", msg.mailbox);
        // 1. Receive into the spool.
        fs.create(&mut m, tid, &spool).expect("spool");
        fs.write(&mut m, tid, &spool, 0, &vec![i as u8; msg.size.min(32_768)])
            .expect("spool write");
        // SMTP DATA phase completes; the delivery child takes over.
        m.advance_ns(300_000);
        // 2. Append to the per-user mailbox (rotate if huge).
        if fs
            .stat(&mut m, tid, &mbox)
            .map(|s| s.size > 1 << 20)
            .unwrap_or(false)
        {
            fs.truncate(&mut m, tid, &mbox, 0).expect("rotate");
        }
        if fs.stat(&mut m, tid, &mbox).is_err() {
            fs.create(&mut m, tid, &mbox).expect("mbox");
        }
        let body = fs.read_file(&mut m, tid, &spool).expect("read spool");
        fs.append(&mut m, tid, &mbox, &body).expect("deliver");
        // Delivery bookkeeping before logging.
        m.advance_ns(300_000);
        // 3. Log the delivery.
        fs.append(
            &mut m,
            tid,
            "/mainlog",
            format!("delivered m{i} to {mbox}\n").as_bytes(),
        )
        .expect("log");
        // 4. Remove the spool file.
        fs.unlink(&mut m, tid, &spool).expect("unspool");
    }
    AppRun::collect("exim", "postal / 250 mailboxes, paced", m)
}

/// Crash workload + recovery oracle for MySQL-over-PMFS (see
/// [`crate::crashtest`]). Rows live packed in `/ibdata` (preloaded
/// before the plan arms); each operation overwrites one row in place
/// and appends a fixed-size binlog record. PMFS does not journal user
/// data, so an in-place row overwrite can tear at cache-line/block
/// granularity — the oracle therefore checks the in-flight row
/// byte-by-byte against {old fill, new fill}, while committed rows and
/// the binlog must read back exactly (the binlog may carry at most the
/// complete in-flight record, never a partial one: its size is
/// journaled metadata).
pub(crate) fn crash_run_mysql(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const N_ROWS: u64 = 64;
    const ROW: usize = 100;
    const REC: usize = 64;
    const PRELOAD_FILL: u8 = 0xA5;
    let mut m = Machine::new(MachineConfig::asplos17());
    m.trace_mut().set_enabled(false);
    let (mut fs, region) = build_fs(&mut m);
    fs.create(&mut m, Tid(0), "/ibdata").expect("table");
    fs.create(&mut m, Tid(0), "/binlog").expect("binlog");
    let total = N_ROWS as usize * ROW;
    for off in (0..total).step_by(4096) {
        let n = 4096.min(total - off);
        fs.write(
            &mut m,
            Tid(0),
            "/ibdata",
            off as u64,
            &vec![PRELOAD_FILL; n],
        )
        .expect("load");
    }
    let mut rng = SmallRng::seed_from_u64(0xdb_c4);
    let plan_ops: Vec<(u64, u8)> = (0..ops)
        .map(|i| (rng.gen_range(0..N_ROWS), (i % 251 + 1) as u8))
        .collect();

    crate::crashtest::arm(&mut m, points);
    for (i, (row, fill)) in plan_ops.iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        fs.write(&mut m, tid, "/ibdata", row * ROW as u64, &[*fill; ROW])
            .expect("update");
        fs.append(&mut m, tid, "/binlog", &[*fill; REC])
            .expect("binlog");
        m.note_progress(i as u64 + 1);
    }

    let total_ops = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let (mut fs2, _) =
            Pmfs::mount(&mut m2, Tid(0), region).map_err(|e| format!("mount failed: {e:?}"))?;
        let mut rows = vec![PRELOAD_FILL; N_ROWS as usize];
        for (row, fill) in &plan_ops[..progress as usize] {
            rows[*row as usize] = *fill;
        }
        let in_flight = plan_ops.get(progress as usize).copied();
        let table = fs2
            .read_file(&mut m2, Tid(0), "/ibdata")
            .map_err(|e| format!("ibdata unreadable: {e:?}"))?;
        if table.len() != N_ROWS as usize * ROW {
            return Err(format!("ibdata truncated to {} bytes", table.len()));
        }
        for r in 0..N_ROWS as usize {
            let bytes = &table[r * ROW..(r + 1) * ROW];
            let old = rows[r];
            match in_flight {
                Some((row, fill)) if row as usize == r => {
                    // The in-flight overwrite may tear — but every byte
                    // must be either the old or the new fill.
                    if let Some(b) = bytes.iter().find(|b| **b != old && **b != fill) {
                        return Err(format!(
                            "row {r}: byte {b:#04x} is neither old {old:#04x} nor new {fill:#04x}"
                        ));
                    }
                }
                _ => {
                    if bytes.iter().any(|b| *b != old) {
                        return Err(format!("row {r}: committed fill {old:#04x} torn"));
                    }
                }
            }
        }
        let binlog = fs2
            .read_file(&mut m2, Tid(0), "/binlog")
            .map_err(|e| format!("binlog unreadable: {e:?}"))?;
        let committed_len = progress as usize * REC;
        let with_in_flight = in_flight.is_some() && binlog.len() == committed_len + REC;
        if binlog.len() != committed_len && !with_in_flight {
            return Err(format!(
                "binlog length {} is neither {committed_len} nor {}",
                binlog.len(),
                committed_len + REC
            ));
        }
        for (i, (_, fill)) in plan_ops[..progress as usize].iter().enumerate() {
            if binlog[i * REC..(i + 1) * REC].iter().any(|b| b != fill) {
                return Err(format!("binlog record {i} torn"));
            }
        }
        if with_in_flight {
            let (_, fill) = in_flight.expect("checked");
            if binlog[committed_len..].iter().any(|b| *b != fill) {
                return Err("in-flight binlog record torn despite committed size".into());
            }
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total_ops, oracle)
}

/// MySQL: sysbench OLTP-complex over table/index/binlog files on PMFS
/// (Table 1: 4 clients, one 10 M-row table — scaled).
pub fn mysql(txs: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // mkfs and table loading are untraced.
    m.trace_mut().set_enabled(false);
    let (mut fs, _) = build_fs(&mut m);
    let mut arena = VolatileArena::new(&mut m, 4 << 20);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdb);
    // Table file: rows packed 100 B each in 4 KB pages; plus binlog.
    fs.create(&mut m, Tid(0), "/ibdata").expect("table");
    fs.create(&mut m, Tid(0), "/binlog").expect("binlog");
    let n_rows = 4096usize;
    const ROW: usize = 100;
    // Pre-extend the table file (untraced load phase).
    m.trace_mut().set_enabled(false);
    let total = n_rows * ROW;
    for off in (0..total).step_by(4096) {
        fs.write(&mut m, Tid(0), "/ibdata", off as u64, &[1u8; 4096])
            .expect("load");
    }
    m.trace_mut().set_enabled(true);
    let row_off = |r: u64| r * ROW as u64;

    for (i, tx) in workloads::oltp(n_rows, txs, seed).into_iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        // Parser, optimizer, buffer pool — the bulk of MySQL's work.
        arena.work(&mut m, tid, 450);
        for r in &tx.point_selects {
            let _ = fs.read(&mut m, tid, "/ibdata", row_off(*r), ROW);
        }
        let (start, len) = tx.range;
        let _ = fs.read(
            &mut m,
            tid,
            "/ibdata",
            row_off(start % n_rows as u64),
            (len as usize * ROW).min(16_384),
        );
        for r in &tx.updates {
            // Per-statement planning/execution time separates the
            // statements' metadata updates beyond the 50us window.
            m.advance_ns(120_000);
            fs.write(&mut m, tid, "/ibdata", row_off(*r), &[rng.gen::<u8>(); ROW])
                .expect("update");
        }
        // insert+delete pair modeled as a row rewrite + tombstone.
        m.advance_ns(120_000);
        fs.write(
            &mut m,
            tid,
            "/ibdata",
            row_off(tx.insert_delete),
            &[0u8; ROW],
        )
        .expect("insert/delete");
        // Binlog record for the write set.
        m.advance_ns(120_000);
        fs.append(&mut m, tid, "/binlog", &vec![i as u8; 256])
            .expect("binlog");
    }
    AppRun::collect("mysql", "sysbench OLTP-complex / 4 clients", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::analysis;

    #[test]
    fn nfs_runs_with_large_epochs() {
        let run = nfs(150, 21);
        let epochs = analysis::split_epochs(&run.events);
        let hist = analysis::epoch_size_histogram(&epochs);
        // Figure 4: PMFS apps have a ≥64-line mode from 4 KB blocks.
        assert!(hist.buckets[6] > 0, "no 64-line epochs: {hist}");
        assert!(
            hist.singleton_fraction() < 0.7,
            "PMFS is not singleton-dominated"
        );
    }

    #[test]
    fn nfs_has_cross_dependencies() {
        // Figure 5: NFS shows the most cross-deps (5%) — shared
        // directories, bitmaps, and the journal.
        let run = nfs(200, 23);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(deps.cross_dep_epochs > 0, "expected some cross-deps");
    }

    #[test]
    fn exim_rate_is_orders_of_magnitude_lower() {
        let e = exim(20, 25);
        let n = nfs(200, 25);
        let eps = |r: &AppRun| {
            analysis::epochs_per_second(analysis::split_epochs(&r.events).len(), r.duration_ns)
        };
        assert!(
            eps(&n) > eps(&e) * 10.0,
            "nfs {} vs exim {} epochs/s",
            eps(&n),
            eps(&e)
        );
    }

    #[test]
    fn exim_delivers_mail_durably() {
        let run = exim(10, 26);
        assert!(!run.events.is_empty());
        // All spool files must be gone (delivered then unlinked).
        // (Validated inside the run by expect()s; the trace existing
        // and ending cleanly is the signal here.)
    }

    #[test]
    fn mysql_low_self_dependencies() {
        // Figure 5: MySQL has the lowest self-dep share (17.9%) — "few
        // metadata writes" and sub-50µs windows rarely spanned.
        let run = mysql(60, 27);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.self_fraction() < 0.45,
            "mysql self-dep {} should be the suite's lowest",
            deps.self_fraction()
        );
    }
}
