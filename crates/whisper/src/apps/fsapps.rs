//! The filesystem applications: NFS, Exim, and MySQL over PMFS
//! (Section 3.2.3).
//!
//! "WHISPER includes three common applications to store and access
//! files in PM using PMFS. These applications are unmodified popular
//! open-source programs." What reaches PM is therefore exactly the
//! syscall stream each program makes; the servers themselves (RPC
//! decoding, SMTP, SQL parsing and buffer-pool logic) are volatile
//! work, and each driver's pacing (filebench clients, postal's
//! 1000 msgs/min, sysbench connections) sets the epoch *rate* — which
//! is why Table 1 spans 6250 epochs/s (Exim) to 250 K (NFS).

use super::{AppRun, VolatileArena};
use crate::workloads::{self, FileserverOp};
use memsim::{Machine, MachineConfig};
use pmem::AddrRange;
use pmfs::{Pmfs, PmfsConfig};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::Tid;

const THREADS: u32 = 4;

fn build_fs(m: &mut Machine) -> (Pmfs, AddrRange) {
    let region = AddrRange::new(m.config().map.pm.base, 96 << 20);
    let cfg = PmfsConfig {
        data_blocks: 16_384, // 64 MB of data
        inodes: 2048,
        journal_bytes: 128 * 1024,
    };
    let fs = Pmfs::mkfs(m, Tid(0), region, cfg).expect("mkfs");
    (fs, region)
}

/// NFS: an exported PMFS volume driven by filebench's `fileserver`
/// profile (Table 1: 8 clients, 8 NFS threads).
pub fn nfs(ops: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // mkfs and export setup are untraced.
    m.trace_mut().set_enabled(false);
    let (mut fs, _) = build_fs(&mut m);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    fs.mkdir(&mut m, Tid(0), "/export").expect("mkdir");
    let n_files = 64;
    // 8 logical NFS clients multiplexed onto the 4 hardware threads.
    m.trace_mut().set_enabled(true);
    let mut jitter = SmallRng::seed_from_u64(seed ^ 0x9f5);
    for (i, op) in workloads::fileserver(n_files, ops, 65_536, seed)
        .into_iter()
        .enumerate()
    {
        let client = i % 8;
        let tid = Tid((client % THREADS as usize) as u32);
        // RPC decode, export lookup, reply marshalling.
        arena.work(&mut m, tid, 90);
        // The 8 clients think in parallel, so about half the requests
        // arrive back to back with another client's — the overlap that
        // produces NFS's cross-thread dependencies on the shared
        // journal, bitmaps, and directories (Figure 5: 5%).
        if jitter.gen_bool(0.5) {
            m.advance_ns(jitter.gen_range(100_000..210_000));
        }
        let path = |f: u64| format!("/export/f{f:04}");
        match op {
            FileserverOp::CreateWrite { file, size } => {
                let p = path(file);
                let _ = fs.unlink(&mut m, tid, &p);
                fs.create(&mut m, tid, &p).expect("create");
                fs.write(&mut m, tid, &p, 0, &vec![file as u8; size.min(100_000)])
                    .expect("write");
            }
            FileserverOp::Append { file, size } => {
                let p = path(file);
                if fs.stat(&mut m, tid, &p).is_ok() {
                    let _ = fs.append(&mut m, tid, &p, &vec![file as u8; size.min(16_384)]);
                }
            }
            FileserverOp::ReadWhole { file } => {
                let _ = fs.read_file(&mut m, tid, &path(file));
            }
            FileserverOp::Stat { file } => {
                let _ = fs.stat(&mut m, tid, &path(file));
            }
            FileserverOp::Delete { file } => {
                let _ = fs.unlink(&mut m, tid, &path(file));
            }
        }
    }
    AppRun::collect("nfs", "filebench fileserver / 8 clients", m)
}

/// Exim: mail delivery over PMFS spool and mailboxes, paced like
/// postal at 1000 msgs/min (Table 1: 100 KB messages, 250 mailboxes —
/// message bodies scaled to 24 KB, see DESIGN.md).
pub fn exim(msgs: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // mkfs and mailbox setup are untraced.
    m.trace_mut().set_enabled(false);
    let (mut fs, _) = build_fs(&mut m);
    let mut arena = VolatileArena::new(&mut m, 2 << 20);
    fs.mkdir(&mut m, Tid(0), "/spool").expect("mkdir");
    fs.mkdir(&mut m, Tid(0), "/mbox").expect("mkdir");
    fs.create(&mut m, Tid(0), "/mainlog").expect("log");
    let n_mailboxes = 250;
    let mut pace = SmallRng::seed_from_u64(seed ^ 0xe41);

    m.trace_mut().set_enabled(true);
    for (i, msg) in workloads::postal(n_mailboxes, msgs, 24_576, seed)
        .into_iter()
        .enumerate()
    {
        let tid = Tid((i % THREADS as usize) as u32);
        // SMTP session + routing + the three child processes' work.
        arena.work(&mut m, tid, 150);
        // postal pacing: ~1000 msgs/min; most deliveries are spaced
        // out, an occasional pair overlaps (the rare cross-thread
        // dependency, Figure 5: 1.16%).
        if pace.gen_bool(0.75) {
            m.advance_ns(29_300_000);
        }
        let spool = format!("/spool/m{i:06}");
        let mbox = format!("/mbox/u{:03}", msg.mailbox);
        // 1. Receive into the spool.
        fs.create(&mut m, tid, &spool).expect("spool");
        fs.write(&mut m, tid, &spool, 0, &vec![i as u8; msg.size.min(32_768)])
            .expect("spool write");
        // SMTP DATA phase completes; the delivery child takes over.
        m.advance_ns(300_000);
        // 2. Append to the per-user mailbox (rotate if huge).
        if fs
            .stat(&mut m, tid, &mbox)
            .map(|s| s.size > 1 << 20)
            .unwrap_or(false)
        {
            fs.truncate(&mut m, tid, &mbox, 0).expect("rotate");
        }
        if fs.stat(&mut m, tid, &mbox).is_err() {
            fs.create(&mut m, tid, &mbox).expect("mbox");
        }
        let body = fs.read_file(&mut m, tid, &spool).expect("read spool");
        fs.append(&mut m, tid, &mbox, &body).expect("deliver");
        // Delivery bookkeeping before logging.
        m.advance_ns(300_000);
        // 3. Log the delivery.
        fs.append(
            &mut m,
            tid,
            "/mainlog",
            format!("delivered m{i} to {mbox}\n").as_bytes(),
        )
        .expect("log");
        // 4. Remove the spool file.
        fs.unlink(&mut m, tid, &spool).expect("unspool");
    }
    AppRun::collect("exim", "postal / 250 mailboxes, paced", m)
}

/// MySQL: sysbench OLTP-complex over table/index/binlog files on PMFS
/// (Table 1: 4 clients, one 10 M-row table — scaled).
pub fn mysql(txs: usize, seed: u64) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    // mkfs and table loading are untraced.
    m.trace_mut().set_enabled(false);
    let (mut fs, _) = build_fs(&mut m);
    let mut arena = VolatileArena::new(&mut m, 4 << 20);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdb);
    // Table file: rows packed 100 B each in 4 KB pages; plus binlog.
    fs.create(&mut m, Tid(0), "/ibdata").expect("table");
    fs.create(&mut m, Tid(0), "/binlog").expect("binlog");
    let n_rows = 4096usize;
    const ROW: usize = 100;
    // Pre-extend the table file (untraced load phase).
    m.trace_mut().set_enabled(false);
    let total = n_rows * ROW;
    for off in (0..total).step_by(4096) {
        fs.write(&mut m, Tid(0), "/ibdata", off as u64, &[1u8; 4096])
            .expect("load");
    }
    m.trace_mut().set_enabled(true);
    let row_off = |r: u64| r * ROW as u64;

    for (i, tx) in workloads::oltp(n_rows, txs, seed).into_iter().enumerate() {
        let tid = Tid((i % THREADS as usize) as u32);
        // Parser, optimizer, buffer pool — the bulk of MySQL's work.
        arena.work(&mut m, tid, 450);
        for r in &tx.point_selects {
            let _ = fs.read(&mut m, tid, "/ibdata", row_off(*r), ROW);
        }
        let (start, len) = tx.range;
        let _ = fs.read(
            &mut m,
            tid,
            "/ibdata",
            row_off(start % n_rows as u64),
            (len as usize * ROW).min(16_384),
        );
        for r in &tx.updates {
            // Per-statement planning/execution time separates the
            // statements' metadata updates beyond the 50us window.
            m.advance_ns(120_000);
            fs.write(&mut m, tid, "/ibdata", row_off(*r), &[rng.gen::<u8>(); ROW])
                .expect("update");
        }
        // insert+delete pair modeled as a row rewrite + tombstone.
        m.advance_ns(120_000);
        fs.write(
            &mut m,
            tid,
            "/ibdata",
            row_off(tx.insert_delete),
            &[0u8; ROW],
        )
        .expect("insert/delete");
        // Binlog record for the write set.
        m.advance_ns(120_000);
        fs.append(&mut m, tid, "/binlog", &vec![i as u8; 256])
            .expect("binlog");
    }
    AppRun::collect("mysql", "sysbench OLTP-complex / 4 clients", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::analysis;

    #[test]
    fn nfs_runs_with_large_epochs() {
        let run = nfs(150, 21);
        let epochs = analysis::split_epochs(&run.events);
        let hist = analysis::epoch_size_histogram(&epochs);
        // Figure 4: PMFS apps have a ≥64-line mode from 4 KB blocks.
        assert!(hist.buckets[6] > 0, "no 64-line epochs: {hist}");
        assert!(
            hist.singleton_fraction() < 0.7,
            "PMFS is not singleton-dominated"
        );
    }

    #[test]
    fn nfs_has_cross_dependencies() {
        // Figure 5: NFS shows the most cross-deps (5%) — shared
        // directories, bitmaps, and the journal.
        let run = nfs(200, 23);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(deps.cross_dep_epochs > 0, "expected some cross-deps");
    }

    #[test]
    fn exim_rate_is_orders_of_magnitude_lower() {
        let e = exim(20, 25);
        let n = nfs(200, 25);
        let eps = |r: &AppRun| {
            analysis::epochs_per_second(analysis::split_epochs(&r.events).len(), r.duration_ns)
        };
        assert!(
            eps(&n) > eps(&e) * 10.0,
            "nfs {} vs exim {} epochs/s",
            eps(&n),
            eps(&e)
        );
    }

    #[test]
    fn exim_delivers_mail_durably() {
        let run = exim(10, 26);
        assert!(!run.events.is_empty());
        // All spool files must be gone (delivered then unlinked).
        // (Validated inside the run by expect()s; the trace existing
        // and ending cleanly is the signal here.)
    }

    #[test]
    fn mysql_low_self_dependencies() {
        // Figure 5: MySQL has the lowest self-dep share (17.9%) — "few
        // metadata writes" and sub-50µs windows rarely spanned.
        let run = mysql(60, 27);
        let epochs = analysis::split_epochs(&run.events);
        let deps = analysis::dependencies(&epochs);
        assert!(
            deps.self_fraction() < 0.45,
            "mysql self-dep {} should be the suite's lowest",
            deps.self_fraction()
        );
    }
}
