//! Echo: a scalable persistent key-value store (paper Section 3.2.1).
//!
//! "Echo employs a master thread to manage the persistent KVS while
//! client threads batch and send updates to KV pairs to the master.
//! Each client thread contains a volatile KVS similar in structure to
//! the master, which it uses to service local reads, and finalize and
//! batch updates. ... The master KVS is a persistent hash table. Each
//! hash table entry is a key and a chronologically ordered list of
//! versions of a value. Clients submit updates to key-value pairs,
//! which are stored in a persistent log. After a successful submission,
//! the master processes the log and moves the updates to its persistent
//! KVS in PM."
//!
//! Per the paper's modifications, Echo uses the single-heap persistent
//! allocator (from N-store) and wraps all PM updates in durable
//! transactions. Batch descriptors flip INPROGRESS → CREATED across
//! consecutive epochs on the same line — one of the paper's named
//! self-dependency sources — and the master/client handoff on the
//! descriptor line is a (rare) cross-thread dependency.

use super::{AppRun, VolatileArena};
use crate::region::RegionPlanner;
use memsim::{Machine, MachineConfig, PmWriter};
use pmalloc::{BlockState, PmAllocator, SingleHeapAlloc};
use pmds::{PHashMap, PLog};
use pmem::{Addr, AddrRange, PmImage};
use pmrand::{Rng, SeedableRng, SmallRng};
use pmtrace::{Category, Tid};
use pmtx::{TxMem, UndoTxEngine};

const STATUS_INPROGRESS: u32 = 1;
const STATUS_CREATED: u32 = 2;
/// Version node: prev u64, seq u64, value 16 B.
const VNODE_BYTES: u64 = 32;

/// Everything Echo keeps in PM, plus handles for driving it.
pub(crate) struct EchoState {
    pub(crate) eng: UndoTxEngine,
    pub(crate) alloc: SingleHeapAlloc,
    pub(crate) master: PHashMap,
    /// Per-client persistent submission logs.
    pub(crate) client_logs: Vec<PLog>,
    /// Per-client batch descriptors (status, seq).
    pub(crate) descriptors: Vec<Addr>,
    pub(crate) log_region: AddrRange,
    pub(crate) master_head: Addr,
}

pub(crate) const ECHO_CLIENTS: u32 = 4;
const KEYSPACE: usize = 512;

impl EchoState {
    pub(crate) fn build(m: &mut Machine) -> EchoState {
        let mut plan = RegionPlanner::new(m.config().map.pm);
        let log_region = plan.take(4 << 20);
        let heap_region = plan.take(256 << 20);
        let table_region = plan.take(PHashMap::region_bytes(256));
        let desc_region = plan.take(64 * ECHO_CLIENTS as u64);
        let clog_regions: Vec<AddrRange> =
            (0..ECHO_CLIENTS).map(|_| plan.take(256 << 10)).collect();

        let mut eng = UndoTxEngine::format(m, log_region, ECHO_CLIENTS);
        let mut w = PmWriter::new(Tid(0));
        let alloc = SingleHeapAlloc::format(m, &mut w, heap_region);
        eng.begin(m, Tid(0)).expect("fresh engine");
        let master = PHashMap::create(m, &mut eng, Tid(0), table_region, 256).expect("create");
        let client_logs = clog_regions
            .iter()
            .map(|r| PLog::create(m, &mut eng, Tid(0), *r).expect("create log"))
            .collect();
        eng.commit(m, Tid(0)).expect("commit setup");
        let descriptors = (0..ECHO_CLIENTS as u64)
            .map(|i| desc_region.base + i * 64)
            .collect();
        EchoState {
            eng,
            alloc,
            master,
            client_logs,
            descriptors,
            log_region,
            master_head: table_region.base,
        }
    }

    /// Client side of one batch: accumulate updates in the volatile
    /// store, then durably submit them to the client's persistent log
    /// and mark the batch descriptor INPROGRESS.
    fn client_submit(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        arena: &mut VolatileArena,
        batch: &[(u64, [u8; 16])],
    ) {
        // Finalize updates against the volatile local KVS.
        arena.work(m, tid, 330 * batch.len() as u64);
        let c = tid.0 as usize;
        self.eng.begin(m, tid).expect("client tx");
        for (key, val) in batch {
            let mut rec = [0u8; 24];
            rec[0..8].copy_from_slice(&key.to_le_bytes());
            rec[8..24].copy_from_slice(val);
            self.client_logs[c]
                .append(m, &mut self.eng, tid, &rec)
                .expect("log append");
        }
        self.eng
            .tx_write_u32(
                m,
                tid,
                self.descriptors[c],
                STATUS_INPROGRESS,
                Category::AppMeta,
            )
            .expect("descriptor");
        self.eng.commit(m, tid).expect("client commit");
    }

    /// Master side: move the client's batch into the versioned KVS,
    /// flip the descriptor to CREATED, and truncate the log. Runs on
    /// the master thread (tid 0), so the descriptor write is a
    /// cross-thread dependency with the client's INPROGRESS write.
    fn master_apply(&mut self, m: &mut Machine, client: usize, arena: &mut VolatileArena) {
        let master_tid = Tid(0);
        let records = self.client_logs[client].records(m, master_tid);
        arena.work(m, master_tid, 180 * records.len() as u64);
        self.eng.begin(m, master_tid).expect("master tx");
        for rec in records {
            let key = &rec[0..8];
            let val = &rec[8..24];
            self.apply_update(m, master_tid, key, val);
        }
        self.eng
            .tx_write_u32(
                m,
                master_tid,
                self.descriptors[client],
                STATUS_CREATED,
                Category::AppMeta,
            )
            .expect("descriptor");
        self.client_logs[client]
            .truncate(m, &mut self.eng, master_tid)
            .expect("truncate");
        self.eng.commit(m, master_tid).expect("master commit");
    }

    /// Prepend a version node to the key's chain.
    fn apply_update(&mut self, m: &mut Machine, tid: Tid, key: &[u8], val: &[u8]) {
        let mut w = PmWriter::new(tid);
        let node = self.alloc.alloc(m, &mut w, VNODE_BYTES).expect("heap");
        // Echo's descriptor-style state protocol on the heap block:
        // VOLATILE at allocation, PERSISTENT once linked.
        let head = self.master.get(m, &mut self.eng, tid, key);
        let (prev, seq) = match &head {
            Some(h) => {
                let prev = u64::from_le_bytes(h[0..8].try_into().expect("8 bytes"));
                let pseq = if prev == 0 {
                    0
                } else {
                    self.eng.tx_read_u64(m, tid, prev + 8)
                };
                (prev, pseq + 1)
            }
            None => (0, 1),
        };
        self.eng
            .tx_write_u64(m, tid, node, prev, Category::UserData)
            .expect("node");
        self.eng
            .tx_write_u64(m, tid, node + 8, seq, Category::UserData)
            .expect("node");
        self.eng
            .tx_write(m, tid, node + 16, val, Category::UserData)
            .expect("node");
        self.alloc
            .set_state(m, &mut w, node, BlockState::Persistent)
            .expect("state");
        self.master
            .insert(
                m,
                &mut self.eng,
                tid,
                &mut self.alloc,
                key,
                &node.to_le_bytes(),
            )
            .expect("insert");
    }

    /// Walk a key's version chain (newest first). Used by recovery
    /// validation.
    #[allow(dead_code)] // exercised by crash tests
    pub(crate) fn versions(&mut self, m: &mut Machine, tid: Tid, key: &[u8]) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(h) = self.master.get(m, &mut self.eng, tid, key) {
            let mut node = u64::from_le_bytes(h[0..8].try_into().expect("8 bytes"));
            while node != 0 {
                out.push(m.load_u64(tid, node + 8));
                node = m.load_u64(tid, node);
            }
        }
        out
    }
}

/// Run echo-test without client pacing and with trimmed volatile
/// phases — the configuration the paper's gem5 full-system simulations
/// use for Figures 6 and 10.
pub fn run_unpaced(transactions: usize, seed: u64) -> AppRun {
    run_inner(transactions, seed, false)
}

/// Run echo-test: 4 clients submitting batches of updates, the master
/// folding each batch into the versioned persistent KVS.
pub fn run(transactions: usize, seed: u64) -> AppRun {
    run_inner(transactions, seed, true)
}

/// Crash workload + recovery oracle for the campaign (see
/// [`crate::crashtest`]): single-update batches over a small keyspace,
/// each operation = one client submit transaction + one master apply
/// transaction, progress noted after the master's commit. The oracle
/// recovers the engine, re-opens the master KVS, and checks every
/// key's version chain against the committed operation prefix —
/// allowing the one in-flight operation to be wholly present or wholly
/// absent, never torn.
pub(crate) fn crash_run(ops: usize, points: &[u64]) -> crate::crashtest::CrashRun {
    const CRASH_KEYSPACE: u64 = 24;
    let mut m = Machine::new(MachineConfig::asplos17());
    let mut st = EchoState::build(&mut m);
    m.trace_mut().set_enabled(false);
    let mut arena = VolatileArena::new(&mut m, 1 << 20);
    let mut rng = SmallRng::seed_from_u64(0xec40);
    // Pre-generate the operation list so the oracle can replay it.
    let plan_ops: Vec<(u64, [u8; 16])> = (0..ops)
        .map(|i| {
            let key = rng.gen_range(0..CRASH_KEYSPACE);
            let mut val = [0u8; 16];
            val[0..8].copy_from_slice(&key.to_le_bytes());
            val[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            (key, val)
        })
        .collect();

    crate::crashtest::arm(&mut m, points);
    for (i, (key, val)) in plan_ops.iter().enumerate() {
        let tid = Tid((i % ECHO_CLIENTS as usize) as u32);
        st.client_submit(&mut m, tid, &mut arena, &[(*key, *val)]);
        st.master_apply(&mut m, tid.0 as usize, &mut arena);
        m.note_progress(i as u64 + 1);
    }

    let log_region = st.log_region;
    let master_head = st.master_head;
    let total = plan_ops.len() as u64;
    let oracle = Box::new(move |img: &PmImage, progress: u64| -> Result<(), String> {
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), img);
        let mut eng2 = UndoTxEngine::recover(&mut m2, Tid(0), log_region, ECHO_CLIENTS);
        let master2 = PHashMap::open(&mut m2, Tid(0), master_head)
            .map_err(|e| format!("master KVS open failed: {e:?}"))?;
        let committed = &plan_ops[..progress as usize];
        let in_flight = plan_ops.get(progress as usize);
        for key in 0..CRASH_KEYSPACE {
            let expected: Vec<[u8; 16]> = committed
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .collect();
            let mut chain: Vec<(u64, [u8; 16])> = Vec::new();
            if let Some(h) = master2.get(&mut m2, &mut eng2, Tid(0), &key.to_le_bytes()) {
                let mut node = u64::from_le_bytes(h[0..8].try_into().expect("8-byte head"));
                while node != 0 {
                    if chain.len() > expected.len() + 2 {
                        return Err(format!("key {key}: chain exceeds history (cycle?)"));
                    }
                    let seq = m2.load_u64(Tid(0), node + 8);
                    let mut val = [0u8; 16];
                    val.copy_from_slice(&m2.load_vec(Tid(0), node + 16, 16));
                    chain.push((seq, val));
                    node = m2.load_u64(Tid(0), node);
                }
            }
            chain.reverse(); // oldest first; seqs must run 1..=len
            let matches = |chain: &[(u64, [u8; 16])], want: &[[u8; 16]]| {
                chain.len() == want.len()
                    && chain
                        .iter()
                        .zip(want)
                        .enumerate()
                        .all(|(i, ((seq, v), w))| *seq == i as u64 + 1 && v == w)
            };
            let extra_ok = match in_flight {
                Some((k, v)) if *k == key => {
                    chain.len() == expected.len() + 1
                        && matches(&chain[..expected.len()], &expected)
                        && chain.last() == Some(&(expected.len() as u64 + 1, *v))
                }
                _ => false,
            };
            if !(matches(&chain, &expected) || extra_ok) {
                return Err(format!(
                    "key {key}: chain {:?} does not extend the {} committed update(s)",
                    chain.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                    expected.len()
                ));
            }
        }
        Ok(())
    });
    crate::crashtest::harvest(m, total, oracle)
}

pub(crate) fn run_inner(transactions: usize, seed: u64, paced: bool) -> AppRun {
    let mut m = Machine::new(MachineConfig::asplos17());
    let mut st = EchoState::build(&mut m);
    // Setup (engine/allocator/structure formatting) is untraced: the
    // measured interval is the steady-state workload, as in the paper.
    m.trace_mut().set_enabled(false);
    let mut arena = VolatileArena::new(&mut m, 1 << 20);
    let mut rng = SmallRng::seed_from_u64(seed);
    const BATCH: usize = 48;
    let batches = (transactions.div_ceil(BATCH) / 2).max(4); // 2 txs per batch

    m.trace_mut().set_enabled(true);
    for round in 0..batches {
        let tid = Tid((round % ECHO_CLIENTS as usize) as u32);
        // Client-side batching delay before the next submission.
        m.advance_ns(if paced { 520_000 } else { 330_000 });
        let batch: Vec<(u64, [u8; 16])> = (0..BATCH)
            .map(|_| {
                let key = rng.gen_range(0..KEYSPACE) as u64;
                let mut val = [0u8; 16];
                val[0..8].copy_from_slice(&rng.gen::<u64>().to_le_bytes());
                (key, val)
            })
            .collect();
        st.client_submit(&mut m, tid, &mut arena, &batch);
        st.master_apply(&mut m, tid.0 as usize, &mut arena);
    }

    AppRun::collect("echo", "echo-test / 4 clients", m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CrashSpec;

    #[test]
    fn run_produces_trace_and_versions() {
        let run = run(200, 1);
        assert!(!run.events.is_empty());
        assert!(run.stats.pm_total() > 0);
        assert!(run.stats.dram_accesses > run.stats.pm_total());
    }

    #[test]
    fn version_chains_grow() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut st = EchoState::build(&mut m);
        let mut arena = VolatileArena::new(&mut m, 1 << 20);
        let key = 7u64;
        for _ in 0..3 {
            st.client_submit(&mut m, Tid(1), &mut arena, &[(key, [9u8; 16])]);
            st.master_apply(&mut m, 1, &mut arena);
        }
        let versions = st.versions(&mut m, Tid(0), &key.to_le_bytes());
        assert_eq!(versions, vec![3, 2, 1], "newest first, chronological");
    }

    #[test]
    fn crash_recovery_preserves_chain_integrity() {
        for seed in [3u64, 14, 27] {
            let mut m = Machine::new(MachineConfig::asplos17());
            let mut st = EchoState::build(&mut m);
            let mut arena = VolatileArena::new(&mut m, 1 << 20);
            for i in 0..6u64 {
                let tid = Tid((i % ECHO_CLIENTS as u64) as u32);
                st.client_submit(&mut m, tid, &mut arena, &[(i % 3, [i as u8; 16])]);
                st.master_apply(&mut m, tid.0 as usize, &mut arena);
            }
            // Crash mid-batch: client submitted, master mid-apply.
            st.client_submit(&mut m, Tid(0), &mut arena, &[(0, [0xEE; 16])]);
            st.eng.begin(&mut m, Tid(0)).unwrap();
            st.apply_update(&mut m, Tid(0), &0u64.to_le_bytes(), &[0xEE; 16]);
            let log_region = st.log_region;
            let master_head = st.master_head;
            let img = m.crash(CrashSpec::Adversarial { seed });

            // Recover.
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let mut eng2 = UndoTxEngine::recover(&mut m2, Tid(0), log_region, ECHO_CLIENTS);
            let master2 = PHashMap::open(&mut m2, Tid(0), master_head).unwrap();
            // Every chain must be walkable with strictly decreasing
            // sequence numbers (prefix-consistent history).
            let mut checked = 0;
            for key in 0..3u64 {
                if let Some(h) = master2.get(&mut m2, &mut eng2, Tid(0), &key.to_le_bytes()) {
                    let mut node = u64::from_le_bytes(h[0..8].try_into().unwrap());
                    let mut last_seq = u64::MAX;
                    while node != 0 {
                        let seq = m2.load_u64(Tid(0), node + 8);
                        assert!(seq < last_seq, "seed {seed}: chain seq not decreasing");
                        assert!(seq > 0, "seed {seed}: zero seq implies torn node");
                        last_seq = seq;
                        node = m2.load_u64(Tid(0), node);
                        checked += 1;
                    }
                }
            }
            assert!(checked > 0, "seed {seed}: committed versions survive");
        }
    }
}
