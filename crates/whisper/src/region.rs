//! Carving the PM range into per-subsystem regions.

use pmem::{Addr, AddrRange};

/// Sequential allocator of non-overlapping sub-ranges of the machine's
/// PM range — the moral equivalent of the memory-mapped "segments"
/// through which Mnemosyne and NVML expose PM (Section 3.1). Each
/// application plans its log area, persistent heap, and structure
/// headers once at startup.
#[derive(Debug, Clone)]
pub struct RegionPlanner {
    next: Addr,
    end: Addr,
}

impl RegionPlanner {
    /// Plan within `range`.
    pub fn new(range: AddrRange) -> RegionPlanner {
        RegionPlanner {
            next: range.base,
            end: range.end(),
        }
    }

    /// Take the next `len` bytes (64 B-aligned).
    ///
    /// # Panics
    ///
    /// Panics when the range is exhausted — a configuration bug, not a
    /// runtime condition.
    pub fn take(&mut self, len: u64) -> AddrRange {
        let base = self.next.div_ceil(64) * 64;
        assert!(
            base + len <= self.end,
            "PM range exhausted: want {len} bytes at {base:#x}, end {:#x}",
            self.end
        );
        self.next = base + len;
        AddrRange::new(base, len)
    }

    /// Bytes still unplanned.
    pub fn remaining(&self) -> u64 {
        self.end.saturating_sub(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut p = RegionPlanner::new(AddrRange::new(100, 10_000));
        let a = p.take(1000);
        let b = p.take(1000);
        assert_eq!(a.base % 64, 0);
        assert_eq!(b.base % 64, 0);
        assert!(a.end() <= b.base);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_panics() {
        let mut p = RegionPlanner::new(AddrRange::new(0, 128));
        p.take(256);
    }

    #[test]
    fn remaining_decreases() {
        let mut p = RegionPlanner::new(AddrRange::new(0, 1024));
        let before = p.remaining();
        p.take(512);
        assert!(p.remaining() < before);
    }
}
