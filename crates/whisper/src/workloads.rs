//! Deterministic workload generators (Table 1, third column).
//!
//! Each generator reproduces the operation mix and skew of the driver
//! the paper used — YCSB and TPC-C "simple implementations ... shipped
//! with N-store", `redis-cli lru-test`, `memslap`, filebench's
//! `fileserver` profile, `postal`, and sysbench `OLTP-complex` — as a
//! seeded iterator of operations, so every run of the suite is
//! reproducible.

use pmrand::{Rng, SeedableRng, SmallRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Zipfian key sampler (YCSB's default request distribution).
///
/// Uses the standard harmonic-number construction with exponent
/// `theta`; sampling is a binary search over the precomputed CDF. The
/// CDF is built once per `(n, theta)` and shared process-wide behind an
/// `Arc`, so creating one generator per shard or per client stream
/// (the serving engine builds hundreds) costs a map lookup and a
/// refcount bump, not an O(n) harmonic-table rebuild.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Arc<[f64]>,
}

/// Process-wide cache of harmonic CDF tables, keyed by
/// `(n, theta.to_bits())`. Tables are small (one `f64` per key) and the
/// suite uses a handful of distinct shapes, so entries are never
/// evicted.
fn cdf_table(n: usize, theta: f64) -> Arc<[f64]> {
    type TableCache = Mutex<HashMap<(usize, u64), Arc<[f64]>>>;
    static CACHE: OnceLock<TableCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry((n, theta.to_bits()))
        .or_insert_with(|| {
            let mut cdf = Vec::with_capacity(n);
            let mut sum = 0.0;
            for i in 1..=n {
                sum += 1.0 / (i as f64).powf(theta);
                cdf.push(sum);
            }
            for v in &mut cdf {
                *v /= sum;
            }
            cdf.into()
        })
        .clone()
}

impl Zipf {
    /// A distribution over `n` keys with skew `theta` (0 = uniform,
    /// YCSB uses 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "need at least one key");
        Zipf {
            cdf: cdf_table(n, theta),
        }
    }

    /// Sample a key index in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One YCSB operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read a row.
    Read {
        /// Key index.
        key: u64,
    },
    /// Update some of a row's fields.
    Update {
        /// Key index.
        key: u64,
        /// Fields to overwrite (out of 10).
        fields: u8,
    },
    /// Insert a fresh row.
    Insert {
        /// Key index.
        key: u64,
    },
}

/// YCSB-like stream: zipfian keys, `write_pct` percent updates/inserts
/// (Table 1 runs N-store at 80 % writes).
pub fn ycsb(n_keys: usize, ops: usize, write_pct: u32, seed: u64) -> Vec<YcsbOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(n_keys, 0.99);
    (0..ops)
        .map(|_| {
            let key = zipf.sample(&mut rng) as u64;
            if rng.gen_range(0u32..100) < write_pct {
                if rng.gen_range(0..10) == 0 {
                    YcsbOp::Insert {
                        key: key + n_keys as u64,
                    }
                } else {
                    YcsbOp::Update {
                        key,
                        fields: rng.gen_range(4..=10),
                    }
                }
            } else {
                YcsbOp::Read { key }
            }
        })
        .collect()
}

/// One TPC-C-like transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpccTx {
    /// Insert an order with `items` order lines, updating stock rows.
    NewOrder {
        /// Customer key.
        customer: u64,
        /// Order-line item keys.
        items: Vec<u64>,
    },
    /// Update a customer's balance and the district totals.
    Payment {
        /// Customer key.
        customer: u64,
        /// Payment amount (cents).
        amount: u64,
    },
    /// Read a customer's latest order (read-only).
    OrderStatus {
        /// Customer key.
        customer: u64,
    },
}

/// TPC-C-like stream at roughly the paper's 40 %-write mix: the
/// classic 45/43/12 NewOrder/Payment/OrderStatus split over one
/// warehouse per client.
pub fn tpcc(n_customers: usize, n_items: usize, txs: usize, seed: u64) -> Vec<TpccTx> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..txs)
        .map(|_| {
            let customer = rng.gen_range(0..n_customers) as u64;
            match rng.gen_range(0..100) {
                0..=44 => TpccTx::NewOrder {
                    customer,
                    items: (0..rng.gen_range(5..=15))
                        .map(|_| rng.gen_range(0..n_items) as u64)
                        .collect(),
                },
                45..=87 => TpccTx::Payment {
                    customer,
                    amount: rng.gen_range(100..100_000),
                },
                _ => TpccTx::OrderStatus { customer },
            }
        })
        .collect()
}

/// One memslap operation (Memcached's load generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemslapOp {
    /// `get key`.
    Get {
        /// Key index.
        key: u64,
    },
    /// `set key value`.
    Set {
        /// Key index.
        key: u64,
        /// Value size in bytes.
        vsize: usize,
    },
}

/// memslap stream: zipfian keys, `set_pct` percent SETs (Table 1: 5 %).
pub fn memslap(n_keys: usize, ops: usize, set_pct: u32, seed: u64) -> Vec<MemslapOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(n_keys, 0.9);
    (0..ops)
        .map(|_| {
            let key = zipf.sample(&mut rng) as u64;
            if rng.gen_range(0u32..100) < set_pct {
                MemslapOp::Set {
                    key,
                    vsize: rng.gen_range(32..=256),
                }
            } else {
                MemslapOp::Get { key }
            }
        })
        .collect()
}

/// One redis lru-test operation: GET a key from a space larger than
/// the cache, SET it on a miss — `redis-cli --lru-test` simulates a
/// cache under eviction pressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruTestOp {
    /// Key index, drawn with a power-law bias toward recent keys.
    pub key: u64,
    /// Value size for the SET-on-miss path.
    pub vsize: usize,
}

/// redis lru-test stream over `n_keys` keys.
pub fn lru_test(n_keys: usize, ops: usize, seed: u64) -> Vec<LruTestOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(n_keys, 0.8);
    (0..ops)
        .map(|_| LruTestOp {
            key: zipf.sample(&mut rng) as u64,
            vsize: 64,
        })
        .collect()
}

/// One filebench `fileserver`-profile operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileserverOp {
    /// Create a file and write it whole.
    CreateWrite {
        /// File id within the working set.
        file: u64,
        /// Bytes to write.
        size: usize,
    },
    /// Append to an existing file.
    Append {
        /// File id.
        file: u64,
        /// Bytes to append.
        size: usize,
    },
    /// Read a whole file.
    ReadWhole {
        /// File id.
        file: u64,
    },
    /// `stat` a file.
    Stat {
        /// File id.
        file: u64,
    },
    /// Delete a file.
    Delete {
        /// File id.
        file: u64,
    },
}

/// fileserver profile: create/write, append, read, stat, delete in
/// filebench's characteristic 1:1:1:1:1-ish loop over a working set.
pub fn fileserver(n_files: usize, ops: usize, mean_size: usize, seed: u64) -> Vec<FileserverOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let file = rng.gen_range(0..n_files) as u64;
            let size = rng.gen_range(mean_size / 2..=mean_size * 2);
            match rng.gen_range(0..100) {
                0..=24 => FileserverOp::CreateWrite { file, size },
                25..=44 => FileserverOp::Append {
                    file,
                    size: size / 4,
                },
                45..=69 => FileserverOp::ReadWhole { file },
                70..=89 => FileserverOp::Stat { file },
                _ => FileserverOp::Delete { file },
            }
        })
        .collect()
}

/// One postal delivery: a message of `size` bytes for `mailbox`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostalMsg {
    /// Mailbox index (Table 1: 250 mailboxes).
    pub mailbox: u64,
    /// Message size in bytes (Table 1: 100 KB messages).
    pub size: usize,
}

/// postal stream: uniform mailboxes, log-normal-ish sizes around
/// `mean_size`.
pub fn postal(n_mailboxes: usize, msgs: usize, mean_size: usize, seed: u64) -> Vec<PostalMsg> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..msgs)
        .map(|_| PostalMsg {
            mailbox: rng.gen_range(0..n_mailboxes) as u64,
            size: rng.gen_range(mean_size / 2..=mean_size * 2),
        })
        .collect()
}

/// One sysbench OLTP-complex transaction (10 point selects, a range
/// scan, 2 index updates, and an insert+delete pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OltpTx {
    /// Rows for the point selects.
    pub point_selects: Vec<u64>,
    /// Range-scan start row and length.
    pub range: (u64, u64),
    /// Rows to update.
    pub updates: Vec<u64>,
    /// Row to insert then delete.
    pub insert_delete: u64,
}

/// sysbench OLTP-complex stream over a table of `n_rows`.
pub fn oltp(n_rows: usize, txs: usize, seed: u64) -> Vec<OltpTx> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..txs)
        .map(|_| OltpTx {
            point_selects: (0..10).map(|_| rng.gen_range(0..n_rows) as u64).collect(),
            range: (rng.gen_range(0..n_rows) as u64, rng.gen_range(10..=100)),
            updates: (0..2).map(|_| rng.gen_range(0..n_rows) as u64).collect(),
            insert_delete: rng.gen_range(0..n_rows) as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[500] * 5, "head much hotter than tail");
        // Determinism:
        let mut rng2 = SmallRng::seed_from_u64(1);
        let first: Vec<usize> = (0..10).map(|_| z.sample(&mut rng2)).collect();
        let mut rng3 = SmallRng::seed_from_u64(1);
        let second: Vec<usize> = (0..10).map(|_| z.sample(&mut rng3)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn zipf_tables_are_shared_not_rebuilt() {
        // Two generators with the same shape share one CDF allocation;
        // a different shape gets its own.
        let a = Zipf::new(4096, 0.99);
        let b = Zipf::new(4096, 0.99);
        assert!(Arc::ptr_eq(&a.cdf, &b.cdf), "same (n, theta) shares");
        let c = Zipf::new(4096, 0.9);
        assert!(!Arc::ptr_eq(&a.cdf, &c.cdf), "distinct theta is distinct");
        // Clones are cheap by construction and sample identically.
        let d = a.clone();
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        let s1: Vec<usize> = (0..32).map(|_| a.sample(&mut r1)).collect();
        let s2: Vec<usize> = (0..32).map(|_| d.sample(&mut r2)).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn ycsb_write_fraction_close_to_requested() {
        let ops = ycsb(1000, 10_000, 80, 7);
        let writes = ops
            .iter()
            .filter(|o| !matches!(o, YcsbOp::Read { .. }))
            .count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.8).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn tpcc_mix_matches_split() {
        let txs = tpcc(100, 1000, 10_000, 3);
        let orders = txs
            .iter()
            .filter(|t| matches!(t, TpccTx::NewOrder { .. }))
            .count();
        let frac = orders as f64 / txs.len() as f64;
        assert!((frac - 0.45).abs() < 0.02);
        for t in &txs {
            if let TpccTx::NewOrder { items, .. } = t {
                assert!((5..=15).contains(&items.len()));
            }
        }
    }

    #[test]
    fn memslap_set_fraction() {
        let ops = memslap(1000, 10_000, 5, 11);
        let sets = ops
            .iter()
            .filter(|o| matches!(o, MemslapOp::Set { .. }))
            .count();
        let frac = sets as f64 / ops.len() as f64;
        assert!((frac - 0.05).abs() < 0.01, "set fraction {frac}");
    }

    #[test]
    fn fileserver_covers_all_op_kinds() {
        let ops = fileserver(100, 5000, 16_384, 5);
        let kinds: std::collections::HashSet<u8> = ops
            .iter()
            .map(|o| match o {
                FileserverOp::CreateWrite { .. } => 0,
                FileserverOp::Append { .. } => 1,
                FileserverOp::ReadWhole { .. } => 2,
                FileserverOp::Stat { .. } => 3,
                FileserverOp::Delete { .. } => 4,
            })
            .collect();
        assert_eq!(kinds.len(), 5);
    }

    #[test]
    fn postal_sizes_bracket_mean() {
        let msgs = postal(250, 1000, 8192, 9);
        assert!(msgs.iter().all(|m| m.size >= 4096 && m.size <= 16_384));
        assert!(msgs.iter().all(|m| m.mailbox < 250));
    }

    #[test]
    fn oltp_shape() {
        let txs = oltp(10_000, 100, 13);
        for t in &txs {
            assert_eq!(t.point_selects.len(), 10);
            assert_eq!(t.updates.len(), 2);
            assert!(t.range.1 >= 10 && t.range.1 <= 100);
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        assert_eq!(ycsb(100, 50, 80, 42), ycsb(100, 50, 80, 42));
        assert_eq!(tpcc(10, 100, 50, 42), tpcc(10, 100, 50, 42));
        assert_eq!(memslap(100, 50, 5, 42), memslap(100, 50, 5, 42));
        assert_eq!(lru_test(100, 50, 42), lru_test(100, 50, 42));
        assert_eq!(fileserver(10, 50, 1024, 42), fileserver(10, 50, 1024, 42));
        assert_eq!(postal(10, 50, 1024, 42), postal(10, 50, 1024, 42));
        assert_eq!(oltp(100, 50, 42), oltp(100, 50, 42));
    }
}
