//! Machine-readable suite report (`whisper-report --json`).
//!
//! One versioned JSON document bundling everything the text report
//! shows — Table 1, Figures 3–6 and 10, the Section 5.2 byte
//! accounting — plus the suite-wide [`MemStats`] totals and a dump of
//! the [`pmobs`] metrics registry. The encoder is
//! [`pmobs::json`]; no external serialization crate is involved.
//!
//! # Schema (version 8)
//!
//! Version 8 = version 7 plus `config.worker_threads` (the scheduler
//! client count inside the interleaved applications, the `--threads`
//! flag). Version 7 = version 6 plus the `hb` section (`null` unless the run
//! built epoch dependency graphs with `--check-graph` or
//! cross-validated the HB analysis with `--crossval`) and
//! `rules_enabled` inside `violations`; every v6 key is otherwise
//! unchanged. Version 6 = version 5 plus the `optimize` section
//! (`null` unless the run swept the ordering optimizer with
//! `whisper-report --optimize`); every v5 key is otherwise unchanged.
//! Version 5 =
//! version 4 plus the `profile` section (`null` unless the
//! run profiled the serving sweep with `whisper-report --profile`);
//! every v4 key is otherwise unchanged. Version 4 = version 3 plus the
//! `serve` section (`null` unless the run swept the open-loop serving
//! engine with `whisper-report --serve`) and `p999` in every metrics
//! histogram. Version 3 = version 2 plus the `crash` section and
//! `config.effective_ops`. Version 2 = version 1 plus `violations`.
//!
//! ```text
//! schema_version   u64     always 8 for this layout
//! config           obj     {scale, seed, parallelism, worker_threads,
//!                           effective_ops: {app: ops}}
//! table1           arr     one obj per app, Table 1 order:
//!                          {name, workload, threads, epochs,
//!                           duration_ns, epochs_per_sec,
//!                           paper_epochs_per_sec}
//! fig3             arr     {name, median, mean, max, tx_count,
//!                           paper_median} — nulls when no transactions
//! fig4             obj     {bucket_labels, apps: [{name, fractions}]}
//! fig5             arr     {name, self_pct, cross_pct,
//!                           paper_self_pct, paper_cross_pct}
//! fig6             obj     {apps: [{name, pm_pct, paper_pm_pct}],
//!                           average_pm_pct, paper_average_pm_pct}
//!                          (gem5-subset apps only)
//! fig10            obj     {models, apps: [{name, normalized}],
//!                           average, paper_average}
//! amplification    arr     {name, amplification, user_bytes,
//!                           overhead_bytes, bytes_by_category}
//! nt_fraction      arr     {name, fraction} — null when no PM bytes
//! small_writes     arr     {name, fraction} — null when no singletons
//! totals           obj     merged MemStats: {dram_accesses, pm_reads,
//!                           pm_writes, pm_fraction, pm_read_fraction,
//!                           pm_write_fraction}
//! metrics          obj     {counters, gauges, histograms} from the
//!                          pmobs registry; histograms carry
//!                          {unit, count, sum, min, max, mean,
//!                           p50, p90, p99, p999}. Empty objects when
//!                          recording was off.
//! violations       obj?    pmcheck results (`crate::check`):
//!                          {checked_apps, rules_enabled,
//!                           total_errors, total_warnings, by_rule,
//!                           apps: [{name, events,
//!                           errors, warnings, by_rule, findings,
//!                           findings_truncated}]}. `null` when the
//!                          run was not checked. `rules_enabled` lists
//!                          the `--check-rules` selection the check
//!                          ran under (all rule ids by default).
//! crash            obj?    crash-campaign results
//!                          (`crate::crashtest::crash_json`):
//!                          {points_per_app, adversarial_seeds,
//!                           total_images, total_failures,
//!                           apps: [{name, ops, fence_events, points,
//!                           images, failures}]}. `null` when the run
//!                          did not sweep the campaign.
//! serve            obj?    open-loop serving sweep
//!                          (`crate::serve::serve_json`):
//!                          {shards, arrival, load_fractions, models,
//!                           apps: [{name, shards, requests,
//!                           offered_rps, curves: [{model,
//!                           mean_service_ns, capacity_rps,
//!                           points: [{offered_rps, achieved_rps,
//!                           requests, p50_ns, p90_ns, p99_ns,
//!                           p999_ns, mean_wait_ns}]}]}]}. All on the
//!                          simulated clock — deterministic per
//!                          (scale, seed, shards, arrival), but
//!                          outside the golden deterministic subset,
//!                          like `crash`. `null` when the run did not
//!                          sweep the serving engine.
//! profile          obj?    phase profile of the serving sweep
//!                          (`crate::profile::profile_json`):
//!                          {shards, arrival, load_fractions, models,
//!                           apps: [{name, mechanisms: [{model,
//!                           queue_ns, replay_ns, fence_stall_ns,
//!                           service_ns, total_ns,
//!                           tail: [{load_fraction, offered_rps,
//!                           p99_ns, tail_requests, tail_total_ns,
//!                           queue_pct, replay_pct,
//!                           fence_stall_pct}]}]}]}. Simulated clock
//!                          only, deterministic like `serve`; `null`
//!                          when the run was not profiled.
//! optimize         obj?    ordering-optimizer results
//!                          (`crate::optimize::optimize_json`):
//!                          {total_elided, crash_failures,
//!                           gates: {check_clean, crash_ok, violations},
//!                           apps: [{name, events, elided, epochs,
//!                           check, speedup}],
//!                           crash: [{name, planned_flushes,
//!                           planned_fences, elided_flushes,
//!                           elided_fences, flush_vetoes, fence_vetoes,
//!                           baseline_fences, fence_events, images,
//!                           failures}]}. Simulated clock only,
//!                          deterministic like `serve`; `null` when the
//!                          run did not sweep the optimizer.
//! hb               obj?    happens-before analysis artifacts:
//!                          {graph: obj?, crossval: obj?}. `graph`
//!                          (`crate::hbgraph::stats_json`) carries the
//!                          per-app epoch dependency statistics
//!                          {apps: [{name, threads, epochs, po_edges,
//!                           cross_edges, epochs_with_cross_dep,
//!                           max_antichain}], total_epochs,
//!                           total_cross_edges} when the run passed
//!                          `--check-graph`, else `null`. `crossval`
//!                          (`crate::crossval`) carries the
//!                          HB-vs-crash-image gate {apps: [{name,
//!                           points, images, proven_lines,
//!                           violations}], control, total_images,
//!                           total_violations, total_proven_lines,
//!                           passed} when the run passed `--crossval`,
//!                          else `null`. The whole section is `null`
//!                          when neither flag was given.
//! ```
//!
//! Clock-domain rule (see `pmobs::span`): metric names under `sim.*`
//! are measured on the deterministic simulated clock and reproduce
//! bit-for-bit for a fixed seed; `span.*` and `suite.queue_wait_ns/*`
//! are host wall-clock and vary run to run.

use crate::report::{PaperRow, PAPER, PAPER_FIG10_AVG};
use crate::suite::{AppResult, SuiteConfig, SIM_APPS};
use memsim::MemStats;
use pmobs::metrics::HistogramSnapshot;
use pmobs::{Json, MetricsSnapshot};
use pmtrace::analysis::SIZE_BUCKET_LABELS;
use pmtrace::Category;

/// Version stamp of the report layout documented above.
pub const SCHEMA_VERSION: u64 = 8;

fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER.iter().find(|r| r.name == name)
}

fn f64s(values: impl IntoIterator<Item = f64>) -> Vec<Json> {
    values.into_iter().map(Json::from).collect()
}

fn table1(results: &[AppResult]) -> Json {
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("workload", r.run.workload.as_str())
                .field("threads", r.run.threads)
                .field("epochs", r.analysis.epoch_count as u64)
                .field("duration_ns", r.run.duration_ns)
                .field("epochs_per_sec", r.analysis.epochs_per_sec)
                .field(
                    "paper_epochs_per_sec",
                    paper_row(&r.run.name).map(|p| p.epochs_per_sec),
                )
        })
        .collect();
    Json::from(rows)
}

fn fig3(results: &[AppResult]) -> Json {
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            let t = &r.analysis.tx_stats;
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("median", t.median())
                .field("mean", t.mean())
                .field("max", t.max())
                .field("tx_count", t.tx_count() as u64)
                .field(
                    "paper_median",
                    paper_row(&r.run.name).map(|p| p.fig3_median),
                )
        })
        .collect();
    Json::from(rows)
}

fn fig4(results: &[AppResult]) -> Json {
    let labels: Vec<Json> = SIZE_BUCKET_LABELS.iter().map(|l| Json::from(*l)).collect();
    let apps: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("fractions", f64s(r.analysis.size_hist.fractions()))
        })
        .collect();
    Json::obj()
        .field("bucket_labels", labels)
        .field("apps", apps)
}

fn fig5(results: &[AppResult]) -> Json {
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            let p = paper_row(&r.run.name);
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("self_pct", r.analysis.deps.self_fraction() * 100.0)
                .field("cross_pct", r.analysis.deps.cross_fraction() * 100.0)
                .field("paper_self_pct", p.map(|p| p.fig5_self_pct))
                .field("paper_cross_pct", p.map(|p| p.fig5_cross_pct))
        })
        .collect();
    Json::from(rows)
}

fn fig6(results: &[AppResult]) -> Json {
    let sim: Vec<&AppResult> = results
        .iter()
        .filter(|r| SIM_APPS.contains(&r.run.name.as_str()))
        .collect();
    let apps: Vec<Json> = sim
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("pm_pct", r.analysis.pm_fraction * 100.0)
                .field(
                    "paper_pm_pct",
                    paper_row(&r.run.name).and_then(|p| p.fig6_pm_pct),
                )
        })
        .collect();
    let average = if sim.is_empty() {
        Json::Null
    } else {
        Json::from(
            sim.iter()
                .map(|r| r.analysis.pm_fraction * 100.0)
                .sum::<f64>()
                / sim.len() as f64,
        )
    };
    Json::obj()
        .field("apps", apps)
        .field("average_pm_pct", average)
        .field("paper_average_pm_pct", 3.54)
}

fn fig10(results: &[AppResult]) -> Json {
    let models: Vec<Json> = PAPER_FIG10_AVG
        .iter()
        .map(|(m, _)| Json::from(m.to_string()))
        .collect();
    let sim: Vec<&AppResult> = results
        .iter()
        .filter(|r| SIM_APPS.contains(&r.run.name.as_str()) && !r.analysis.fig10.is_empty())
        .collect();
    let apps: Vec<Json> = sim
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("normalized", f64s(r.analysis.fig10.iter().map(|(_, v)| *v)))
        })
        .collect();
    let average = if sim.is_empty() {
        Json::from(Vec::new())
    } else {
        f64s(
            (0..PAPER_FIG10_AVG.len())
                .map(|i| sim.iter().map(|r| r.analysis.fig10[i].1).sum::<f64>() / sim.len() as f64),
        )
        .into()
    };
    Json::obj()
        .field("models", models)
        .field("apps", apps)
        .field("average", average)
        .field(
            "paper_average",
            f64s(PAPER_FIG10_AVG.iter().map(|(_, v)| *v)),
        )
}

fn amplification(results: &[AppResult]) -> Json {
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            let a = &r.analysis.amplification;
            let mut by_cat = Json::obj();
            for cat in Category::ALL {
                by_cat = by_cat.field(&cat.to_string(), a.bytes(cat));
            }
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("amplification", a.amplification())
                .field("user_bytes", a.user_bytes())
                .field("overhead_bytes", a.overhead_bytes())
                .field("bytes_by_category", by_cat)
        })
        .collect();
    Json::from(rows)
}

fn fraction_rows(results: &[AppResult], pick: impl Fn(&AppResult) -> Option<f64>) -> Json {
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.run.name.as_str())
                .field("fraction", pick(r))
        })
        .collect();
    Json::from(rows)
}

fn totals(results: &[AppResult]) -> Json {
    let mut t = MemStats::default();
    for r in results {
        t.merge(&r.run.stats);
    }
    Json::obj()
        .field("dram_accesses", t.dram_accesses)
        .field("pm_reads", t.pm_reads)
        .field("pm_writes", t.pm_writes)
        .field("pm_fraction", t.pm_fraction())
        .field("pm_read_fraction", t.pm_read_fraction())
        .field("pm_write_fraction", t.pm_write_fraction())
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::obj()
        .field("unit", h.unit.as_str())
        .field("count", h.count)
        .field("sum", h.sum)
        .field("min", h.min)
        .field("max", h.max)
        .field("mean", h.mean())
        .field("p50", h.percentile(50.0))
        .field("p90", h.percentile(90.0))
        .field("p99", h.percentile(99.0))
        .field("p999", h.percentile(99.9))
}

/// Serialize a [`MetricsSnapshot`]; empty objects when nothing was
/// recorded (recording off).
pub fn metrics_json(snap: &MetricsSnapshot) -> Json {
    let mut counters = Json::obj();
    for (name, v) in &snap.counters {
        counters = counters.field(name, *v);
    }
    let mut gauges = Json::obj();
    for (name, v) in &snap.gauges {
        gauges = gauges.field(name, *v);
    }
    let mut histograms = Json::obj();
    for (name, h) in &snap.histograms {
        histograms = histograms.field(name, histogram_json(h));
    }
    Json::obj()
        .field("counters", counters)
        .field("gauges", gauges)
        .field("histograms", histograms)
}

/// Assemble the full schema-version-8 report document. `checks` is the
/// per-app pmcheck outcome when the run was checked (`--check`), with
/// the rule selection it ran under; the `violations` key serializes as
/// `null` otherwise.
pub fn build_checked(
    results: &[AppResult],
    cfg: &SuiteConfig,
    metrics: &MetricsSnapshot,
    checks: Option<&[crate::check::AppCheck]>,
    rules: pmcheck::RuleSet,
) -> Json {
    build(results, cfg, metrics).field(
        "violations",
        match checks {
            Some(c) => crate::check::violations_json(c, rules),
            None => Json::Null,
        },
    )
}

/// Assemble the report document without the optional
/// `violations`/`crash`/`serve`/`profile`/`optimize`/`hb` sections
/// (the plain-run shape: all six `null`).
pub fn build(results: &[AppResult], cfg: &SuiteConfig, metrics: &MetricsSnapshot) -> Json {
    let mut effective_ops = Json::obj();
    for r in results {
        // Archive replays and other synthetic rows have no op base.
        if let Some(ops) = cfg.effective_ops(&r.run.name) {
            effective_ops = effective_ops.field(&r.run.name, ops as u64);
        }
    }
    Json::obj()
        .field("schema_version", SCHEMA_VERSION)
        .field(
            "config",
            Json::obj()
                .field("scale", cfg.scale)
                .field("seed", cfg.seed)
                .field("parallelism", cfg.parallelism as u64)
                .field("worker_threads", u64::from(cfg.worker_threads))
                .field("effective_ops", effective_ops),
        )
        .field("table1", table1(results))
        .field("fig3", fig3(results))
        .field("fig4", fig4(results))
        .field("fig5", fig5(results))
        .field("fig6", fig6(results))
        .field("fig10", fig10(results))
        .field("amplification", amplification(results))
        .field(
            "nt_fraction",
            fraction_rows(results, |r| r.analysis.nt_fraction),
        )
        .field(
            "small_writes",
            fraction_rows(results, |r| r.analysis.small_singleton_fraction),
        )
        .field("totals", totals(results))
        .field("metrics", metrics_json(metrics))
        .field("violations", Json::Null)
        .field("crash", Json::Null)
        .field("serve", Json::Null)
        .field("profile", Json::Null)
        .field("optimize", Json::Null)
        .field("hb", Json::Null)
}

/// The keys of the *deterministic* sections of the report: everything
/// that depends only on `(scale, seed)` and therefore reproduces
/// byte-for-byte across runs, hosts, and parallelism settings. Excluded
/// are `config` (carries the host-dependent worker count), `metrics`
/// (host wall-clock histograms), and the optional `violations`/`crash`/
/// `serve`/`profile`/`optimize` sections (deterministic but
/// sweep-dependent — they have their own gates). The golden-report equivalence gate
/// (`tests/golden_report.rs`, CI) compares exactly these sections, so
/// any hot-path change to the simulator that perturbs results is caught
/// mechanically.
pub const DETERMINISTIC_KEYS: [&str; 11] = [
    "schema_version",
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig10",
    "amplification",
    "nt_fraction",
    "small_writes",
    "totals",
];

/// Project the deterministic sections ([`DETERMINISTIC_KEYS`]) out of a
/// full report document, preserving key order.
pub fn deterministic_subset(doc: &Json) -> Json {
    let mut out = Json::obj();
    for key in DETERMINISTIC_KEYS {
        if let Some(v) = doc.get(key) {
            out = out.field(key, v.clone());
        }
    }
    out
}

/// The top-level keys every version-8 document carries, in order —
/// shared between [`build`], the tests, and CI validation.
pub const REQUIRED_KEYS: [&str; 19] = [
    "schema_version",
    "config",
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig10",
    "amplification",
    "nt_fraction",
    "small_writes",
    "totals",
    "metrics",
    "violations",
    "crash",
    "serve",
    "profile",
    "optimize",
    "hb",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_apps, SuiteConfig};

    #[test]
    fn report_round_trips_and_has_every_key() {
        let cfg = SuiteConfig {
            scale: 0.008,
            seed: 7,
            parallelism: 1,
            worker_threads: 4,
        };
        let results = run_apps(&["hashmap", "nfs"], &cfg);
        let doc = build(&results, &cfg, &MetricsSnapshot::default());
        for key in REQUIRED_KEYS {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        let parsed = pmobs::json::parse(&doc.to_pretty()).expect("pretty output parses");
        // Integral floats normalize to integers on parse, so compare
        // the re-encoded parsed form with itself round-tripped.
        let again = pmobs::json::parse(&parsed.to_compact()).expect("compact output parses");
        assert_eq!(again, parsed);
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(8.0)
        );
        assert_eq!(
            doc.get("violations"),
            Some(&Json::Null),
            "unchecked runs carry violations: null"
        );
        assert_eq!(
            doc.get("crash"),
            Some(&Json::Null),
            "non-campaign runs carry crash: null"
        );
        assert_eq!(
            doc.get("serve"),
            Some(&Json::Null),
            "non-serving runs carry serve: null"
        );
        assert_eq!(
            doc.get("profile"),
            Some(&Json::Null),
            "unprofiled runs carry profile: null"
        );
        assert_eq!(
            doc.get("optimize"),
            Some(&Json::Null),
            "unoptimized runs carry optimize: null"
        );
        assert_eq!(
            doc.get("hb"),
            Some(&Json::Null),
            "runs without --check-graph/--crossval carry hb: null"
        );
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("effective_ops"))
                .and_then(|e| e.get("nfs"))
                .and_then(Json::as_f64),
            Some(32.0),
            "nfs base 4000 at scale 0.008 = 32 effective ops"
        );
        assert_eq!(
            parsed
                .get("table1")
                .and_then(|t| t.as_arr())
                .map(<[Json]>::len),
            Some(2)
        );
        // hashmap is a gem5-subset app, so fig6/fig10 have one row each.
        let fig6_apps = parsed.get("fig6").and_then(|f| f.get("apps")).unwrap();
        assert_eq!(fig6_apps.as_arr().unwrap().len(), 1);
        let fig10_apps = parsed.get("fig10").and_then(|f| f.get("apps")).unwrap();
        assert_eq!(fig10_apps.as_arr().unwrap().len(), 1);
    }

    #[test]
    fn checked_build_fills_violations() {
        let cfg = SuiteConfig {
            scale: 0.008,
            seed: 7,
            parallelism: 1,
            worker_threads: 4,
        };
        let results = run_apps(&["exim"], &cfg);
        let checks = crate::check::check_results(&results);
        let doc = build_checked(
            &results,
            &cfg,
            &MetricsSnapshot::default(),
            Some(&checks),
            pmcheck::RuleSet::all(),
        );
        let v = doc.get("violations").expect("violations present");
        assert_eq!(v.get("checked_apps").and_then(Json::as_f64), Some(1.0));
        assert!(v.get("apps").and_then(|a| a.as_arr()).is_some());
        // The deterministic subset ignores checking and crash sweeps
        // entirely, so the golden gate is unaffected by --check/--crash.
        assert!(deterministic_subset(&doc).get("violations").is_none());
        assert!(deterministic_subset(&doc).get("crash").is_none());
        assert!(deterministic_subset(&doc).get("serve").is_none());
        assert!(deterministic_subset(&doc).get("profile").is_none());
        assert!(deterministic_subset(&doc).get("optimize").is_none());
        assert!(deterministic_subset(&doc).get("hb").is_none());
        assert!(deterministic_subset(&doc).get("config").is_none());
    }

    #[test]
    fn metrics_json_reflects_snapshot() {
        let reg = pmobs::Registry::new();
        reg.counter("a.count").add(3);
        reg.gauge("a.high").observe(9);
        reg.histogram("a.hist", pmobs::Unit::Nanos).record(100);
        let doc = metrics_json(&reg.snapshot());
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("a.high"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
        let h = doc.get("histograms").and_then(|h| h.get("a.hist")).unwrap();
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(1.0));
        assert_eq!(h.get("unit").and_then(|v| v.as_str()), Some("ns"));
    }

    #[test]
    fn metrics_dump_keys_are_sorted() {
        let reg = pmobs::Registry::new();
        // Insert in deliberately unsorted order; the snapshot's BTreeMaps
        // must pin the dump to lexicographic key order regardless.
        for name in ["z.last", "a.first", "m.middle"] {
            reg.counter(name).add(1);
            reg.gauge(name).observe(1);
            reg.histogram(name, pmobs::Unit::Nanos).record(1);
        }
        let doc = metrics_json(&reg.snapshot());
        for section in ["counters", "gauges", "histograms"] {
            let Some(Json::Obj(fields)) = doc.get(section) else {
                panic!("{section} missing or not an object");
            };
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "{section} keys not sorted");
        }
    }

    /// Every object that reports a p50 percentile must also report p999
    /// (same suffix convention: `p50` pairs with `p999`, `p50_ns` with
    /// `p999_ns`) — pins the "p999 everywhere p50/p90/p99 appear" rule.
    fn assert_p999_accompanies_p50(doc: &Json, path: &str) {
        if let Json::Obj(fields) = doc {
            for suffix in ["", "_ns"] {
                let p50 = format!("p50{suffix}");
                let p999 = format!("p999{suffix}");
                if fields.iter().any(|(k, _)| *k == p50) {
                    assert!(
                        fields.iter().any(|(k, _)| *k == p999),
                        "{path}: has {p50} but no {p999}"
                    );
                }
            }
        }
        match doc {
            Json::Obj(fields) => {
                for (k, v) in fields {
                    assert_p999_accompanies_p50(v, &format!("{path}.{k}"));
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    assert_p999_accompanies_p50(v, &format!("{path}[{i}]"));
                }
            }
            _ => {}
        }
    }

    #[test]
    fn p999_emitted_wherever_p50_appears() {
        let cfg = SuiteConfig {
            scale: 0.008,
            seed: 7,
            parallelism: 1,
            worker_threads: 4,
        };
        let results = run_apps(&["hashmap"], &cfg);
        let reg = pmobs::Registry::new();
        reg.histogram("walk.hist", pmobs::Unit::Nanos).record(42);
        let doc = build(&results, &cfg, &reg.snapshot());
        assert_p999_accompanies_p50(&doc, "report");
        // And the rule holds vacuously only if p50 appears at all.
        assert!(
            doc.to_compact().contains("\"p50\""),
            "test lost its teeth: no p50 in the document"
        );
    }

    #[test]
    fn empty_snapshot_serializes_to_empty_objects() {
        let doc = metrics_json(&MetricsSnapshot::default());
        assert_eq!(
            doc.to_compact(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
    }
}
