//! Ordering optimizer (`whisper-report --optimize`).
//!
//! The checker's P-REDUNDANT-FLUSH and P-DOUBLE-FENCE findings are not
//! just diagnostics — each one is a persistence instruction the
//! application paid for and did not need. This module turns those
//! findings into measured speedup: every Table 1 trace is rewritten by
//! [`pmcheck::rewrite_events`] (flagged flushes and fences elided to a
//! fixpoint), and both the original and optimized traces are replayed
//! under the Figure 10 timing models to price the earned improvement.
//!
//! Two gates keep the rewrite honest:
//!
//! * **Re-check** — the optimized trace must carry zero remaining
//!   elidable findings and no new errors ([`AppOptimize::is_clean`]).
//! * **Crash campaign** — every Table 1 workload is re-executed with
//!   the flagged instructions machine-elided
//!   ([`crate::crashtest::run_optimized_campaign`]) and every recovery
//!   oracle must still pass on every crash image. An optimization that
//!   only survives replay is a guess; one that survives the full
//!   point × spec crash lattice has been tested where it matters.

use crate::crashtest::{run_optimized_campaign, CampaignConfig, OptimizedCrashReport};
use crate::suite::AppResult;
use hops::{replay, HopsConfig, PersistModel, TimingConfig};
use pmcheck::rewrite::is_elidable;
use pmobs::Json;
use pmtrace::analysis::split_epochs;
use pmtrace::Event;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The three mechanisms the optimize section prices, mirroring the
/// serving engine's model set: the x86-64 baseline, HOPS, and the
/// persist-write-queue variant.
pub const OPT_MODELS: [PersistModel; 3] = [
    PersistModel::X86Nvm,
    PersistModel::HopsNvm,
    PersistModel::X86Pwq,
];

/// Original vs optimized simulated runtime under one persistence model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpeedup {
    /// The replayed mechanism.
    pub model: PersistModel,
    /// Simulated runtime of the original trace (ns).
    pub base_ns: u64,
    /// Simulated runtime of the optimized trace (ns).
    pub optimized_ns: u64,
}

impl ModelSpeedup {
    /// Earned speedup (> 1.0 means the optimized trace is faster).
    pub fn speedup(&self) -> f64 {
        if self.optimized_ns == 0 {
            1.0
        } else {
            self.base_ns as f64 / self.optimized_ns as f64
        }
    }
}

/// One application's optimize outcome.
#[derive(Debug, Clone)]
pub struct AppOptimize {
    /// Table 1 application name.
    pub name: String,
    /// Trace events before the rewrite.
    pub events_before: usize,
    /// Trace events after the rewrite.
    pub events_after: usize,
    /// Redundant flushes elided.
    pub elided_flushes: usize,
    /// No-work fences elided.
    pub elided_fences: usize,
    /// Check → elide rounds to converge (≥ 1; the last is clean).
    pub rewrite_rounds: usize,
    /// Epochs in the original trace.
    pub epochs_before: usize,
    /// Epochs in the optimized trace (eliding fences merges epochs).
    pub epochs_after: usize,
    /// Mean epoch size (unique lines) before.
    pub mean_epoch_lines_before: f64,
    /// Mean epoch size (unique lines) after.
    pub mean_epoch_lines_after: f64,
    /// Error-severity findings in the original trace.
    pub errors_before: usize,
    /// Error-severity findings in the optimized trace (gate: no new).
    pub errors_after: usize,
    /// Elidable findings still present after the rewrite (gate: 0).
    pub residual_flagged: usize,
    /// Original vs optimized runtime per mechanism, [`OPT_MODELS`] order.
    pub speedups: Vec<ModelSpeedup>,
}

impl AppOptimize {
    /// Total instructions elided from this app's trace.
    pub fn elided_total(&self) -> usize {
        self.elided_flushes + self.elided_fences
    }

    /// The re-check gate: the optimized trace has no leftover elidable
    /// findings and no errors the original trace didn't have.
    pub fn is_clean(&self) -> bool {
        self.residual_flagged == 0 && self.errors_after <= self.errors_before
    }
}

/// The whole `--optimize` section: per-app rewrite results plus the
/// crash-campaign soundness gate.
#[derive(Debug)]
pub struct OptimizeReport {
    /// Per-app rewrite + replay outcomes, Table 1 order.
    pub apps: Vec<AppOptimize>,
    /// The optimized crash campaign, Table 1 order.
    pub crash: Vec<OptimizedCrashReport>,
}

impl OptimizeReport {
    /// Total instructions elided across the suite's traces.
    pub fn total_elided(&self) -> usize {
        self.apps.iter().map(AppOptimize::elided_total).sum()
    }

    /// Oracle rejections across the optimized crash campaign.
    pub fn crash_failures(&self) -> usize {
        self.crash.iter().map(|r| r.report.failures.len()).sum()
    }

    /// Every gate violation, as human-readable lines (empty = pass).
    pub fn gate_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.apps {
            if a.residual_flagged > 0 {
                out.push(format!(
                    "{}: {} elidable finding(s) remain after rewrite",
                    a.name, a.residual_flagged
                ));
            }
            if a.errors_after > a.errors_before {
                out.push(format!(
                    "{}: rewrite introduced errors ({} -> {})",
                    a.name, a.errors_before, a.errors_after
                ));
            }
        }
        for r in &self.crash {
            if !r.report.failures.is_empty() {
                out.push(format!(
                    "{}: {} recovery failure(s) on the optimized schedule",
                    r.report.name,
                    r.report.failures.len()
                ));
            }
        }
        out
    }
}

fn mean_epoch_lines(events: &[Event]) -> (usize, f64) {
    let epochs = split_epochs(events);
    let n = epochs.len();
    if n == 0 {
        return (0, 0.0);
    }
    let lines: usize = epochs.iter().map(pmtrace::Epoch::unique_lines).sum();
    (n, lines as f64 / n as f64)
}

/// Rewrite one app's trace and price the difference.
fn optimize_app(result: &AppResult) -> AppOptimize {
    let _span = pmobs::span!("optimize.app", result.run.name.as_str());
    let events = &result.run.events;
    let before = pmcheck::check_events(events);
    let rw = pmcheck::rewrite_events(events);
    let after = pmcheck::check_events(&rw.events);
    let residual_flagged = after
        .findings
        .iter()
        .filter(|f| is_elidable(f.rule))
        .count();
    let (epochs_before, mean_before) = mean_epoch_lines(events);
    let (epochs_after, mean_after) = mean_epoch_lines(&rw.events);
    let timing = TimingConfig::default();
    let hops_cfg = HopsConfig::default();
    let speedups = OPT_MODELS
        .iter()
        .map(|&model| ModelSpeedup {
            model,
            base_ns: replay(events, &timing, &hops_cfg, model).runtime_ns,
            optimized_ns: replay(&rw.events, &timing, &hops_cfg, model).runtime_ns,
        })
        .collect();
    pmobs::count!("optimize.elided", rw.elided_total() as u64);
    AppOptimize {
        name: result.run.name.clone(),
        events_before: events.len(),
        events_after: rw.events.len(),
        elided_flushes: rw.elided_flushes,
        elided_fences: rw.elided_fences,
        rewrite_rounds: rw.rounds,
        epochs_before,
        epochs_after,
        mean_epoch_lines_before: mean_before,
        mean_epoch_lines_after: mean_after,
        errors_before: before.errors(),
        errors_after: after.errors(),
        residual_flagged,
        speedups,
    }
}

/// Rewrite, re-check, and price every suite trace (fanned out across
/// `parallelism` workers — each app is independent, so results are
/// identical to the serial order), then re-run the crash campaign over
/// the elided schedules.
pub fn optimize_results(
    results: &[AppResult],
    campaign: &CampaignConfig,
    parallelism: usize,
) -> OptimizeReport {
    let _span = pmobs::span!("optimize.suite");
    let workers = parallelism.clamp(1, results.len().max(1));
    let apps = if workers == 1 {
        results.iter().map(optimize_app).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let finished: Mutex<Vec<(usize, AppOptimize)>> =
            Mutex::new(Vec::with_capacity(results.len()));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(r) = results.get(i) else { break };
                    let app = optimize_app(r);
                    finished.lock().unwrap().push((i, app));
                });
            }
        });
        let mut slots = finished.into_inner().unwrap();
        slots.sort_unstable_by_key(|(i, _)| *i);
        slots.into_iter().map(|(_, a)| a).collect()
    };
    let crash = run_optimized_campaign(campaign);
    OptimizeReport { apps, crash }
}

/// The `optimize` section of the schema-v6 JSON report.
///
/// ```text
/// {total_elided, crash_failures, gates: {check_clean, crash_ok},
///  apps: [{name, events: {before, after},
///          elided: {flushes, fences, rounds},
///          epochs: {before, after, mean_lines_before, mean_lines_after},
///          check: {errors_before, errors_after, residual_flagged},
///          speedup: {"<model>": {base_ns, optimized_ns, speedup}, ...}}],
///  crash: [{name, planned_flushes, planned_fences, elided_flushes,
///           elided_fences, flush_vetoes, fence_vetoes, baseline_fences,
///           fence_events, images, failures}]}
/// ```
pub fn optimize_json(report: &OptimizeReport) -> Json {
    let apps: Vec<Json> = report
        .apps
        .iter()
        .map(|a| {
            let mut speedup = Json::obj();
            for s in &a.speedups {
                speedup = speedup.field(
                    &s.model.to_string(),
                    Json::obj()
                        .field("base_ns", s.base_ns)
                        .field("optimized_ns", s.optimized_ns)
                        .field("speedup", s.speedup()),
                );
            }
            Json::obj()
                .field("name", a.name.as_str())
                .field(
                    "events",
                    Json::obj()
                        .field("before", a.events_before as u64)
                        .field("after", a.events_after as u64),
                )
                .field(
                    "elided",
                    Json::obj()
                        .field("flushes", a.elided_flushes as u64)
                        .field("fences", a.elided_fences as u64)
                        .field("rounds", a.rewrite_rounds as u64),
                )
                .field(
                    "epochs",
                    Json::obj()
                        .field("before", a.epochs_before as u64)
                        .field("after", a.epochs_after as u64)
                        .field("mean_lines_before", a.mean_epoch_lines_before)
                        .field("mean_lines_after", a.mean_epoch_lines_after),
                )
                .field(
                    "check",
                    Json::obj()
                        .field("errors_before", a.errors_before as u64)
                        .field("errors_after", a.errors_after as u64)
                        .field("residual_flagged", a.residual_flagged as u64),
                )
                .field("speedup", speedup)
        })
        .collect();
    let crash: Vec<Json> = report
        .crash
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.report.name)
                .field("planned_flushes", r.planned_flushes as u64)
                .field("planned_fences", r.planned_fences as u64)
                .field("elided_flushes", r.elide.flushes_elided)
                .field("elided_fences", r.elide.fences_elided)
                .field("flush_vetoes", r.elide.flush_vetoes)
                .field("fence_vetoes", r.elide.fence_vetoes)
                .field("baseline_fences", r.baseline_fences)
                .field("fence_events", r.report.fence_events)
                .field("images", r.report.images as u64)
                .field("failures", r.report.failures.len() as u64)
        })
        .collect();
    let violations = report.gate_violations();
    Json::obj()
        .field("total_elided", report.total_elided() as u64)
        .field("crash_failures", report.crash_failures() as u64)
        .field(
            "gates",
            Json::obj()
                .field("check_clean", report.apps.iter().all(AppOptimize::is_clean))
                .field("crash_ok", report.crash_failures() == 0)
                .field(
                    "violations",
                    violations
                        .iter()
                        .map(|v| Json::from(v.as_str()))
                        .collect::<Vec<Json>>(),
                ),
        )
        .field("apps", apps)
        .field("crash", crash)
}

/// Render the human-readable `--optimize` tables.
pub fn summary_table(report: &OptimizeReport) -> String {
    let mut out = String::from(
        "Ordering optimizer (pmcheck rewrite)\n\
         app            elided-fl  elided-fe  rounds   epochs before->after  \
         x86(NVM)  HOPS(NVM)  x86(PWQ)\n",
    );
    for a in &report.apps {
        let mut cols = String::new();
        for s in &a.speedups {
            cols.push_str(&format!("{:>9.4}x", s.speedup()));
        }
        out.push_str(&format!(
            "{:<14} {:>9} {:>10} {:>7}   {:>8} -> {:<8} {}\n",
            a.name,
            a.elided_flushes,
            a.elided_fences,
            a.rewrite_rounds,
            a.epochs_before,
            a.epochs_after,
            cols,
        ));
    }
    out.push_str(&format!(
        "total elided: {} instruction(s) across {} app(s)\n\n",
        report.total_elided(),
        report.apps.len()
    ));
    out.push_str(
        "Crash campaign over optimized schedules\n\
         app            planned  elided  vetoed  fences before->after  images  failures\n",
    );
    for r in &report.crash {
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>7}  {:>9} -> {:<8} {:>6} {:>9}\n",
            r.report.name,
            r.planned_flushes + r.planned_fences,
            r.elide.elided_total(),
            r.elide.veto_total(),
            r.baseline_fences,
            r.report.fence_events,
            r.report.images,
            r.report.failures.len(),
        ));
    }
    let violations = report.gate_violations();
    if violations.is_empty() {
        out.push_str(&format!(
            "gates: PASS — optimized traces check clean, {} crash image(s) all recovered\n",
            report.crash.iter().map(|r| r.report.images).sum::<usize>()
        ));
    } else {
        out.push_str("gates: FAIL\n");
        for v in &violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_app, SuiteConfig};

    fn tiny_cfg() -> SuiteConfig {
        SuiteConfig {
            scale: 0.008,
            seed: 7,
            parallelism: 1,
            worker_threads: 4,
        }
    }

    #[test]
    fn hashmap_trace_earns_a_speedup() {
        // The NVML-style undo engine double-fences on commit, so the
        // rewrite must elide fences and the x86 replay must get faster.
        let r = run_app("hashmap", &tiny_cfg());
        let a = optimize_app(&r);
        assert!(a.elided_fences > 0, "{a:?}");
        assert!(a.is_clean(), "{a:?}");
        assert_eq!(a.events_before, a.events_after + a.elided_total());
        let x86 = &a.speedups[0];
        assert_eq!(x86.model, PersistModel::X86Nvm);
        assert!(x86.base_ns > x86.optimized_ns, "{a:?}");
        // Fewer fences, fewer (or equal) epochs.
        assert!(a.epochs_after <= a.epochs_before);
    }

    #[test]
    fn optimize_json_round_trips() {
        let r = run_app("ctree", &tiny_cfg());
        let report = OptimizeReport {
            apps: vec![optimize_app(&r)],
            crash: Vec::new(),
        };
        let doc = optimize_json(&report);
        let parsed = pmobs::json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(
            parsed.get("total_elided").and_then(Json::as_f64),
            Some(report.total_elided() as f64)
        );
        let gates = parsed.get("gates").unwrap();
        assert_eq!(gates.get("check_clean"), Some(&Json::Bool(true)));
        let apps = parsed.get("apps").and_then(|a| a.as_arr()).unwrap();
        let speedup = apps[0].get("speedup").unwrap();
        for model in OPT_MODELS {
            let s = speedup.get(&model.to_string()).unwrap();
            assert!(s.get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn summary_table_mentions_gates() {
        let r = run_app("hashmap", &tiny_cfg());
        let report = OptimizeReport {
            apps: vec![optimize_app(&r)],
            crash: Vec::new(),
        };
        let table = summary_table(&report);
        assert!(table.contains("hashmap"), "{table}");
        assert!(table.contains("gates: PASS"), "{table}");
    }

    #[test]
    fn gate_violations_flag_regressions() {
        let r = run_app("exim", &tiny_cfg());
        let mut a = optimize_app(&r);
        a.errors_after = a.errors_before + 1;
        a.residual_flagged = 2;
        let report = OptimizeReport {
            apps: vec![a],
            crash: Vec::new(),
        };
        let v = report.gate_violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(summary_table(&report).contains("gates: FAIL"));
    }
}
