//! `whisper-report` — regenerate the paper's tables and figures.
//!
//! ```text
//! whisper-report [EXPERIMENT] [--scale X] [--seed N] [--apps a,b,c]
//!                [--parallel N] [--threads N] [--timing]
//!                [--json PATH] [--json-det PATH]
//!                [--check] [--check-json PATH] [--check-rules ID,..]
//!                [--check-graph DIR] [--crossval] [--crossval-json PATH]
//!                [--crash]
//!                [--crash-json PATH] [--serve] [--serve-json PATH]
//!                [--serve-arrival paced|bursty] [--serve-shards N]
//!                [--trace PATH] [--profile] [--profile-json PATH]
//!                [--optimize] [--optimize-json PATH]
//!                [--quiet] [--dump-traces DIR] [--from-trace FILE]
//!
//! EXPERIMENT: table1 | fig3 | fig4 | fig5 | fig6 | fig10 |
//!             amplification | ntfraction | smallwrites |
//!             consequences | all (default)
//! ```
//!
//! Applications run in parallel across one worker per core by default;
//! `--parallel N` overrides the worker count (`--parallel 1` forces the
//! serial runner). `--threads N` (default 4, range 1..=64) sets how many
//! logical clients the seeded scheduler interleaves *inside* redis,
//! memcached, and vacation — unlike `--parallel` it changes the traces
//! (`--threads 1` removes their cross-thread epoch dependencies), so it
//! is echoed back as `config.worker_threads` in the JSON report.
//!
//! `--timing` runs the selected applications twice —
//! serially, then in parallel — and reports each app's wall-clock
//! (both runners) and simulated durations from the same span data,
//! plus the overall speedup, instead of a paper table.
//!
//! `--trace PATH` turns on the simulated-time tracing subsystem
//! (`pmobs::trace`) for the suite run and the serving sweep, and
//! writes the merged tracks to PATH as Chrome trace-event JSON (loads
//! in Perfetto or `chrome://tracing`; one lane per machine, replay
//! thread, and serve shard). Every timestamp is on the simulated
//! clock, so the file is byte-identical across hosts and `--parallel`
//! settings. Tracing is disabled again before `--check`/`--crash`
//! run, so their internal re-runs never pollute the trace.
//!
//! `--profile` (implies `--serve`) aggregates each serve request's
//! simulated time into queue / replay / fence-stall phases per app ×
//! mechanism (`whisper::profile`), appends the tail-attribution table
//! to the text report, and populates the JSON report's `profile`
//! section. `--profile-json PATH` additionally writes just the profile
//! document to PATH (implies `--profile`).
//!
//! `--check` runs the `pmcheck` persistency checker over every
//! selected application's trace after the run: findings stream through
//! the `pmobs` logger, a summary table is appended to the text report,
//! the JSON report's `violations` section is populated, and the
//! process exits 3 if any **error**-severity violation was found — the
//! CI regression gate for durability discipline. `--check-rules ID,..`
//! restricts the checker to the named rules (implies `--check`; an
//! unknown rule id is a usage error, exit 2); the selection is recorded
//! as `rules_enabled` in the violations document so a filtered report
//! cannot pass for a full one. `--check-json PATH`
//! additionally writes just the violations document to PATH (implies
//! `--check`).
//!
//! `--check-graph DIR` builds the per-app epoch dependency graph
//! (`whisper::hbgraph`, paper §5.2) over every recorded trace, prints
//! the dependency-statistics table, stores the summary under `hb.graph`
//! in the JSON report, and writes the full graphs to `DIR/<app>.json`
//! and `DIR/<app>.dot`.
//!
//! `--crossval` cross-validates the happens-before analysis against
//! the crash campaign (`whisper::crossval`): every materialized crash
//! image is compared against the lines the HB analysis proves
//! spec-invariant durable at that point, plus a seeded epoch-race
//! positive control. The process exits 6 if any image exhibits an
//! order-impossible state (or the control goes dead) — the CI gate for
//! HB soundness. `--crossval-json PATH` additionally writes just the
//! crossval document to PATH (implies `--crossval`).
//!
//! `--crash` sweeps the crash-injection campaign
//! (`whisper::crashtest`) after the suite run: every Table 1 app's
//! dedicated crash workload is interrupted at evenly spread fence
//! points, each captured state is materialized under
//! drop-volatile/persist-all/adversarial crash specs, and the app's
//! recovery oracle judges every image. A summary table is appended to
//! the text report, the JSON report's `crash` section is populated,
//! and the process exits 4 on any recovery failure — the CI gate for
//! crash recoverability. `--crash-json PATH` additionally writes just
//! the campaign document to PATH (implies `--crash`). The campaign
//! fans out over `--parallel` workers.
//!
//! `--optimize` runs the ordering optimizer (`whisper::optimize`)
//! after the suite run: every selected app's trace is rewritten by
//! `pmcheck::rewrite_events` (checker-flagged redundant flushes and
//! no-work fences elided to a fixpoint), both traces are replayed
//! under x86-64(NVM), HOPS(NVM), and PWQ to price the earned speedup,
//! the rewritten trace is re-checked (must be clean of the elided
//! rules, no new errors), and the full crash campaign is re-run with
//! the flagged instructions machine-elided (every recovery oracle must
//! still pass). A summary table is appended to the text report, the
//! JSON report's `optimize` section is populated, and the process
//! exits 5 on any gate violation — remaining elidable findings, new
//! errors, or optimized-schedule recovery failures. `--optimize-json
//! PATH` additionally writes just the optimize document to PATH
//! (implies `--optimize`). Both phases fan out over `--parallel`
//! workers; results never depend on the worker count.
//!
//! `--serve` runs the open-loop serving engine (`whisper::serve`)
//! after the suite run: each Table 1 app is calibrated across sharded
//! machines, then swept across offered-load points under paced or
//! bursty (deterministic-Poisson) arrivals, producing a throughput vs
//! p50/p90/p99/p999 simulated-latency curve per persistence mechanism
//! (clwb vs HOPS vs PWQ). The saturation table is appended to the text
//! report and the JSON report's `serve` section is populated.
//! `--serve-json PATH` additionally writes just the serve document to
//! PATH (implies `--serve`); `--serve-arrival` picks the arrival
//! process (default bursty) and `--serve-shards` the machines per app
//! (default 4). The sweep fans out over `--parallel` workers; results
//! are bit-identical whatever the worker count.
//!
//! `--json PATH` additionally writes the versioned machine-readable
//! report (`whisper::json_report`, schema v8) to PATH and turns on
//! `pmobs` metric recording so the report's `metrics` block is
//! populated. Stdout carries only the report text; all diagnostics go
//! to stderr through the `pmobs` logger, and `--quiet` silences
//! everything below error level.
//!
//! `--json-det PATH` writes only the deterministic subset of that
//! report (`json_report::deterministic_subset`): everything keyed on
//! `(scale, seed)` alone, with the host-dependent `config` and
//! wall-clock `metrics` blocks removed. CI byte-compares this subset
//! against the committed golden file.
//!
//! `--dump-traces DIR` archives each application's event stream as a
//! binary `.wtr` file (the `pmtrace::codec` format); `--from-trace
//! FILE` re-analyzes such an archive offline instead of running a
//! workload.

use pmcheck::RuleSet;
use std::time::Instant;
use whisper::check::{self, AppCheck};
use whisper::crashtest::{self, AppCrashReport, CampaignConfig};
use whisper::crossval::CrossvalReport;
use whisper::hbgraph::{self, AppGraph};
use whisper::optimize::{self, OptimizeReport};
use whisper::profile::{profile_json, profile_table, AppProfile};
use whisper::serve::{self, AppServe, Arrival, ServeConfig};
use whisper::suite::{analyze, run_apps, AppResult, SuiteConfig, APP_NAMES};
use whisper::{json_report, report};

/// Exit code when `--check` found error-severity violations.
const CHECK_FAILED: i32 = 3;
/// Exit code when `--crash` found recovery failures.
const CRASH_FAILED: i32 = 4;
/// Exit code when `--optimize` violated a soundness gate.
const OPTIMIZE_FAILED: i32 = 5;
/// Exit code when `--crossval` found an order-impossible crash image
/// (or a dead positive control).
const CROSSVAL_FAILED: i32 = 6;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut cfg = SuiteConfig::standard();
    let mut apps: Vec<String> = APP_NAMES.iter().map(ToString::to_string).collect();
    let mut dump_dir: Option<String> = None;
    let mut from_trace: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut json_det_path: Option<String> = None;
    let mut check_traces = false;
    let mut check_json_path: Option<String> = None;
    let mut check_rules = RuleSet::all();
    let mut check_graph_dir: Option<String> = None;
    let mut crossval_gate = false;
    let mut crossval_json_path: Option<String> = None;
    let mut crash_campaign = false;
    let mut crash_json_path: Option<String> = None;
    let mut optimize_sweep = false;
    let mut optimize_json_path: Option<String> = None;
    let mut serve_sweep = false;
    let mut serve_json_path: Option<String> = None;
    let mut serve_arrival = Arrival::Bursty;
    let mut serve_shards = 4usize;
    let mut trace_path: Option<String> = None;
    let mut profile = false;
    let mut profile_json_path: Option<String> = None;
    let mut timing = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--parallel" => {
                i += 1;
                cfg.parallelism = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--parallel needs a worker count"));
            }
            "--threads" => {
                i += 1;
                cfg.worker_threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a worker count (1..=64)"));
            }
            "--timing" => timing = true,
            "--check" => check_traces = true,
            "--check-json" => {
                i += 1;
                check_traces = true;
                check_json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--check-json needs an output path"))
                        .clone(),
                );
            }
            "--check-rules" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| die("--check-rules needs a comma-separated rule-id list"));
                check_rules = RuleSet::from_ids(list).unwrap_or_else(|e| die(&e));
                check_traces = true;
            }
            "--check-graph" => {
                i += 1;
                check_graph_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--check-graph needs an output directory"))
                        .clone(),
                );
            }
            "--crossval" => crossval_gate = true,
            "--crossval-json" => {
                i += 1;
                crossval_gate = true;
                crossval_json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--crossval-json needs an output path"))
                        .clone(),
                );
            }
            "--optimize" => optimize_sweep = true,
            "--optimize-json" => {
                i += 1;
                optimize_sweep = true;
                optimize_json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--optimize-json needs an output path"))
                        .clone(),
                );
            }
            "--crash" => crash_campaign = true,
            "--crash-json" => {
                i += 1;
                crash_campaign = true;
                crash_json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--crash-json needs an output path"))
                        .clone(),
                );
            }
            "--serve" => serve_sweep = true,
            "--serve-json" => {
                i += 1;
                serve_sweep = true;
                serve_json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--serve-json needs an output path"))
                        .clone(),
                );
            }
            "--serve-arrival" => {
                i += 1;
                serve_arrival = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--serve-arrival needs paced|bursty"));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--trace needs an output path"))
                        .clone(),
                );
            }
            "--profile" => profile = true,
            "--profile-json" => {
                i += 1;
                profile = true;
                profile_json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--profile-json needs an output path"))
                        .clone(),
                );
            }
            "--serve-shards" => {
                i += 1;
                serve_shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| die("--serve-shards needs a positive count"));
            }
            "--quiet" => pmobs::logger::set_level(pmobs::Level::Error),
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--json needs an output path"))
                        .clone(),
                );
            }
            "--json-det" => {
                i += 1;
                json_det_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--json-det needs an output path"))
                        .clone(),
                );
            }
            "--apps" => {
                i += 1;
                apps = args
                    .get(i)
                    .unwrap_or_else(|| die("--apps needs a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--dump-traces" => {
                i += 1;
                dump_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--dump-traces needs a directory"))
                        .clone(),
                );
            }
            "--from-trace" => {
                i += 1;
                from_trace = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--from-trace needs a file"))
                        .clone(),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: whisper-report [table1|fig3|fig4|fig5|fig6|fig10|amplification|ntfraction|smallwrites|all] [--scale X] [--seed N] [--apps a,b,c] [--parallel N] [--threads N] [--timing] [--json PATH] [--json-det PATH] [--check] [--check-json PATH] [--check-rules ID,..] [--check-graph DIR] [--crossval] [--crossval-json PATH] [--crash] [--crash-json PATH] [--serve] [--serve-json PATH] [--serve-arrival paced|bursty] [--serve-shards N] [--trace PATH] [--profile] [--profile-json PATH] [--optimize] [--optimize-json PATH] [--quiet]"
                );
                return;
            }
            exp if !exp.starts_with('-') => experiment = exp.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    for a in &apps {
        if !APP_NAMES.contains(&a.as_str()) {
            die(&format!("unknown app {a:?}; valid: {APP_NAMES:?}"));
        }
    }
    let names: Vec<&str> = apps.iter().map(String::as_str).collect();

    // Reject configurations up front rather than deep inside a worker:
    // a scale that truncates any app to zero ops would silently report
    // rates for work that never ran.
    if let Err(msg) = cfg.validate() {
        die(&msg);
    }

    // Metric recording stays off unless a machine-readable report was
    // requested: instruments are provably non-perturbing, but the
    // default run should still be the plain one.
    if json_path.is_some() {
        pmobs::set_enabled(true);
    }

    // --profile rides on the serving sweep.
    if profile {
        serve_sweep = true;
    }

    // Tracing covers the suite run and the serving sweep; it is turned
    // off again right after the export, so the `--check`/`--crash`
    // phases (which re-run workloads internally) never pollute a file
    // already written.
    if trace_path.is_some() {
        pmobs::trace::set_enabled(true);
    }

    if let Some(path) = from_trace {
        // Offline mode: analyze an archived trace instead of running.
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let events = pmtrace::decode_events(&bytes)
            .unwrap_or_else(|e| die(&format!("cannot decode {path}: {e}")));
        let duration_ns = events.last().map(|e| e.at_ns).unwrap_or(0);
        let run = whisper::apps::AppRun {
            name: path.clone(),
            workload: "archived trace".into(),
            events,
            stats: memsim::MemStats::default(),
            duration_ns,
            threads: 4,
        };
        // The Figure 10 table only renders the named gem5-subset apps,
        // which an archive path can never match — skip the replay
        // rather than pay for five passes nobody will see.
        let analysis = analyze(&run);
        let results = vec![AppResult { run, analysis }];
        let served = run_serve_sweep(
            serve_sweep,
            profile,
            &serve_json_path,
            &profile_json_path,
            &cfg,
            serve_shards,
            serve_arrival,
        );
        export_trace(&trace_path);
        let checks = run_checks(check_traces, &check_json_path, &results, check_rules);
        let graphs = run_graphs(&check_graph_dir, &results);
        let crash = run_crash(crash_campaign, &crash_json_path, &cfg);
        let crossval = run_crossval_gate(crossval_gate, &crossval_json_path, &cfg);
        let optimized = run_optimize(optimize_sweep, &optimize_json_path, &results, &cfg);
        write_json_report(
            &json_path,
            &json_det_path,
            &results,
            &cfg,
            checks.as_deref(),
            check_rules,
            crash.as_ref(),
            served.as_ref(),
            optimized.as_ref(),
            graphs.as_deref(),
            crossval.as_ref(),
        );
        println!("{}", report::all(&results));
        if let Some(checks) = &checks {
            print!("\n{}", check::summary_table(checks));
        }
        if let Some(graphs) = &graphs {
            print!("\n{}", hbgraph::summary_table(graphs));
        }
        if let Some((reports, ccfg)) = &crash {
            print!("\n{}", crashtest::summary_table(reports, ccfg));
        }
        if let Some(cv) = &crossval {
            print!("\n{}", cv.summary_table());
        }
        if let Some(opt) = &optimized {
            print!("\n{}", optimize::summary_table(opt));
        }
        if let Some(s) = &served {
            print!("\n{}", report::serve_table(&s.reports, s.scfg.arrival));
            if let Some(profiles) = &s.profiles {
                print!("\n{}", profile_table(profiles));
            }
        }
        if let Some(checks) = &checks {
            exit_if_check_failed(checks);
        }
        if let Some((reports, _)) = &crash {
            exit_if_crash_failed(reports);
        }
        if let Some(cv) = &crossval {
            exit_if_crossval_failed(cv);
        }
        if let Some(opt) = &optimized {
            exit_if_optimize_failed(opt);
        }
        return;
    }

    if timing {
        run_timing_comparison(&names, &cfg);
        return;
    }

    pmobs::info!(
        "running {} app(s) at scale {} (seed {}, {} worker{})...",
        names.len(),
        cfg.scale,
        cfg.seed,
        cfg.parallelism,
        if cfg.parallelism == 1 { "" } else { "s" },
    );
    let started = Instant::now();
    let results = run_apps(&names, &cfg);
    pmobs::info!("suite finished in {:.2?}", started.elapsed());

    if let Some(dir) = &dump_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
        for r in &results {
            let path = format!("{dir}/{}.wtr", r.run.name);
            std::fs::write(&path, pmtrace::encode_events(&r.run.events))
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            pmobs::info!("trace archived to {path}");
        }
    }

    let served = run_serve_sweep(
        serve_sweep,
        profile,
        &serve_json_path,
        &profile_json_path,
        &cfg,
        serve_shards,
        serve_arrival,
    );
    export_trace(&trace_path);
    let checks = run_checks(check_traces, &check_json_path, &results, check_rules);
    let graphs = run_graphs(&check_graph_dir, &results);
    let crash = run_crash(crash_campaign, &crash_json_path, &cfg);
    let crossval = run_crossval_gate(crossval_gate, &crossval_json_path, &cfg);
    let optimized = run_optimize(optimize_sweep, &optimize_json_path, &results, &cfg);
    write_json_report(
        &json_path,
        &json_det_path,
        &results,
        &cfg,
        checks.as_deref(),
        check_rules,
        crash.as_ref(),
        served.as_ref(),
        optimized.as_ref(),
        graphs.as_deref(),
        crossval.as_ref(),
    );

    let text = match experiment.as_str() {
        "table1" => report::table1(&results),
        "fig3" => report::fig3(&results),
        "fig4" => report::fig4(&results),
        "fig5" => report::fig5(&results),
        "fig6" => report::fig6(&results),
        "fig10" => report::fig10(&results),
        "amplification" => report::amplification(&results),
        "ntfraction" => report::nt_fraction(&results),
        "smallwrites" => report::small_writes(&results),
        "consequences" => report::consequences(&results),
        "all" => report::all(&results),
        other => die(&format!("unknown experiment {other:?}")),
    };
    println!("{text}");
    if let Some(checks) = &checks {
        print!("\n{}", check::summary_table(checks));
    }
    if let Some(graphs) = &graphs {
        print!("\n{}", hbgraph::summary_table(graphs));
    }
    if let Some((reports, ccfg)) = &crash {
        print!("\n{}", crashtest::summary_table(reports, ccfg));
    }
    if let Some(cv) = &crossval {
        print!("\n{}", cv.summary_table());
    }
    if let Some(opt) = &optimized {
        print!("\n{}", optimize::summary_table(opt));
    }
    if let Some(s) = &served {
        print!("\n{}", report::serve_table(&s.reports, s.scfg.arrival));
        if let Some(profiles) = &s.profiles {
            print!("\n{}", profile_table(profiles));
        }
    }
    if let Some(checks) = &checks {
        exit_if_check_failed(checks);
    }
    if let Some((reports, _)) = &crash {
        exit_if_crash_failed(reports);
    }
    if let Some(cv) = &crossval {
        exit_if_crossval_failed(cv);
    }
    if let Some(opt) = &optimized {
        exit_if_optimize_failed(opt);
    }
}

/// `--trace`: drain the collected tracks, write Chrome trace-event
/// JSON, and disable tracing — later phases (checks, crash) re-run
/// workloads internally and must not record into a file already
/// written.
fn export_trace(trace_path: &Option<String>) {
    let Some(path) = trace_path else { return };
    let tracks = pmobs::trace::take_tracks();
    pmobs::trace::set_enabled(false);
    let mut out = pmobs::trace::export_chrome(&tracks).to_compact();
    out.push('\n');
    std::fs::write(path, out).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    pmobs::info!("chrome trace ({} track(s)) written to {path}", tracks.len());
}

/// `--check`: run the persistency checker over every trace (restricted
/// to the `--check-rules` selection), write the standalone violations
/// document if `--check-json` asked for one.
fn run_checks(
    enabled: bool,
    check_json_path: &Option<String>,
    results: &[AppResult],
    rules: RuleSet,
) -> Option<Vec<AppCheck>> {
    if !enabled {
        return None;
    }
    let _span = pmobs::span!("suite.check");
    let checks = check::check_results_with(results, rules);
    if let Some(path) = check_json_path {
        std::fs::write(path, check::violations_json(&checks, rules).to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("violations json written to {path}");
    }
    Some(checks)
}

/// `--check-graph DIR`: build the epoch dependency graph for every
/// result, write `<DIR>/<app>.json` + `<DIR>/<app>.dot`.
fn run_graphs(dir: &Option<String>, results: &[AppResult]) -> Option<Vec<AppGraph>> {
    let dir = dir.as_ref()?;
    let _span = pmobs::span!("suite.hbgraph");
    let graphs = hbgraph::build_graphs(results);
    let written = hbgraph::write_graphs(&graphs, std::path::Path::new(dir))
        .unwrap_or_else(|e| die(&format!("cannot write graphs to {dir}: {e}")));
    pmobs::info!("{} graph file(s) written to {dir}", written.len());
    Some(graphs)
}

/// `--crossval`: replay the crash-campaign registry with tracing on,
/// compare every materialized image against the HB analysis's proven
/// durable set, and run the seeded epoch-race positive control. Writes
/// the standalone document if `--crossval-json` asked for one. Reuses
/// the suite's `--parallel` worker count.
fn run_crossval_gate(
    enabled: bool,
    crossval_json_path: &Option<String>,
    cfg: &SuiteConfig,
) -> Option<CrossvalReport> {
    if !enabled {
        return None;
    }
    let _span = pmobs::span!("suite.crossval");
    let ccfg = CampaignConfig {
        parallelism: cfg.parallelism,
        ..CampaignConfig::quick()
    };
    pmobs::info!(
        "cross-validating hb analysis: {} point(s) x {} spec(s) per app...",
        ccfg.points,
        2 + ccfg.adversarial_seeds
    );
    let started = Instant::now();
    let report = whisper::crossval::run_crossval(&ccfg);
    pmobs::info!(
        "crossval finished in {:.2?}: {} image(s), {} violation(s)",
        started.elapsed(),
        report.total_images(),
        report.total_violations()
    );
    if let Some(path) = crossval_json_path {
        std::fs::write(path, report.to_json().to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("crossval json written to {path}");
    }
    Some(report)
}

/// The `--crossval` gate: an order-impossible crash image, a vacuous
/// proof set, or a dead positive control fails the run.
fn exit_if_crossval_failed(report: &CrossvalReport) {
    if !report.passed() {
        pmobs::error!(
            "crossval gate: {} order-impossible image state(s), {} proven line(s), control {} — failing",
            report.total_violations(),
            report.total_proven(),
            if report.control.passed() { "ok" } else { "dead" }
        );
        std::process::exit(CROSSVAL_FAILED);
    }
}

/// The `--check` gate: error-severity findings fail the run.
fn exit_if_check_failed(checks: &[AppCheck]) {
    let errors = check::total_errors(checks);
    if errors > 0 {
        pmobs::error!("pmcheck: {errors} error-severity violation(s) — failing");
        std::process::exit(CHECK_FAILED);
    }
}

/// `--crash`: sweep the crash-injection campaign across the suite,
/// write the standalone campaign document if `--crash-json` asked for
/// one. The campaign reuses the suite's `--parallel` worker count.
fn run_crash(
    enabled: bool,
    crash_json_path: &Option<String>,
    cfg: &SuiteConfig,
) -> Option<(Vec<AppCrashReport>, CampaignConfig)> {
    if !enabled {
        return None;
    }
    let _span = pmobs::span!("suite.crash");
    let ccfg = CampaignConfig {
        parallelism: cfg.parallelism,
        ..CampaignConfig::quick()
    };
    pmobs::info!(
        "sweeping crash campaign: {} point(s) x {} spec(s) per app...",
        ccfg.points,
        2 + ccfg.adversarial_seeds
    );
    let started = Instant::now();
    let reports = crashtest::run_campaign(&ccfg);
    pmobs::info!("crash campaign finished in {:.2?}", started.elapsed());
    if let Some(path) = crash_json_path {
        std::fs::write(path, crashtest::crash_json(&reports, &ccfg).to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("crash campaign json written to {path}");
    }
    Some((reports, ccfg))
}

/// `--optimize`: rewrite every selected trace, price the speedup, and
/// re-run the crash campaign over the elided schedules; write the
/// standalone optimize document if `--optimize-json` asked for one.
/// Both phases reuse the suite's `--parallel` worker count.
fn run_optimize(
    enabled: bool,
    optimize_json_path: &Option<String>,
    results: &[AppResult],
    cfg: &SuiteConfig,
) -> Option<OptimizeReport> {
    if !enabled {
        return None;
    }
    let _span = pmobs::span!("suite.optimize");
    let ccfg = CampaignConfig {
        parallelism: cfg.parallelism,
        ..CampaignConfig::quick()
    };
    pmobs::info!(
        "sweeping ordering optimizer: rewrite + replay over {} app(s), then crash-verifying...",
        results.len()
    );
    let started = Instant::now();
    let report = optimize::optimize_results(results, &ccfg, cfg.parallelism);
    pmobs::info!(
        "optimizer finished in {:.2?}: {} instruction(s) elided, {} crash failure(s)",
        started.elapsed(),
        report.total_elided(),
        report.crash_failures()
    );
    if let Some(path) = optimize_json_path {
        std::fs::write(path, optimize::optimize_json(&report).to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("optimize json written to {path}");
    }
    Some(report)
}

/// The `--optimize` gate: any re-check or crash-soundness violation
/// fails the run.
fn exit_if_optimize_failed(report: &OptimizeReport) {
    let violations = report.gate_violations();
    if !violations.is_empty() {
        for v in &violations {
            pmobs::error!("optimize gate: {v}");
        }
        std::process::exit(OPTIMIZE_FAILED);
    }
}

/// What `--serve` (and `--profile` riding on it) produced, for the
/// report body and the printed tables.
struct ServeOutput {
    reports: Vec<AppServe>,
    /// Present only under `--profile`.
    profiles: Option<Vec<AppProfile>>,
    scfg: ServeConfig,
}

/// `--serve`: sweep the open-loop serving engine across the suite,
/// write the standalone serve document if `--serve-json` asked for
/// one — and, under `--profile`, keep the per-app phase profiles
/// (writing the standalone profile document if `--profile-json` asked
/// for one). The sweep reuses the suite's scale/seed and `--parallel`
/// worker count; results never depend on the latter.
fn run_serve_sweep(
    enabled: bool,
    profile: bool,
    serve_json_path: &Option<String>,
    profile_json_path: &Option<String>,
    cfg: &SuiteConfig,
    shards: usize,
    arrival: Arrival,
) -> Option<ServeOutput> {
    if !enabled {
        return None;
    }
    let _span = pmobs::span!("suite.serve");
    let scfg = ServeConfig {
        scale: cfg.scale,
        seed: cfg.seed,
        shards,
        arrival,
        parallelism: cfg.parallelism,
    };
    pmobs::info!("sweeping serving engine: {shards} shard(s), {arrival} arrivals...");
    let started = Instant::now();
    let (reports, profiles) = if profile {
        let (r, p) = serve::run_serve_profiled(&scfg);
        (r, Some(p))
    } else {
        (serve::run_serve(&scfg), None)
    };
    pmobs::info!("serving sweep finished in {:.2?}", started.elapsed());
    if let Some(path) = serve_json_path {
        std::fs::write(path, serve::serve_json(&reports, &scfg).to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("serve json written to {path}");
    }
    if let Some(path) = profile_json_path {
        let p = profiles.as_ref().expect("--profile-json implies --profile");
        std::fs::write(path, profile_json(p, &scfg).to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("profile json written to {path}");
    }
    Some(ServeOutput {
        reports,
        profiles,
        scfg,
    })
}

/// The `--crash` gate: any recovery failure fails the run.
fn exit_if_crash_failed(reports: &[AppCrashReport]) {
    let failures = crashtest::total_failures(reports);
    if failures > 0 {
        pmobs::error!("crash campaign: {failures} recovery failure(s) — failing");
        std::process::exit(CRASH_FAILED);
    }
}

/// Write the schema-v7 JSON document to `path` and/or its deterministic
/// subset to `det_path` (no-op without `--json`/`--json-det`).
/// Snapshots the global pmobs registry last, so the full report
/// includes everything the run recorded.
#[allow(clippy::too_many_arguments)]
fn write_json_report(
    path: &Option<String>,
    det_path: &Option<String>,
    results: &[AppResult],
    cfg: &SuiteConfig,
    checks: Option<&[AppCheck]>,
    rules: RuleSet,
    crash: Option<&(Vec<AppCrashReport>, CampaignConfig)>,
    served: Option<&ServeOutput>,
    optimized: Option<&OptimizeReport>,
    graphs: Option<&[AppGraph]>,
    crossval: Option<&CrossvalReport>,
) {
    if path.is_none() && det_path.is_none() {
        return;
    }
    let snap = pmobs::global().snapshot();
    let mut doc = json_report::build_checked(results, cfg, &snap, checks, rules);
    if let Some((reports, ccfg)) = crash {
        doc = doc.field("crash", crashtest::crash_json(reports, ccfg));
    }
    if graphs.is_some() || crossval.is_some() {
        let hb = pmobs::Json::obj()
            .field(
                "graph",
                graphs.map_or(pmobs::Json::Null, hbgraph::stats_json),
            )
            .field(
                "crossval",
                crossval.map_or(pmobs::Json::Null, CrossvalReport::to_json),
            );
        doc = doc.field("hb", hb);
    }
    if let Some(s) = served {
        doc = doc.field("serve", serve::serve_json(&s.reports, &s.scfg));
        if let Some(p) = &s.profiles {
            doc = doc.field("profile", profile_json(p, &s.scfg));
        }
    }
    if let Some(opt) = optimized {
        doc = doc.field("optimize", optimize::optimize_json(opt));
    }
    if let Some(path) = path {
        std::fs::write(path, doc.to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("json report written to {path}");
    }
    if let Some(path) = det_path {
        std::fs::write(path, json_report::deterministic_subset(&doc).to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        pmobs::info!("deterministic json report written to {path}");
    }
}

/// `--timing`: the suite timing harness. Runs the selected apps
/// serially and then with the configured parallelism, checks the two
/// result sets agree, and reports — per app, from the same span data —
/// the host wall-clock duration under each runner plus the simulated
/// duration (`span.suite.run/<app>` and `sim.app_duration/<app>`; the
/// sim column is identical across runners by construction).
fn run_timing_comparison(names: &[&str], cfg: &SuiteConfig) {
    let serial_cfg = SuiteConfig {
        parallelism: 1,
        ..*cfg
    };
    let workers = cfg.parallelism.max(2);
    let parallel_cfg = SuiteConfig {
        parallelism: workers,
        ..*cfg
    };

    // Spans only record while metric recording is on; restore the
    // caller's flag afterwards (the non-perturbation contract says the
    // runs themselves cannot notice).
    let was_recording = pmobs::enabled();
    pmobs::set_enabled(true);

    pmobs::info!(
        "timing {} app(s) at scale {} (seed {})...",
        names.len(),
        cfg.scale,
        cfg.seed
    );

    let base = pmobs::global().snapshot();
    pmobs::info!("serial run...");
    let t0 = Instant::now();
    let serial = run_apps(names, &serial_cfg);
    let serial_elapsed = t0.elapsed();
    let mid = pmobs::global().snapshot();

    pmobs::info!("parallel run ({workers} workers)...");
    let t1 = Instant::now();
    let parallel = run_apps(names, &parallel_cfg);
    let parallel_elapsed = t1.elapsed();
    let end = pmobs::global().snapshot();
    pmobs::set_enabled(was_recording);

    for (a, b) in serial.iter().zip(&parallel) {
        if a.run.events != b.run.events || a.run.duration_ns != b.run.duration_ns {
            die(&format!(
                "determinism violation: {} differs between runners",
                a.run.name
            ));
        }
    }

    let hist_sum =
        |snap: &pmobs::MetricsSnapshot, key: &str| snap.histograms.get(key).map_or(0, |h| h.sum);
    let ms = |ns: u64| ns as f64 / 1e6;
    println!("Suite timing ({} apps, scale {}):", names.len(), cfg.scale);
    println!(
        "  {:<14} {:>13} {:>15} {:>13}",
        "app", "serial (ms)", "parallel (ms)", "sim (ms)"
    );
    let mut totals = (0u64, 0u64, 0u64);
    for name in names {
        let wall_key = format!("span.suite.run/{name}");
        let sim_key = format!("sim.app_duration/{name}");
        let wall_serial = hist_sum(&mid, &wall_key).saturating_sub(hist_sum(&base, &wall_key));
        let wall_parallel = hist_sum(&end, &wall_key).saturating_sub(hist_sum(&mid, &wall_key));
        let sim = hist_sum(&mid, &sim_key).saturating_sub(hist_sum(&base, &sim_key));
        totals.0 += wall_serial;
        totals.1 += wall_parallel;
        totals.2 += sim;
        println!(
            "  {name:<14} {:>13.2} {:>15.2} {:>13.3}",
            ms(wall_serial),
            ms(wall_parallel),
            ms(sim)
        );
    }
    println!(
        "  {:<14} {:>13.2} {:>15.2} {:>13.3}",
        "total",
        ms(totals.0),
        ms(totals.1),
        ms(totals.2)
    );
    let speedup = serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9);
    println!("  serial   (1 worker):  {serial_elapsed:>10.2?}");
    println!("  parallel ({workers} workers): {parallel_elapsed:>10.2?}");
    println!("  speedup: {speedup:.2}x  (results verified identical)");
}

fn die(msg: &str) -> ! {
    pmobs::error!("whisper-report: {msg}");
    std::process::exit(2);
}
