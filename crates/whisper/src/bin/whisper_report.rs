//! `whisper-report` — regenerate the paper's tables and figures.
//!
//! ```text
//! whisper-report [EXPERIMENT] [--scale X] [--seed N] [--apps a,b,c]
//!                [--dump-traces DIR] [--from-trace FILE]
//!
//! EXPERIMENT: table1 | fig3 | fig4 | fig5 | fig6 | fig10 |
//!             amplification | ntfraction | smallwrites |
//!             consequences | all (default)
//! ```
//!
//! `--dump-traces DIR` archives each application's event stream as a
//! binary `.wtr` file (the `pmtrace::codec` format); `--from-trace
//! FILE` re-analyzes such an archive offline instead of running a
//! workload.

use whisper::report;
use whisper::suite::{analyze, run_app, AppResult, SuiteConfig, APP_NAMES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut cfg = SuiteConfig::standard();
    let mut apps: Vec<String> = APP_NAMES.iter().map(|s| s.to_string()).collect();
    let mut dump_dir: Option<String> = None;
    let mut from_trace: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--apps" => {
                i += 1;
                apps = args
                    .get(i)
                    .unwrap_or_else(|| die("--apps needs a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--dump-traces" => {
                i += 1;
                dump_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--dump-traces needs a directory"))
                        .clone(),
                );
            }
            "--from-trace" => {
                i += 1;
                from_trace = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--from-trace needs a file"))
                        .clone(),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: whisper-report [table1|fig3|fig4|fig5|fig6|fig10|amplification|ntfraction|smallwrites|all] [--scale X] [--seed N] [--apps a,b,c]"
                );
                return;
            }
            exp if !exp.starts_with('-') => experiment = exp.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    for a in &apps {
        if !APP_NAMES.contains(&a.as_str()) {
            die(&format!("unknown app {a:?}; valid: {APP_NAMES:?}"));
        }
    }

    if let Some(path) = from_trace {
        // Offline mode: analyze an archived trace instead of running.
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let events = pmtrace::decode_events(&bytes)
            .unwrap_or_else(|e| die(&format!("cannot decode {path}: {e}")));
        let duration_ns = events.last().map(|e| e.at_ns).unwrap_or(0);
        let run = whisper::apps::AppRun {
            name: path.clone(),
            workload: "archived trace".into(),
            events,
            stats: memsim::MemStats::default(),
            duration_ns,
            threads: 4,
        };
        let analysis = analyze(&run);
        let results = vec![AppResult { run, analysis }];
        println!("{}", report::all(&results));
        return;
    }

    eprintln!(
        "running {} app(s) at scale {} (seed {})...",
        apps.len(),
        cfg.scale,
        cfg.seed
    );
    let results: Vec<AppResult> = apps
        .iter()
        .map(|name| {
            eprintln!("  {name}...");
            let r = run_app(name, &cfg);
            if let Some(dir) = &dump_dir {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
                let path = format!("{dir}/{name}.wtr");
                std::fs::write(&path, pmtrace::encode_events(&r.run.events))
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                eprintln!("    trace archived to {path}");
            }
            r
        })
        .collect();

    let text = match experiment.as_str() {
        "table1" => report::table1(&results),
        "fig3" => report::fig3(&results),
        "fig4" => report::fig4(&results),
        "fig5" => report::fig5(&results),
        "fig6" => report::fig6(&results),
        "fig10" => report::fig10(&results),
        "amplification" => report::amplification(&results),
        "ntfraction" => report::nt_fraction(&results),
        "smallwrites" => report::small_writes(&results),
        "consequences" => report::consequences(&results),
        "all" => report::all(&results),
        other => die(&format!("unknown experiment {other:?}")),
    };
    println!("{text}");
}

fn die(msg: &str) -> ! {
    eprintln!("whisper-report: {msg}");
    std::process::exit(2);
}
