//! Crash-injection campaign (`whisper-report --crash`).
//!
//! WHISPER's defining requirement is that every benchmark is
//! *crash-recoverable*: "each app includes the code necessary to
//! recover after a crash." This module turns that sentence into a
//! mechanical gate. For every Table 1 row it runs a dedicated crash
//! workload with a [`memsim::CrashPlan`] armed, capturing the machine's
//! full in-flight state at N crash points spread across the run; each
//! captured point is then materialized under the whole crash-spec
//! lattice — [`CrashSpec::DropVolatile`], [`CrashSpec::PersistAll`],
//! and M adversarial persist-subsets — and the application's *recovery
//! oracle* is run against every resulting PM image.
//!
//! # The oracle contract
//!
//! Each app module exposes `crash_run(ops, points) -> CrashRun`: it
//! drives `ops` logical operations against a fresh machine (untraced —
//! the campaign measures recoverability, not rates), calls
//! [`memsim::Machine::note_progress`] after each *fully committed*
//! operation, and returns the captured states plus an oracle closure.
//! The oracle receives a materialized image and the progress value at
//! the capture point, re-opens the application's persistent state from
//! the image (engine recovery + structure `open`), and must verify:
//!
//! * every operation with index `< progress` is fully visible;
//! * the single in-flight operation (index `== progress`) is either
//!   wholly absent, wholly applied, or at a transaction boundary in
//!   between — never torn;
//! * structural invariants of the persistent data structures hold.
//!
//! # Crash-point granularity
//!
//! Points are counted in **fence events** ([`CrashCounter::Fences`]),
//! not individual stores. The substrate's log formats (the PMFS
//! journal, the undo/redo `LogSlot`) follow real PMFS/NVML/Mnemosyne in
//! writing a record's header and payload in one epoch with the
//! validity tag in the header — but unlike production NVML they carry
//! no checksum, so an adversarial crash *inside* that epoch can keep
//! the header line while dropping a payload line and recovery would
//! replay a torn record. Real systems close this window with per-record
//! checksums; modelling those would change every trace this repo's
//! golden figures are pinned to. At fence boundaries the window is
//! closed by construction — every log record is complete before its
//! fence retires — while caches, pending flushes, and WCBs still hold
//! plenty of in-flight data for the crash specs to decide over, and
//! uncommitted transactions still exercise every rollback/replay path.
//! See DESIGN.md § Crash testing.

use crate::suite::default_parallelism;
use memsim::{CrashCounter, CrashPlan, CrashSpec, CrashState, ElidePlan, ElideStats, Machine};
use pmem::PmImage;
use pmobs::Json;
use pmtrace::{Event, EventKind, TraceBuffer};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A recovery oracle: given a materialized crash image and the
/// `note_progress` value at the capture point, re-open the app's state
/// and verify the contract above. `Err` carries a human-readable
/// description of the violated invariant.
pub type Oracle = Box<dyn Fn(&PmImage, u64) -> Result<(), String> + Send + Sync>;

/// One app's crash workload outcome: the states captured at the swept
/// points plus the oracle that judges their images.
pub struct CrashRun {
    /// Total fence events the run produced (the sweepable range).
    pub total_events: u64,
    /// Logical operations the workload committed.
    pub ops: u64,
    /// One captured state per requested crash point.
    pub states: Vec<CrashState>,
    /// The machine trace of the measured interval (arm → harvest) —
    /// empty unless the run was wrapped in [`with_arm_options`] asking
    /// for one. The optimizer checks this trace to decide which
    /// flush/fence ordinals its elision plan may skip.
    pub trace: Vec<Event>,
    /// What an armed elision plan did during the run (`None` in plain
    /// campaign runs).
    pub elide: Option<ElideStats>,
    /// The recovery oracle for this run's images.
    pub oracle: Oracle,
}

/// Extra arming the optimized campaign needs, delivered out of band.
///
/// The eleven `crash_run` entry points share the `(ops, points)`
/// signature through the [`Runner`] fn-pointer registry; rather than
/// widening all of them for the optimizer's sake, the campaign driver
/// stashes these options in a thread-local that [`arm`] consumes. Both
/// the serial and the worker-pool campaign paths invoke the runner
/// synchronously on the thread that set the options, so the handoff is
/// race-free.
#[derive(Debug, Default)]
pub(crate) struct ArmOptions {
    /// Record the machine trace from arm to harvest.
    pub(crate) trace: bool,
    /// Arm this elision plan alongside the crash plan.
    pub(crate) elide: Option<ElidePlan>,
}

thread_local! {
    static ARM_OPTS: RefCell<Option<ArmOptions>> = const { RefCell::new(None) };
}

/// Run `f` (a single `crash_run` invocation) with `opts` applied at its
/// [`arm`] call.
pub(crate) fn with_arm_options<T>(opts: ArmOptions, f: impl FnOnce() -> T) -> T {
    ARM_OPTS.with(|c| *c.borrow_mut() = Some(opts));
    let out = f();
    ARM_OPTS.with(|c| *c.borrow_mut() = None);
    out
}

/// Arm `m` with a fence-counting plan: a probe when `points` is empty,
/// a capturing plan otherwise. Applies any pending [`ArmOptions`].
pub(crate) fn arm(m: &mut Machine, points: &[u64]) {
    if let Some(opts) = ARM_OPTS.with(|c| c.borrow_mut().take()) {
        if opts.trace {
            let t = m.trace_mut();
            t.clear();
            t.set_enabled(true);
        }
        if let Some(plan) = opts.elide {
            // Armed here, not earlier: elision ordinals are counted
            // from the same instant the trace (and the checker's view)
            // starts, so finding ordinals and machine ordinals line up.
            m.set_elide_plan(plan);
        }
    }
    let plan = if points.is_empty() {
        CrashPlan::probe(CrashCounter::Fences)
    } else {
        CrashPlan::at_points(CrashCounter::Fences, points.to_vec())
    };
    m.set_crash_plan(plan);
}

/// Finish a crash workload: harvest the machine's event count and
/// captured states into a [`CrashRun`].
pub(crate) fn harvest(mut m: Machine, ops: u64, oracle: Oracle) -> CrashRun {
    let elide = m.elide_stats();
    let trace = std::mem::replace(m.trace_mut(), TraceBuffer::disabled()).into_events();
    CrashRun {
        total_events: m.crash_event_count(),
        ops,
        states: m.take_crash_states(),
        trace,
        elide,
        oracle,
    }
}

/// Campaign shape: how many points per app, how many adversarial seeds
/// per point, and how wide to fan the apps out.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Crash points swept per application, spread evenly across the
    /// run's fence events.
    pub points: usize,
    /// Adversarial persist-subset seeds tried at every point, on top of
    /// the `DropVolatile`/`PersistAll` corners.
    pub adversarial_seeds: u64,
    /// Worker threads the eleven rows fan out across (1 = serial).
    pub parallelism: usize,
}

impl CampaignConfig {
    /// The CI / test configuration: 4 points × (2 corners + 8 seeds)
    /// per app — 440 recovery runs across the suite.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            points: 4,
            adversarial_seeds: 8,
            parallelism: default_parallelism(),
        }
    }
}

/// One oracle rejection: which point, which spec, what went wrong.
#[derive(Debug, Clone)]
pub struct CrashFailure {
    /// Fence ordinal of the crash point.
    pub at: u64,
    /// Committed-operation count at the point.
    pub progress: u64,
    /// The crash spec that produced the failing image.
    pub spec: String,
    /// The oracle's description of the violated invariant.
    pub error: String,
}

/// One Table 1 row's campaign outcome.
#[derive(Debug, Clone)]
pub struct AppCrashReport {
    /// Table 1 name.
    pub name: &'static str,
    /// Logical operations the crash workload committed.
    pub ops: u64,
    /// Fence events in the run (the range points were drawn from).
    pub fence_events: u64,
    /// The swept crash points (1-based fence ordinals).
    pub points: Vec<u64>,
    /// Images materialized and judged (`points × specs`).
    pub images: usize,
    /// Every oracle rejection (empty on a clean row).
    pub failures: Vec<CrashFailure>,
}

pub(crate) type Runner = fn(usize, &[u64]) -> CrashRun;

/// The campaign registry: Table 1 name, crash-workload op count, and
/// the app's `crash_run` entry point. Op counts are fixed (not suite-
/// scaled): the campaign sweeps *coverage* of recovery paths, and these
/// counts are tuned so every app reaches steady state while the full
/// sweep stays test-suite fast.
pub(crate) const ROWS: [(&str, usize, Runner); 11] = [
    ("echo", 40, crate::apps::echo::crash_run),
    ("nstore-ycsb", 64, crate::apps::nstore::crash_run_ycsb),
    ("nstore-tpcc", 32, crate::apps::nstore::crash_run_tpcc),
    ("redis", 96, crate::apps::redis::crash_run),
    ("ctree", 96, crate::apps::micro::crash_run_ctree),
    ("hashmap", 96, crate::apps::micro::crash_run_hashmap),
    ("vacation", 64, crate::apps::vacation::crash_run),
    ("memcached", 80, crate::apps::memcached::crash_run),
    ("nfs", 40, crate::apps::fsapps::crash_run_nfs),
    ("exim", 16, crate::apps::fsapps::crash_run_exim),
    ("mysql", 24, crate::apps::fsapps::crash_run_mysql),
];

/// Spread `k` crash points evenly across `1..=total` (sorted, deduped;
/// fewer than `k` only when `total` is smaller than `k`).
pub(crate) fn spread_points(total: u64, k: usize) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    let mut points: Vec<u64> = (1..=k as u64)
        .map(|i| (total * i / (k as u64 + 1)).clamp(1, total))
        .collect();
    points.sort_unstable();
    points.dedup();
    points
}

/// The spec lattice every point is materialized under.
pub(crate) fn specs(adversarial_seeds: u64) -> Vec<CrashSpec> {
    let mut out = vec![CrashSpec::DropVolatile, CrashSpec::PersistAll];
    out.extend((1..=adversarial_seeds).map(|seed| CrashSpec::Adversarial { seed }));
    out
}

pub(crate) fn spec_name(spec: CrashSpec) -> String {
    match spec {
        CrashSpec::DropVolatile => "drop-volatile".into(),
        CrashSpec::PersistAll => "persist-all".into(),
        CrashSpec::Adversarial { seed } => format!("adversarial:{seed}"),
    }
}

/// Judge a captured run: materialize every point × spec image and run
/// the oracle over each.
fn judge(
    name: &'static str,
    points: Vec<u64>,
    run: &CrashRun,
    cfg: &CampaignConfig,
) -> AppCrashReport {
    debug_assert_eq!(run.states.len(), points.len());
    let mut images = 0usize;
    let mut failures = Vec::new();
    for state in &run.states {
        for spec in specs(cfg.adversarial_seeds) {
            let img = state.materialize(spec);
            images += 1;
            if let Err(error) = (run.oracle)(&img, state.progress()) {
                failures.push(CrashFailure {
                    at: state.at(),
                    progress: state.progress(),
                    spec: spec_name(spec),
                    error,
                });
            }
        }
    }
    pmobs::count!("crash.images", images as u64);
    pmobs::count!("crash.failures", failures.len() as u64);
    AppCrashReport {
        name,
        ops: run.ops,
        fence_events: run.total_events,
        points,
        images,
        failures,
    }
}

/// Run one row: probe for the fence total, re-run with the spread
/// points armed, then judge every point × spec image.
fn run_row(name: &'static str, ops: usize, runner: Runner, cfg: &CampaignConfig) -> AppCrashReport {
    let _span = pmobs::span!("crash.row", name);
    let probe = runner(ops, &[]);
    let points = spread_points(probe.total_events, cfg.points);
    let run = runner(ops, &points);
    judge(name, points, &run, cfg)
}

/// Fan the eleven rows out across `workers` threads (serial when 1),
/// returning results in Table 1 order. Each row is a self-contained
/// seeded machine, so results are identical whatever the parallelism.
pub(crate) fn fan_rows<R: Send>(
    workers: usize,
    per_row: impl Fn(&'static str, usize, Runner) -> R + Sync,
) -> Vec<R> {
    let workers = workers.clamp(1, ROWS.len());
    if workers == 1 {
        return ROWS
            .iter()
            .map(|(name, ops, runner)| per_row(name, *ops, *runner))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let finished: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(ROWS.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((name, ops, runner)) = ROWS.get(i) else {
                    break;
                };
                let report = per_row(name, *ops, *runner);
                finished.lock().unwrap().push((i, report));
            });
        }
    });
    let mut slots = finished.into_inner().unwrap();
    slots.sort_unstable_by_key(|(i, _)| *i);
    slots.into_iter().map(|(_, r)| r).collect()
}

/// Run the whole campaign across `cfg.parallelism` workers. Reports
/// come back in Table 1 order.
pub fn run_campaign(cfg: &CampaignConfig) -> Vec<AppCrashReport> {
    fan_rows(cfg.parallelism, |name, ops, runner| {
        run_row(name, ops, runner, cfg)
    })
}

/// One row's outcome under the *optimized* schedule: the regular
/// point × spec judgement over a run whose checker-flagged flushes and
/// fences were machine-elided, plus the elision accounting.
#[derive(Debug, Clone)]
pub struct OptimizedCrashReport {
    /// The judged campaign row (points drawn from the *elided* run's
    /// fence range).
    pub report: AppCrashReport,
    /// Fence events in the unoptimized probe, for comparison with
    /// `report.fence_events`.
    pub baseline_fences: u64,
    /// Flush sites the rewrite pass planned to elide.
    pub planned_flushes: usize,
    /// Fence sites the rewrite pass planned to elide.
    pub planned_fences: usize,
    /// Check → elide rounds the rewrite took to converge.
    pub rewrite_rounds: usize,
    /// What the machine actually skipped / refused (from the capture
    /// run; the probe and capture runs execute identically).
    pub elide: ElideStats,
}

/// Per-kind 1-based ordinal of every event in `trace` (0 for events
/// that are neither flushes nor fences).
fn flush_fence_ordinals(trace: &[Event]) -> Vec<u64> {
    let (mut flushes, mut fences) = (0u64, 0u64);
    trace
        .iter()
        .map(|ev| match ev.kind {
            EventKind::Flush { .. } => {
                flushes += 1;
                flushes
            }
            EventKind::Fence | EventKind::DFence => {
                fences += 1;
                fences
            }
            _ => 0,
        })
        .collect()
}

/// Run one row under the optimizer: trace a probe, rewrite its trace,
/// re-run with the flagged flush/fence ordinals machine-elided, and
/// judge the elided run under the full spec lattice.
fn run_optimized_row(
    name: &'static str,
    ops: usize,
    runner: Runner,
    cfg: &CampaignConfig,
) -> OptimizedCrashReport {
    let _span = pmobs::span!("crash.optimized_row", name);
    // 1. Traced probe: what does the checker flag in this workload?
    let probe = with_arm_options(
        ArmOptions {
            trace: true,
            elide: None,
        },
        || runner(ops, &[]),
    );
    let rw = pmcheck::rewrite_events(&probe.trace);
    let ords = flush_fence_ordinals(&probe.trace);
    let flush_ords: Vec<u64> = rw
        .elided
        .iter()
        .filter(|&&i| matches!(probe.trace[i].kind, EventKind::Flush { .. }))
        .map(|&i| ords[i])
        .collect();
    let fence_ords: Vec<u64> = rw
        .elided
        .iter()
        .filter(|&&i| matches!(probe.trace[i].kind, EventKind::Fence | EventKind::DFence))
        .map(|&i| ords[i])
        .collect();
    let plan = ElidePlan::new(flush_ords, fence_ords);

    // 2. Elided probe: the optimized run has fewer fences, so its own
    // total defines the sweepable crash-point range.
    let elided_probe = with_arm_options(
        ArmOptions {
            trace: false,
            elide: Some(plan.clone()),
        },
        || runner(ops, &[]),
    );
    let points = spread_points(elided_probe.total_events, cfg.points);

    // 3. Elided capture run, judged exactly like the plain campaign —
    // every recovery oracle must still pass on the optimized schedule.
    let run = with_arm_options(
        ArmOptions {
            trace: false,
            elide: Some(plan),
        },
        || runner(ops, &points),
    );
    let elide = run.elide.unwrap_or_default();
    OptimizedCrashReport {
        report: judge(name, points, &run, cfg),
        baseline_fences: probe.total_events,
        planned_flushes: rw.elided_flushes,
        planned_fences: rw.elided_fences,
        rewrite_rounds: rw.rounds,
        elide,
    }
}

/// Re-run the whole campaign over optimizer-elided schedules — the
/// soundness gate for `whisper-report --optimize`. Reports come back
/// in Table 1 order.
pub fn run_optimized_campaign(cfg: &CampaignConfig) -> Vec<OptimizedCrashReport> {
    fan_rows(cfg.parallelism, |name, ops, runner| {
        run_optimized_row(name, ops, runner, cfg)
    })
}

/// Total oracle rejections across an optimized campaign.
pub fn total_optimized_failures(reports: &[OptimizedCrashReport]) -> usize {
    reports.iter().map(|r| r.report.failures.len()).sum()
}

/// Total oracle rejections across the campaign (the `--crash` gate).
pub fn total_failures(reports: &[AppCrashReport]) -> usize {
    reports.iter().map(|r| r.failures.len()).sum()
}

/// The text summary appended to the report under `--crash`.
pub fn summary_table(reports: &[AppCrashReport], cfg: &CampaignConfig) -> String {
    let mut out = format!(
        "Crash-recovery campaign ({} point(s) x [drop-volatile persist-all {} seed(s)])\n\
         app               ops   fences  points  images  failures\n",
        cfg.points, cfg.adversarial_seeds
    );
    for r in reports {
        out.push_str(&format!(
            "{:<14} {:>6} {:>8} {:>7} {:>7} {:>9}\n",
            r.name,
            r.ops,
            r.fence_events,
            r.points.len(),
            r.images,
            r.failures.len()
        ));
        for f in &r.failures {
            out.push_str(&format!(
                "    FAIL at fence {} ({}, progress {}): {}\n",
                f.at, f.spec, f.progress, f.error
            ));
        }
    }
    out.push_str(&format!(
        "total: {} failure(s) across {} image(s), {} app(s)\n",
        total_failures(reports),
        reports.iter().map(|r| r.images).sum::<usize>(),
        reports.len()
    ));
    out
}

/// Serialize the campaign outcome — the `crash` section of the JSON
/// report (and the standalone `--crash-json` document).
pub fn crash_json(reports: &[AppCrashReport], cfg: &CampaignConfig) -> Json {
    let apps: Vec<Json> = reports
        .iter()
        .map(|r| {
            let failures: Vec<Json> = r
                .failures
                .iter()
                .map(|f| {
                    Json::obj()
                        .field("at", f.at)
                        .field("progress", f.progress)
                        .field("spec", f.spec.as_str())
                        .field("error", f.error.as_str())
                })
                .collect();
            Json::obj()
                .field("name", r.name)
                .field("ops", r.ops)
                .field("fence_events", r.fence_events)
                .field(
                    "points",
                    r.points.iter().map(|p| Json::from(*p)).collect::<Vec<_>>(),
                )
                .field("images", r.images as u64)
                .field("failures", failures)
        })
        .collect();
    Json::obj()
        .field("points_per_app", cfg.points as u64)
        .field("adversarial_seeds", cfg.adversarial_seeds)
        .field(
            "total_images",
            reports.iter().map(|r| r.images).sum::<usize>() as u64,
        )
        .field("total_failures", total_failures(reports) as u64)
        .field("apps", apps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_points_covers_the_range() {
        assert_eq!(spread_points(1000, 4), vec![200, 400, 600, 800]);
        assert_eq!(spread_points(3, 4), vec![1, 2]);
        assert!(spread_points(0, 4).is_empty());
        assert!(spread_points(10_000, 4).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn specs_cover_corners_and_seeds() {
        let s = specs(8);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], CrashSpec::DropVolatile);
        assert_eq!(s[1], CrashSpec::PersistAll);
        assert_eq!(s[9], CrashSpec::Adversarial { seed: 8 });
    }

    #[test]
    fn adversarial_images_are_bit_identical_across_runs() {
        // Two independent executions of the same seeded crash workload
        // (as happens when rows land on different campaign workers)
        // must capture identical states and materialize identical
        // adversarial images.
        let a = crate::apps::micro::crash_run_hashmap(24, &[7, 19]);
        let b = crate::apps::micro::crash_run_hashmap(24, &[7, 19]);
        assert_eq!(a.states.len(), 2);
        for (sa, sb) in a.states.iter().zip(&b.states) {
            assert_eq!(sa.digest(), sb.digest());
            for seed in 1..=4 {
                let spec = CrashSpec::Adversarial { seed };
                assert_eq!(sa.materialize(spec), sb.materialize(spec));
            }
        }
    }

    #[test]
    fn oracles_reject_corrupted_images() {
        // Guard against vacuous oracles: a zeroed image (bad engine
        // log, bad structure headers) must be rejected.
        let run = crate::apps::redis::crash_run(24, &[9]);
        let state = &run.states[0];
        let mut img = state.materialize(CrashSpec::PersistAll);
        let lines: Vec<_> = img.lines().map(|(l, _)| l).collect();
        for l in lines {
            img.set_line(l, [0u8; 64]);
        }
        assert!((run.oracle)(&img, state.progress()).is_err());
    }

    #[test]
    fn registry_matches_table1_order() {
        assert!(ROWS.iter().map(|(n, _, _)| *n).eq(crate::suite::APP_NAMES));
    }

    #[test]
    fn optimized_row_elides_and_still_recovers() {
        // ctree drives the NVML-style undo engine whose commit path
        // double-fences, so the rewrite must find work here — and the
        // elided schedule must still pass every recovery oracle.
        let cfg = CampaignConfig {
            points: 2,
            adversarial_seeds: 2,
            parallelism: 1,
        };
        let (name, ops, runner) = ROWS.iter().find(|(n, _, _)| *n == "ctree").unwrap();
        let opt = run_optimized_row(name, *ops, *runner, &cfg);
        assert!(opt.planned_fences > 0, "no fences planned: {opt:?}");
        assert!(opt.elide.elided_total() > 0, "nothing elided: {opt:?}");
        assert!(opt.report.failures.is_empty(), "{:?}", opt.report.failures);
        // Elided fences shrink the sweepable crash range.
        assert!(opt.report.fence_events < opt.baseline_fences);
    }

    #[test]
    fn flush_fence_ordinals_count_per_kind() {
        let mut buf = TraceBuffer::new();
        let t = pmtrace::Tid(0);
        buf.flush(t, 0x1000, 1);
        buf.fence(t, 2);
        buf.flush(t, 0x1040, 3);
        buf.pm_store(t, 0x1080, 8, false, pmtrace::Category::UserData, 4);
        buf.dfence(t, 5);
        let events = buf.into_events();
        assert_eq!(flush_fence_ordinals(&events), vec![1, 1, 2, 0, 2]);
    }
}
