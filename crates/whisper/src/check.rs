//! Suite-level persistency checking (`whisper-report --check`).
//!
//! Runs [`pmcheck`] over every application's recorded trace, logs the
//! findings through the [`pmobs`] logger (warnings at `warn`, errors
//! at `error` level), and serializes the results as the `violations`
//! section of the schema-v2 JSON report.
//!
//! The gate contract: the ten WHISPER applications are *correct* PM
//! programs, so a suite check must produce **zero error-severity
//! findings** — any error fails `whisper-report --check` (exit 3) and
//! therefore CI. Warnings (redundant flushes, double fences,
//! end-of-trace leftovers) are reported for diagnosis but do not gate.

use crate::suite::AppResult;
use pmcheck::{CheckReport, Finding, Rule, RuleSet};
use pmobs::Json;

/// How many individual findings are embedded per app in the JSON
/// report; per-rule counts are always complete. Keeps a pathological
/// trace from ballooning the report.
pub const MAX_FINDINGS_IN_JSON: usize = 25;

/// One application's check outcome.
#[derive(Debug)]
pub struct AppCheck {
    /// Table 1 application name.
    pub name: String,
    /// The checker's report for that app's trace.
    pub report: CheckReport,
}

/// Check every result's trace, logging findings as they are found.
pub fn check_results(results: &[AppResult]) -> Vec<AppCheck> {
    check_results_with(results, RuleSet::all())
}

/// [`check_results`] restricted to the rules in `rules`
/// (`--check-rules`).
pub fn check_results_with(results: &[AppResult], rules: RuleSet) -> Vec<AppCheck> {
    results
        .iter()
        .map(|r| {
            let report = pmcheck::check_events_with(&r.run.events, rules);
            log_findings(&r.run.name, &report);
            AppCheck {
                name: r.run.name.clone(),
                report,
            }
        })
        .collect()
}

/// Route an app's findings through the pmobs logger: each finding is
/// one leveled line, followed by a per-app summary.
pub fn log_findings(app: &str, report: &CheckReport) {
    for f in &report.findings {
        match f.severity {
            pmcheck::Severity::Error => pmobs::error!("pmcheck[{app}]: {f}"),
            pmcheck::Severity::Warn => pmobs::warn!("pmcheck[{app}]: {f}"),
        }
    }
    pmobs::info!(
        "pmcheck[{app}]: {} event(s), {} error(s), {} warning(s)",
        report.events_visited,
        report.errors(),
        report.warnings(),
    );
}

/// Total error-severity findings across the suite — the exit-code gate.
pub fn total_errors(checks: &[AppCheck]) -> usize {
    checks.iter().map(|c| c.report.errors()).sum()
}

fn finding_json(f: &Finding) -> Json {
    Json::obj()
        .field("rule", f.rule.id())
        .field("severity", f.severity.to_string().as_str())
        .field("tid", u64::from(f.tid.0))
        .field("at_ns", f.at_ns)
        .field("line", f.line.map(|l| l.0))
        .field("epoch", f.epoch)
        .field("tx", f.tx)
        .field("message", f.message.as_str())
}

/// Suite-wide per-rule totals: for each rule that fired anywhere, the
/// summed (errors, warnings) across all checked apps, in [`Rule::ALL`]
/// order.
pub fn rule_totals(checks: &[AppCheck]) -> Vec<(Rule, usize, usize)> {
    Rule::ALL
        .iter()
        .filter_map(|rule| {
            let (mut errors, mut warns) = (0usize, 0usize);
            for c in checks {
                for (r, e, w) in c.report.by_rule() {
                    if r == *rule {
                        errors += e;
                        warns += w;
                    }
                }
            }
            (errors + warns > 0).then_some((*rule, errors, warns))
        })
        .collect()
}

/// The `violations` section of the JSON report.
///
/// ```text
/// {checked_apps, rules_enabled: [<rule-id>...],
///  total_errors, total_warnings,
///  by_rule: {<rule-id>: {errors, warnings}, ...},   // suite totals
///  apps: [{name, events, errors, warnings,
///          by_rule: {<rule-id>: {errors, warnings}, ...},
///          findings: [...first 25...], findings_truncated}]}
/// ```
///
/// `rules` is the `--check-rules` selection the checks ran under (all
/// rules by default); it is recorded so a filtered report cannot be
/// mistaken for a clean full check.
pub fn violations_json(checks: &[AppCheck], rules: RuleSet) -> Json {
    let apps: Vec<Json> = checks
        .iter()
        .map(|c| {
            let mut by_rule = Json::obj();
            for (rule, errors, warns) in c.report.by_rule() {
                by_rule = by_rule.field(
                    rule.id(),
                    Json::obj()
                        .field("errors", errors as u64)
                        .field("warnings", warns as u64),
                );
            }
            let findings: Vec<Json> = c
                .report
                .findings
                .iter()
                .take(MAX_FINDINGS_IN_JSON)
                .map(finding_json)
                .collect();
            Json::obj()
                .field("name", c.name.as_str())
                .field("events", c.report.events_visited)
                .field("errors", c.report.errors() as u64)
                .field("warnings", c.report.warnings() as u64)
                .field("by_rule", by_rule)
                .field("findings", findings)
                .field(
                    "findings_truncated",
                    c.report.findings.len() > MAX_FINDINGS_IN_JSON,
                )
        })
        .collect();
    let mut suite_by_rule = Json::obj();
    for (rule, errors, warns) in rule_totals(checks) {
        suite_by_rule = suite_by_rule.field(
            rule.id(),
            Json::obj()
                .field("errors", errors as u64)
                .field("warnings", warns as u64),
        );
    }
    let rules_enabled: Vec<Json> = rules.iter().map(|r| Json::from(r.id())).collect();
    Json::obj()
        .field("checked_apps", checks.len() as u64)
        .field("rules_enabled", rules_enabled)
        .field("total_errors", total_errors(checks) as u64)
        .field(
            "total_warnings",
            checks
                .iter()
                .map(|c| c.report.warnings() as u64)
                .sum::<u64>(),
        )
        .field("by_rule", suite_by_rule)
        .field("apps", apps)
}

/// Render the human-readable per-app summary table printed by
/// `whisper-report --check` after the paper tables.
pub fn summary_table(checks: &[AppCheck]) -> String {
    let mut out = String::from(
        "Persistency check (pmcheck)\n\
         app            events    errors  warnings  rules fired\n",
    );
    for c in checks {
        let fired: Vec<String> = Rule::ALL
            .iter()
            .filter(|r| c.report.count(**r) > 0)
            .map(|r| format!("{}×{}", r.id(), c.report.count(*r)))
            .collect();
        out.push_str(&format!(
            "{:<14} {:>7} {:>9} {:>9}  {}\n",
            c.name,
            c.report.events_visited,
            c.report.errors(),
            c.report.warnings(),
            if fired.is_empty() {
                "-".to_string()
            } else {
                fired.join(" ")
            }
        ));
    }
    out.push_str(&format!(
        "total: {} error(s), {} warning(s) across {} app(s)\n",
        total_errors(checks),
        checks.iter().map(|c| c.report.warnings()).sum::<usize>(),
        checks.len()
    ));
    if !checks.is_empty() {
        let per_rule: Vec<String> = rule_totals(checks)
            .iter()
            .map(|(r, e, w)| format!("{}: {e} error(s), {w} warning(s)", r.id()))
            .collect();
        if !per_rule.is_empty() {
            out.push_str(&format!("by rule: {}\n", per_rule.join("; ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_check() -> Vec<AppCheck> {
        vec![AppCheck {
            name: "buggy-log".into(),
            report: pmcheck::check_events(&pmcheck::seeded::buggy_log_events()),
        }]
    }

    #[test]
    fn violations_json_shape() {
        let checks = seeded_check();
        let doc = violations_json(&checks, RuleSet::all());
        let enabled = doc.get("rules_enabled").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(enabled.len(), Rule::ALL.len());
        assert_eq!(
            doc.get("total_errors").and_then(Json::as_f64),
            Some(pmcheck::seeded::EXPECTED_ERRORS as f64)
        );
        let apps = doc.get("apps").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(apps.len(), 1);
        let by_rule = apps[0].get("by_rule").unwrap();
        for (rule, errors, warns) in pmcheck::seeded::EXPECTED {
            let r = by_rule.get(rule.id()).unwrap();
            assert_eq!(
                (
                    r.get("errors").and_then(Json::as_f64),
                    r.get("warnings").and_then(Json::as_f64)
                ),
                (Some(errors as f64), Some(warns as f64)),
                "{}",
                rule.id()
            );
        }
        // Round-trips through the parser.
        let parsed = pmobs::json::parse(&doc.to_pretty()).unwrap();
        assert!(parsed.get("apps").is_some());
    }

    #[test]
    fn summary_table_lists_fired_rules() {
        let checks = seeded_check();
        let table = summary_table(&checks);
        assert!(table.contains("buggy-log"), "{table}");
        for rule in Rule::ALL {
            assert!(table.contains(rule.id()), "{table}");
        }
        // The fired-rules column carries per-rule counts.
        for (rule, errors, warns) in pmcheck::seeded::EXPECTED {
            let tag = format!("{}×{}", rule.id(), errors + warns);
            assert!(table.contains(&tag), "missing {tag} in:\n{table}");
        }
        assert!(table.contains("total: 8 error(s), 3 warning(s)"), "{table}");
        assert!(table.contains("by rule: "), "{table}");
    }

    #[test]
    fn rule_filter_flows_through_to_the_report() {
        let rules = RuleSet::from_ids("P-CROSS-DEP, P-EPOCH-RACE").unwrap();
        let checks = vec![AppCheck {
            name: "buggy-log".into(),
            report: pmcheck::check_events_with(&pmcheck::seeded::buggy_log_events(), rules),
        }];
        let doc = violations_json(&checks, rules);
        let enabled = doc.get("rules_enabled").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(enabled.len(), 2);
        // Only the enabled rules' findings are counted: 2 cross-dep
        // errors + 1 epoch-race error from the seeded trace.
        assert_eq!(doc.get("total_errors").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("total_warnings").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn violations_json_has_suite_rule_totals() {
        let checks = seeded_check();
        let doc = violations_json(&checks, RuleSet::all());
        let by_rule = doc.get("by_rule").unwrap();
        for (rule, errors, warns) in pmcheck::seeded::EXPECTED {
            let r = by_rule.get(rule.id()).unwrap();
            assert_eq!(
                (
                    r.get("errors").and_then(Json::as_f64),
                    r.get("warnings").and_then(Json::as_f64)
                ),
                (Some(errors as f64), Some(warns as f64)),
                "{}",
                rule.id()
            );
        }
        // Totals agree with the flat counters.
        let sum: f64 = rule_totals(&checks).iter().map(|(_, e, _)| *e as f64).sum();
        assert_eq!(doc.get("total_errors").and_then(Json::as_f64), Some(sum));
    }

    #[test]
    fn scheduler_seeded_cross_dep_control_is_pinned() {
        // Positive control for the concurrency rules: two
        // scheduler-picked workers hammer one shared line with unfenced
        // stores, then persist it from both sides. The interleaving —
        // and therefore the exact findings — is a pure function of the
        // pinned seed alone, so the expected rule ids and counts are
        // pinned too: if the checker ever goes blind to cross-thread
        // conflicts (or the scheduler's decision stream drifts under
        // splitmix64), this fails loudly rather than going vacuous.
        use memsim::{Machine, MachineConfig, Scheduler};
        use pmtrace::{Category, Tid};

        let mut m = Machine::new(MachineConfig::tiny_for_tests());
        let base = m.config().map.pm.base;
        {
            let t = m.trace_mut();
            t.clear();
            t.set_enabled(true);
        }
        let mut sched = Scheduler::new(2, 0x1234);
        let picks: Vec<Tid> = (0..8).map(|_| sched.next().expect("live")).collect();
        for &tid in &picks {
            m.store_u64(tid, base, u64::from(tid.0) + 1, Category::UserData);
        }
        for t in 0..2u32 {
            m.clwb(Tid(t), base);
            m.sfence(Tid(t));
        }
        let report = pmcheck::check_events(m.trace_mut().events());
        let cross: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CrossDep)
            .collect();
        let races = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::EpochRace)
            .count();
        // Every store after the first races the other worker's
        // in-flight store (both workers stay unfenced throughout the
        // burst), so seed 0x1234's decision stream (0,1,1,0,0,1,0,1)
        // yields exactly 7 cross-dep errors; the two-sided persist is
        // fence-ordered, so the second flush is merely redundant — no
        // epoch race.
        assert_eq!(
            picks.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 1, 1, 0, 0, 1, 0, 1],
            "scheduler decision stream drifted for seed 0x1234"
        );
        assert_eq!(cross.len(), 7, "findings: {:?}", report.findings);
        assert_eq!(races, 0, "findings: {:?}", report.findings);
        assert!(cross.iter().all(|f| f.severity == pmcheck::Severity::Error));
        let redundant = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::RedundantFlush)
            .count();
        assert_eq!(redundant, 1, "second persist of the fenced line");
    }
}
