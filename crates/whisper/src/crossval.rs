//! Happens-before vs. crash-image cross-validation
//! (`whisper-report --crossval`).
//!
//! The HB analysis (`pmcheck::hb`) and the crash campaign
//! (`crate::crashtest`) model durability from opposite ends: the
//! analysis *proves* order from the trace, the campaign *materializes*
//! states the machine could actually expose. This module pits them
//! against each other, both ways:
//!
//! * **Soundness gate** — for every Table 1 row, re-run the crash
//!   workload traced, ask [`pmcheck::hb::durable_lines_at_fences`]
//!   which lines are *spec-invariant durable* at each swept crash
//!   point, and materialize every point under the whole crash-spec
//!   lattice. No materialized image may disagree with the
//!   `DropVolatile` reference on a proven line: such an image would
//!   exhibit a state the HB analysis declares order-impossible, i.e.
//!   either the analysis over-claims or the trace/machine fence
//!   ordinals have drifted apart.
//!
//! * **Positive control** — a deliberately seeded `P-EPOCH-RACE`
//!   (two happens-before-concurrent persists of one line) must do
//!   *both* of the things the rule claims: the checker flags it on the
//!   machine's own trace, and the adversarial crash specs materialize
//!   divergent images from the same crash state. A gate that can never
//!   fire proves nothing; this one is shown live ammunition.
//!
//! Both run under the campaign's quick shape by default: 11 apps ×
//! 4 points × 10 specs = 440 images.

use crate::crashtest::{
    arm, fan_rows, spec_name, specs, spread_points, with_arm_options, ArmOptions, CampaignConfig,
    Runner,
};
use memsim::{CrashSpec, Machine, MachineConfig};
use pmcheck::hb::durable_lines_at_fences;
use pmem::Line;
use pmobs::Json;
use pmtrace::{Category, Tid};

/// One image that disagreed with the HB proof: which app and point,
/// which spec materialized it, and the proven-durable lines it flipped.
#[derive(Debug, Clone)]
pub struct CrossvalViolation {
    /// Fence ordinal of the crash point.
    pub at: u64,
    /// The crash spec that produced the impossible image.
    pub spec: String,
    /// Proven-durable lines whose bytes differ from the reference.
    pub lines: Vec<u64>,
}

/// One Table 1 row's cross-validation outcome.
#[derive(Debug, Clone)]
pub struct AppCrossval {
    /// Table 1 name.
    pub name: &'static str,
    /// The swept crash points (1-based fence ordinals).
    pub points: Vec<u64>,
    /// Images materialized and compared (`points × specs`).
    pub images: usize,
    /// Per point, how many lines the HB analysis proved
    /// spec-invariant durable (the teeth of the gate).
    pub proven_lines: Vec<usize>,
    /// Every order-impossible image (empty on a sound row).
    pub violations: Vec<CrossvalViolation>,
}

/// The positive control's outcome (see module docs).
#[derive(Debug, Clone)]
pub struct ControlReport {
    /// `P-EPOCH-RACE` errors the checker found on the control trace
    /// (must be ≥ 1).
    pub epoch_race_errors: usize,
    /// Distinct values the racing line held across the adversarial
    /// images (must be ≥ 2 — the race is observable).
    pub distinct_images: usize,
    /// Adversarial seeds tried.
    pub seeds: u64,
}

impl ControlReport {
    /// Did the seeded race both get flagged and materialize divergent
    /// images?
    pub fn passed(&self) -> bool {
        self.epoch_race_errors >= 1 && self.distinct_images >= 2
    }
}

/// The whole cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossvalReport {
    /// Per-app soundness results, Table 1 order.
    pub apps: Vec<AppCrossval>,
    /// The positive control.
    pub control: ControlReport,
}

impl CrossvalReport {
    /// Images materialized across all rows (excluding the control).
    pub fn total_images(&self) -> usize {
        self.apps.iter().map(|a| a.images).sum()
    }

    /// Order-impossible images across all rows.
    pub fn total_violations(&self) -> usize {
        self.apps.iter().map(|a| a.violations.len()).sum()
    }

    /// Lines proven durable across all rows and points (a zero here
    /// would make the gate vacuous).
    pub fn total_proven(&self) -> usize {
        self.apps
            .iter()
            .map(|a| a.proven_lines.iter().sum::<usize>())
            .sum()
    }

    /// The gate: no order-impossible image anywhere, a non-vacuous
    /// proof, and a live positive control.
    pub fn passed(&self) -> bool {
        self.total_violations() == 0 && self.total_proven() > 0 && self.control.passed()
    }

    /// The `hb.crossval` section of the JSON report.
    pub fn to_json(&self) -> Json {
        let apps: Vec<Json> = self
            .apps
            .iter()
            .map(|a| {
                let violations: Vec<Json> = a
                    .violations
                    .iter()
                    .map(|v| {
                        Json::obj()
                            .field("at", v.at)
                            .field("spec", v.spec.as_str())
                            .field(
                                "lines",
                                v.lines.iter().map(|l| Json::from(*l)).collect::<Vec<_>>(),
                            )
                    })
                    .collect();
                Json::obj()
                    .field("name", a.name)
                    .field(
                        "points",
                        a.points.iter().map(|p| Json::from(*p)).collect::<Vec<_>>(),
                    )
                    .field("images", a.images as u64)
                    .field(
                        "proven_lines",
                        a.proven_lines
                            .iter()
                            .map(|n| Json::from(*n as u64))
                            .collect::<Vec<_>>(),
                    )
                    .field("violations", violations)
            })
            .collect();
        Json::obj()
            .field("apps", apps)
            .field(
                "control",
                Json::obj()
                    .field("epoch_race_errors", self.control.epoch_race_errors as u64)
                    .field("distinct_images", self.control.distinct_images as u64)
                    .field("seeds", self.control.seeds)
                    .field("passed", self.control.passed()),
            )
            .field("total_images", self.total_images() as u64)
            .field("total_violations", self.total_violations() as u64)
            .field("total_proven_lines", self.total_proven() as u64)
            .field("passed", self.passed())
    }

    /// The human-readable summary printed by `--crossval`.
    pub fn summary_table(&self) -> String {
        let mut out = String::from(
            "HB / crash-image cross-validation\n\
             app            points  images  proven lines  violations\n",
        );
        for a in &self.apps {
            out.push_str(&format!(
                "{:<14} {:>6} {:>7} {:>13} {:>11}\n",
                a.name,
                a.points.len(),
                a.images,
                a.proven_lines.iter().sum::<usize>(),
                a.violations.len()
            ));
        }
        out.push_str(&format!(
            "control: {} epoch-race error(s), {} distinct image(s) over {} seed(s) — {}\n",
            self.control.epoch_race_errors,
            self.control.distinct_images,
            self.control.seeds,
            if self.control.passed() {
                "ok"
            } else {
                "FAILED"
            }
        ));
        out.push_str(&format!(
            "total: {} image(s), {} proven line-point(s), {} violation(s) — {}\n",
            self.total_images(),
            self.total_proven(),
            self.total_violations(),
            if self.passed() { "sound" } else { "UNSOUND" }
        ));
        out
    }
}

/// Cross-validate one campaign row: traced capture run, HB durability
/// proof at the swept points, then every point × spec image compared
/// against its `DropVolatile` reference on the proven lines.
fn run_row(name: &'static str, ops: usize, runner: Runner, cfg: &CampaignConfig) -> AppCrossval {
    let _span = pmobs::span!("crossval.row", name);
    let probe = runner(ops, &[]);
    let points = spread_points(probe.total_events, cfg.points);
    let run = with_arm_options(
        ArmOptions {
            trace: true,
            elide: None,
        },
        || runner(ops, &points),
    );
    debug_assert_eq!(run.states.len(), points.len());
    let proven = durable_lines_at_fences(&run.trace, &points);
    let mut images = 0usize;
    let mut violations = Vec::new();
    for (state, proven_here) in run.states.iter().zip(&proven) {
        let reference = state.materialize(CrashSpec::DropVolatile);
        for spec in specs(cfg.adversarial_seeds) {
            let img = state.materialize(spec);
            images += 1;
            let flipped: Vec<u64> = img
                .diff_lines(&reference)
                .into_iter()
                .filter(|l| proven_here.binary_search(l).is_ok())
                .map(|l| l.0)
                .collect();
            if !flipped.is_empty() {
                violations.push(CrossvalViolation {
                    at: state.at(),
                    spec: spec_name(spec),
                    lines: flipped,
                });
            }
        }
    }
    pmobs::count!("crossval.images", images as u64);
    pmobs::count!("crossval.violations", violations.len() as u64);
    AppCrossval {
        name,
        points,
        images,
        proven_lines: proven.iter().map(Vec::len).collect(),
        violations,
    }
}

/// The positive control: drive the machine through a two-thread epoch
/// race (two happens-before-concurrent persists of one line with
/// different snapshots), crash at the first fence, and check that the
/// checker flags `P-EPOCH-RACE` on the machine's own trace *and* the
/// adversarial specs materialize divergent images.
pub fn positive_control(seeds: u64) -> ControlReport {
    let (t0, t1) = (Tid(0), Tid(1));
    let mut m = Machine::new(MachineConfig::tiny_for_tests());
    let base = m.config().map.pm.base;
    let line = Line::containing(base);
    {
        let t = m.trace_mut();
        t.clear();
        t.set_enabled(true);
    }
    arm(&mut m, &[1]);
    // T0 writes A; T1 flushes the dirty line, parking snapshot A in its
    // pending set; T0 overwrites with B and persists it. At T0's fence
    // the durable bytes are B while T1's stale snapshot A is still in
    // flight — two concurrent persists, exactly what P-EPOCH-RACE
    // claims a crash can expose.
    m.store_u64(t0, base, 0xAAAA_AAAA, Category::UserData);
    m.clwb(t1, base);
    m.store_u64(t0, base, 0xBBBB_BBBB, Category::UserData);
    m.clwb(t0, base);
    m.sfence(t0);

    let report = pmcheck::check_events(m.trace_mut().events());
    let epoch_race_errors = report
        .findings
        .iter()
        .filter(|f| f.rule == pmcheck::Rule::EpochRace)
        .count();

    let states = m.take_crash_states();
    let state = states.first().expect("crash point 1 captured");
    let mut values: Vec<Vec<u8>> = (1..=seeds)
        .map(|seed| {
            state
                .materialize(CrashSpec::Adversarial { seed })
                .read_vec(line.base(), 8)
        })
        .collect();
    values.sort();
    values.dedup();
    ControlReport {
        epoch_race_errors,
        distinct_images: values.len(),
        seeds,
    }
}

/// Run the whole cross-validation: all eleven rows (fanned out like
/// the campaign) plus the positive control.
pub fn run_crossval(cfg: &CampaignConfig) -> CrossvalReport {
    let apps = fan_rows(cfg.parallelism, |name, ops, runner| {
        run_row(name, ops, runner, cfg)
    });
    let control = positive_control(cfg.adversarial_seeds);
    CrossvalReport { apps, control }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crashtest::ROWS;

    #[test]
    fn positive_control_is_live_ammunition() {
        let control = positive_control(8);
        assert!(
            control.epoch_race_errors >= 1,
            "seeded race not flagged: {control:?}"
        );
        assert!(
            control.distinct_images >= 2,
            "adversarial images did not diverge: {control:?}"
        );
        assert!(control.passed());
    }

    #[test]
    fn echo_row_is_sound_and_non_vacuous() {
        let (name, ops, runner) = ROWS[0];
        let cfg = CampaignConfig {
            points: 3,
            adversarial_seeds: 4,
            parallelism: 1,
        };
        let row = run_row(name, ops, runner, &cfg);
        assert_eq!(row.images, row.points.len() * 6); // 2 corners + 4 seeds
        assert!(
            row.violations.is_empty(),
            "order-impossible images: {:?}",
            row.violations
        );
        assert!(
            row.proven_lines.iter().sum::<usize>() > 0,
            "vacuous proof: {:?}",
            row.proven_lines
        );
    }

    #[test]
    fn report_json_shape_and_gate() {
        let report = CrossvalReport {
            apps: vec![AppCrossval {
                name: "echo",
                points: vec![2, 4],
                images: 20,
                proven_lines: vec![3, 7],
                violations: Vec::new(),
            }],
            control: ControlReport {
                epoch_race_errors: 1,
                distinct_images: 2,
                seeds: 8,
            },
        };
        assert!(report.passed());
        let doc = report.to_json();
        assert_eq!(doc.get("passed").and_then(Json::as_f64), None); // bool, not number
        assert_eq!(doc.get("total_images").and_then(Json::as_f64), Some(20.0));
        assert_eq!(
            doc.get("total_proven_lines").and_then(Json::as_f64),
            Some(10.0)
        );
        let table = report.summary_table();
        assert!(table.contains("echo"), "{table}");
        assert!(table.contains("sound"), "{table}");

        // One flipped line anywhere fails the gate.
        let mut bad = report.clone();
        bad.apps[0].violations.push(CrossvalViolation {
            at: 2,
            spec: "adversarial:3".into(),
            lines: vec![7],
        });
        assert!(!bad.passed());
        assert!(bad.summary_table().contains("UNSOUND"));
    }
}
