//! Phase profiles of the serving sweep: where simulated time goes.
//!
//! The serve section answers "how do the latency percentiles move";
//! this module answers "*why*": every simulated request's latency is an
//! exact sum of three phases on the simulated clock —
//!
//! * **queue** — arrival until the shard starts serving (FIFO wait),
//! * **replay** — the mechanism-independent part of the service time
//!   (volatile work plus store/flush issue costs), and
//! * **fence stall** — ordering charges at fences plus persist-buffer
//!   overflow stalls, as accumulated by
//!   [`hops::Replayer::stall_total_ns`].
//!
//! Aggregating the phases per app × mechanism gives the inclusive
//! totals; the **tail attribution** table restricts the same sum to
//! requests at or above each sweep point's reported p99, so the
//! percentages say what the p99+ tail is actually made of — queue
//! build-up past the knee, fence stalls below it. The identity
//! `latency = queue + replay + fence_stall` holds per request, so each
//! row's percentages sum to exactly 100.
//!
//! Everything here derives from the same samples that feed the serve
//! histograms (simulated clock only), so the `profile` report section
//! is deterministic per `(scale, seed, shards, arrival)` — like
//! `serve`, it sits outside the golden deterministic subset.

use crate::serve::{ServeConfig, LOAD_FRACTIONS, SERVE_MODELS};
use hops::PersistModel;
use pmobs::Json;

/// Tail attribution at one sweep point: what the p99+ requests spent
/// their time on.
#[derive(Debug, Clone, PartialEq)]
pub struct TailPoint {
    /// Offered load as a fraction of baseline capacity
    /// ([`LOAD_FRACTIONS`] entry).
    pub load_fraction: f64,
    /// Offered load (req/s).
    pub offered_rps: f64,
    /// The point's reported (interpolated) p99 latency — the tail
    /// threshold.
    pub p99_ns: u64,
    /// Requests with latency ≥ `p99_ns` (never zero: the interpolated
    /// p99 is at most the observed maximum).
    pub tail_requests: u64,
    /// Total latency of those requests (ns).
    pub tail_total_ns: u64,
    /// Share of `tail_total_ns` spent queueing (percent).
    pub queue_pct: f64,
    /// Share spent in mechanism-independent replay (percent).
    pub replay_pct: f64,
    /// Share spent in fence/ofence/dfence + PB-overflow stalls
    /// (percent).
    pub fence_stall_pct: f64,
}

/// Phase totals for one mechanism of one app, across every sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismProfile {
    /// The persistence mechanism.
    pub model: PersistModel,
    /// Exclusive queueing time over all simulated requests (ns).
    pub queue_ns: u64,
    /// Exclusive mechanism-independent replay time (ns).
    pub replay_ns: u64,
    /// Exclusive ordering-stall time (ns).
    pub fence_stall_ns: u64,
    /// Inclusive service time: `replay_ns + fence_stall_ns`.
    pub service_ns: u64,
    /// Inclusive latency: `queue_ns + service_ns`.
    pub total_ns: u64,
    /// One row per [`LOAD_FRACTIONS`] entry.
    pub tail: Vec<TailPoint>,
}

/// Phase profile of one Table 1 application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Table 1 name.
    pub name: String,
    /// One entry per [`SERVE_MODELS`] entry, in that order.
    pub mechanisms: Vec<MechanismProfile>,
}

/// Serialize profiles for the report's schema-v5 `profile` section.
pub fn profile_json(profiles: &[AppProfile], cfg: &ServeConfig) -> Json {
    let apps: Vec<Json> = profiles
        .iter()
        .map(|p| {
            let mechanisms: Vec<Json> = p
                .mechanisms
                .iter()
                .map(|m| {
                    let tail: Vec<Json> = m
                        .tail
                        .iter()
                        .map(|t| {
                            Json::obj()
                                .field("load_fraction", t.load_fraction)
                                .field("offered_rps", t.offered_rps)
                                .field("p99_ns", t.p99_ns)
                                .field("tail_requests", t.tail_requests)
                                .field("tail_total_ns", t.tail_total_ns)
                                .field("queue_pct", t.queue_pct)
                                .field("replay_pct", t.replay_pct)
                                .field("fence_stall_pct", t.fence_stall_pct)
                        })
                        .collect();
                    Json::obj()
                        .field("model", m.model.to_string().as_str())
                        .field("queue_ns", m.queue_ns)
                        .field("replay_ns", m.replay_ns)
                        .field("fence_stall_ns", m.fence_stall_ns)
                        .field("service_ns", m.service_ns)
                        .field("total_ns", m.total_ns)
                        .field("tail", tail)
                })
                .collect();
            Json::obj()
                .field("name", p.name.as_str())
                .field("mechanisms", mechanisms)
        })
        .collect();
    Json::obj()
        .field("shards", cfg.shards as u64)
        .field("arrival", cfg.arrival.to_string().as_str())
        .field(
            "load_fractions",
            LOAD_FRACTIONS
                .iter()
                .copied()
                .map(Json::from)
                .collect::<Vec<_>>(),
        )
        .field(
            "models",
            SERVE_MODELS
                .iter()
                .map(|m| Json::from(m.to_string()))
                .collect::<Vec<_>>(),
        )
        .field("apps", apps)
}

/// Render the tail-attribution tables as text (one block per app,
/// mirroring the serve table's layout).
pub fn profile_table(profiles: &[AppProfile]) -> String {
    let mut out = String::new();
    out.push_str("Phase profile: where p99+ tail time goes (queue / replay / fence stall)\n");
    for p in profiles {
        out.push_str(&format!("\n  {}\n", p.name));
        out.push_str(
            "    mechanism        load   p99 (us)   tail-req     queue%   replay%   stall%\n",
        );
        for m in &p.mechanisms {
            for t in &m.tail {
                out.push_str(&format!(
                    "    {:<15} {:>5.2} {:>10.1} {:>10} {:>9.1} {:>9.1} {:>8.1}\n",
                    m.model.to_string(),
                    t.load_fraction,
                    t.p99_ns as f64 / 1000.0,
                    t.tail_requests,
                    t.queue_pct,
                    t.replay_pct,
                    t.fence_stall_pct
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::Arrival;

    fn sample_profiles() -> Vec<AppProfile> {
        vec![AppProfile {
            name: "hashmap".into(),
            mechanisms: vec![MechanismProfile {
                model: PersistModel::X86Nvm,
                queue_ns: 600,
                replay_ns: 300,
                fence_stall_ns: 100,
                service_ns: 400,
                total_ns: 1000,
                tail: vec![TailPoint {
                    load_fraction: 1.25,
                    offered_rps: 5e5,
                    p99_ns: 9000,
                    tail_requests: 3,
                    tail_total_ns: 30_000,
                    queue_pct: 80.0,
                    replay_pct: 15.0,
                    fence_stall_pct: 5.0,
                }],
            }],
        }]
    }

    #[test]
    fn profile_json_shape() {
        let cfg = ServeConfig {
            scale: 0.05,
            seed: 42,
            shards: 4,
            arrival: Arrival::Bursty,
            parallelism: 1,
        };
        let doc = profile_json(&sample_profiles(), &cfg);
        let parsed = pmobs::json::parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed.get("shards").and_then(Json::as_f64), Some(4.0));
        let apps = parsed.get("apps").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(apps.len(), 1);
        let mech = apps[0].get("mechanisms").and_then(|m| m.as_arr()).unwrap();
        let tail = mech[0].get("tail").and_then(|t| t.as_arr()).unwrap();
        let row = &tail[0];
        for key in [
            "load_fraction",
            "offered_rps",
            "p99_ns",
            "tail_requests",
            "tail_total_ns",
            "queue_pct",
            "replay_pct",
            "fence_stall_pct",
        ] {
            assert!(row.get(key).is_some(), "tail row missing {key}");
        }
    }

    #[test]
    fn profile_table_mentions_every_phase() {
        let text = profile_table(&sample_profiles());
        assert!(text.contains("hashmap"));
        assert!(text.contains("queue%"));
        assert!(text.contains("x86-64 (NVM)"));
    }
}
