//! Figure 4 — distribution of epoch sizes in unique 64 B cache lines.
//!
//! Prints each application's bucket fractions (1/2/3/4/5/6–63/≥64) and
//! benchmarks epoch segmentation + histogram construction, the hot path
//! of the offline analysis.
//!
//! Regenerate the full figure with
//! `cargo run --release --bin whisper-report -- fig4`.

use pmtrace::analysis;
use whisper::suite::{run_app, SuiteConfig, APP_NAMES};
use whisper_bench::{criterion_group, criterion_main, Criterion};

fn bench_fig4(c: &mut Criterion) {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let mut group = c.benchmark_group("fig4_epoch_sizes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in APP_NAMES {
        let r = run_app(name, &cfg);
        let hist = analysis::epoch_size_histogram(&analysis::split_epochs(&r.run.events));
        eprintln!("[fig4] {name:<12} {hist} (paper: ~75% singletons for native/library apps)");
        group.bench_function(name, |b| {
            b.iter(|| {
                let epochs = analysis::split_epochs(std::hint::black_box(&r.run.events));
                std::hint::black_box(analysis::epoch_size_histogram(&epochs))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
