//! Figure 10 — runtime of the five persistence configurations.
//!
//! For each gem5-subset application, prints the normalized runtimes
//! (x86-64 NVM = 1.0) and benchmarks the model replay itself across all
//! five configurations. The paper's averages: PWQ 0.845, HOPS(NVM)
//! 0.757, HOPS(PWQ) 0.743, IDEAL 0.593.
//!
//! Regenerate the full figure with
//! `cargo run --release --bin whisper-report -- fig10`.

use hops::{replay, HopsConfig, PersistModel, TimingConfig};
use whisper::suite::{run_app, SuiteConfig, SIM_APPS};
use whisper_bench::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let tcfg = TimingConfig::default();
    let hcfg = HopsConfig::default();
    let mut group = c.benchmark_group("fig10_persistence_models");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in SIM_APPS {
        let r = run_app(name, &cfg);
        for (model, norm) in &r.analysis.fig10 {
            eprintln!("[fig10] {name:<12} {model:>16}: {norm:.3}");
        }
        for model in PersistModel::ALL {
            group.bench_function(format!("{name}/{model}"), |b| {
                b.iter(|| {
                    std::hint::black_box(replay(
                        std::hint::black_box(&r.run.events),
                        &tcfg,
                        &hcfg,
                        model,
                    ))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
