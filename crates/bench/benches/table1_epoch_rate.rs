//! Table 1 — epochs per second for every WHISPER application.
//!
//! Each benchmark runs one application's workload on the instrumented
//! machine; besides Criterion's wall-clock measurement of the simulator
//! itself, the *simulated* epoch rate (the number Table 1 reports) is
//! printed once per application for direct comparison with the paper.
//!
//! Regenerate the full table with
//! `cargo run --release --bin whisper-report -- table1`.

use pmtrace::analysis;
use whisper::suite::{run_app, SuiteConfig, APP_NAMES};
use whisper_bench::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let mut group = c.benchmark_group("table1_epochs_per_second");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in APP_NAMES {
        // Print the simulated rate once, outside the timing loop.
        let r = run_app(name, &cfg);
        let eps = analysis::epochs_per_second(
            analysis::split_epochs(&r.run.events).len(),
            r.run.duration_ns,
        );
        eprintln!("[table1] {name:<12} {eps:>12.0} epochs/s (simulated)");
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_app(name, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
