//! Figure 5 — self- and cross-thread epoch dependencies within the
//! 50 µs window.
//!
//! Prints each application's dependent-epoch fractions beside the
//! paper's, and benchmarks the WAW dependency scan (the most expensive
//! analysis pass: a hash lookup per line per epoch).
//!
//! Regenerate the full figure with
//! `cargo run --release --bin whisper-report -- fig5`.

use pmtrace::analysis;
use whisper::suite::{run_app, SuiteConfig, APP_NAMES};
use whisper_bench::{criterion_group, criterion_main, Criterion};

const PAPER_SELF: [(&str, f64); 11] = [
    ("echo", 54.5),
    ("nstore-ycsb", 40.2),
    ("nstore-tpcc", 27.18),
    ("redis", 82.5),
    ("ctree", 79.0),
    ("hashmap", 81.0),
    ("vacation", 40.0),
    ("memcached", 63.5),
    ("nfs", 55.0),
    ("exim", 45.27),
    ("mysql", 17.89),
];

fn bench_fig5(c: &mut Criterion) {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let mut group = c.benchmark_group("fig5_dependencies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in APP_NAMES {
        let r = run_app(name, &cfg);
        let epochs = analysis::split_epochs(&r.run.events);
        let deps = analysis::dependencies(&epochs);
        let paper = PAPER_SELF
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        eprintln!(
            "[fig5] {name:<12} self {:>5.1}% (paper {paper:>5.1}%), cross {:>6.3}%",
            deps.self_fraction() * 100.0,
            deps.cross_fraction() * 100.0
        );
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(analysis::dependencies(std::hint::black_box(&epochs))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
