//! Figure 3 — distribution of transaction sizes (epochs per durable
//! transaction).
//!
//! Runs the transaction-bearing applications, prints each measured
//! median beside the paper's value, and benchmarks the trace-analysis
//! pipeline that computes the statistic.
//!
//! Regenerate the full figure with
//! `cargo run --release --bin whisper-report -- fig3`.

use pmtrace::analysis;
use whisper::suite::{run_app, SuiteConfig};
use whisper_bench::{criterion_group, criterion_main, Criterion};

const PAPER_MEDIANS: [(&str, u64); 8] = [
    ("echo", 307),
    ("nstore-ycsb", 42),
    ("nstore-tpcc", 197),
    ("redis", 6),
    ("ctree", 11),
    ("hashmap", 11),
    ("vacation", 4),
    ("memcached", 4),
];

fn bench_fig3(c: &mut Criterion) {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let mut group = c.benchmark_group("fig3_tx_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, paper) in PAPER_MEDIANS {
        let r = run_app(name, &cfg);
        let epochs = analysis::split_epochs(&r.run.events);
        let median = analysis::tx_stats(&epochs).median().unwrap_or(0);
        eprintln!("[fig3] {name:<12} median {median:>4} epochs/tx (paper {paper})");
        group.bench_function(name, |b| {
            b.iter(|| {
                let epochs = analysis::split_epochs(std::hint::black_box(&r.run.events));
                std::hint::black_box(analysis::tx_stats(&epochs).median())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
