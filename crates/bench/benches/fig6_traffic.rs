//! Figure 6 — proportion of PM accesses among all memory accesses.
//!
//! Runs the six gem5-subset applications and prints the PM share beside
//! the paper's numbers (echo 5.49 %, ycsb 8.71 %, redis 0.74 %, ctree
//! 3.32 %, hashmap 2.6 %, vacation 0.36 %, mean ≈ 3.5 %); the benchmark
//! measures the instrumented machine's throughput driving each
//! workload, since access counting is free at trace time.
//!
//! Regenerate the full figure with
//! `cargo run --release --bin whisper-report -- fig6`.

use whisper::suite::{run_app, SuiteConfig, SIM_APPS};
use whisper_bench::{criterion_group, criterion_main, Criterion};

fn bench_fig6(c: &mut Criterion) {
    let cfg = SuiteConfig {
        scale: 0.02,
        seed: 42,
        parallelism: 1,
        worker_threads: 4,
    };
    let mut group = c.benchmark_group("fig6_pm_traffic_share");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in SIM_APPS {
        let r = run_app(name, &cfg);
        eprintln!(
            "[fig6] {name:<12} PM share {:>5.2}% ({})",
            r.analysis.pm_fraction * 100.0,
            r.run.stats
        );
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_app(name, &cfg).run.stats.pm_fraction()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
