//! Ablations for the design choices DESIGN.md calls out.
//!
//! 1. **Redo vs. undo logging** (Section 5.1): undo records must be
//!    ordered before their data writes, fragmenting a transaction into
//!    alternating epochs; redo logging batches. Measures epochs per
//!    identical logical transaction under both engines.
//! 2. **Allocator design** (Consequence 8): epochs and metadata bytes
//!    per alloc/free cycle for the slab-bitmap, single-heap, and buddy
//!    allocators.
//! 3. **Persist-buffer sizing** (Section 6.4): HOPS runtime under PB
//!    capacities from 8 to 64 entries, replayed on a hashmap trace.

use hops::{replay, HopsConfig, PersistModel, TimingConfig};
use memsim::{Machine, MachineConfig, PmWriter};
use pmalloc::{BuddyAlloc, PmAllocator, SingleHeapAlloc, SlabBitmapAlloc};
use pmem::AddrRange;
use pmtrace::{analysis, Category, Tid};
use pmtx::{ClearPolicy, MinTxEngine, RedoTxEngine, TxMem, UndoTxEngine};
use whisper_bench::{criterion_group, criterion_main, Criterion};

const TID: Tid = Tid(0);
const WRITES_PER_TX: usize = 8;

fn epochs_per_tx_undo() -> usize {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let mut eng = UndoTxEngine::format(&mut m, AddrRange::new(pm.base, 4 << 20), 4);
    let data = pm.base + (4 << 20);
    m.trace_mut().clear();
    eng.begin(&mut m, TID).unwrap();
    for i in 0..WRITES_PER_TX as u64 {
        eng.tx_write_u64(&mut m, TID, data + i * 64, i, Category::UserData)
            .unwrap();
    }
    eng.commit(&mut m, TID).unwrap();
    analysis::split_epochs(m.trace().events()).len()
}

fn epochs_per_tx_redo() -> usize {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let mut eng = RedoTxEngine::format(&mut m, AddrRange::new(pm.base, 4 << 20), 4);
    let data = pm.base + (4 << 20);
    m.trace_mut().clear();
    eng.begin(&mut m, TID).unwrap();
    for i in 0..WRITES_PER_TX as u64 {
        eng.tx_write_u64(&mut m, TID, data + i * 64, i, Category::UserData)
            .unwrap();
    }
    eng.commit(&mut m, TID).unwrap();
    analysis::split_epochs(m.trace().events()).len()
}

fn epochs_per_tx_mintx() -> usize {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let mut eng = MinTxEngine::format(&mut m, AddrRange::new(pm.base, 4 << 20), 4);
    let data = pm.base + (4 << 20);
    m.trace_mut().clear();
    eng.begin(&mut m, TID).unwrap();
    for i in 0..WRITES_PER_TX as u64 {
        eng.write_u64(&mut m, TID, data + i * 64, i, Category::UserData)
            .unwrap();
    }
    eng.commit(&mut m, TID).unwrap();
    analysis::split_epochs(m.trace().events()).len()
}

fn epochs_per_tx_undo_batched() -> usize {
    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let mut eng = UndoTxEngine::format(&mut m, AddrRange::new(pm.base, 4 << 20), 4);
    eng.set_clear_policy(ClearPolicy::Batched);
    let data = pm.base + (4 << 20);
    m.trace_mut().clear();
    eng.begin(&mut m, TID).unwrap();
    for i in 0..WRITES_PER_TX as u64 {
        eng.tx_write_u64(&mut m, TID, data + i * 64, i, Category::UserData)
            .unwrap();
    }
    eng.commit(&mut m, TID).unwrap();
    analysis::split_epochs(m.trace().events()).len()
}

fn bench_logging_discipline(c: &mut Criterion) {
    eprintln!(
        "[ablation:logging] {WRITES_PER_TX}-write tx: undo = {} epochs, redo = {} epochs, \
         undo+batched-clears = {} epochs (Section 5.1's suggested batching), \
         Kolli-style ideal = {} epochs (the paper's 3-epoch reference)",
        epochs_per_tx_undo(),
        epochs_per_tx_redo(),
        epochs_per_tx_undo_batched(),
        epochs_per_tx_mintx(),
    );
    let mut group = c.benchmark_group("ablation_logging_discipline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("undo_tx", |b| {
        b.iter(|| std::hint::black_box(epochs_per_tx_undo()));
    });
    group.bench_function("redo_tx", |b| {
        b.iter(|| std::hint::black_box(epochs_per_tx_redo()));
    });
    group.bench_function("undo_tx_batched_clears", |b| {
        b.iter(|| std::hint::black_box(epochs_per_tx_undo_batched()));
    });
    group.bench_function("ideal_3_epoch_tx", |b| {
        b.iter(|| std::hint::black_box(epochs_per_tx_mintx()));
    });
    group.finish();
}

fn alloc_cycle<A: PmAllocator>(m: &mut Machine, a: &mut A, rounds: usize) -> (usize, u64) {
    let mut w = PmWriter::new(TID);
    m.trace_mut().clear();
    for _ in 0..rounds {
        let p = a.alloc(m, &mut w, 96).expect("alloc");
        a.free(m, &mut w, p).expect("free");
    }
    let epochs = analysis::split_epochs(m.trace().events());
    let meta: u64 = epochs
        .iter()
        .map(|e| e.cat_bytes(Category::AllocMeta))
        .sum();
    (epochs.len(), meta)
}

fn bench_allocators(c: &mut Criterion) {
    let rounds = 64;
    let mut group = c.benchmark_group("ablation_allocator_design");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let mut m = Machine::new(MachineConfig::asplos17());
    let pm = m.config().map.pm;
    let mut w = PmWriter::new(TID);
    let mut slab = SlabBitmapAlloc::format(&mut m, &mut w, AddrRange::new(pm.base, 16 << 20));
    let (e, b) = alloc_cycle(&mut m, &mut slab, rounds);
    eprintln!("[ablation:alloc] slab-bitmap : {e} epochs, {b} metadata bytes / {rounds} cycles");
    group.bench_function("slab_bitmap", |bch| {
        bch.iter(|| std::hint::black_box(alloc_cycle(&mut m, &mut slab, rounds)));
    });

    let mut m = Machine::new(MachineConfig::asplos17());
    let mut single = SingleHeapAlloc::format(
        &mut m,
        &mut w,
        AddrRange::new(pm.base + (16 << 20), 16 << 20),
    );
    let (e, b) = alloc_cycle(&mut m, &mut single, rounds);
    eprintln!("[ablation:alloc] single-heap : {e} epochs, {b} metadata bytes / {rounds} cycles");
    group.bench_function("single_heap", |bch| {
        bch.iter(|| std::hint::black_box(alloc_cycle(&mut m, &mut single, rounds)));
    });

    let mut m = Machine::new(MachineConfig::asplos17());
    let mut buddy = BuddyAlloc::format(
        &mut m,
        &mut w,
        AddrRange::new(pm.base + (32 << 20), 16 << 20),
    );
    let (e, b) = alloc_cycle(&mut m, &mut buddy, rounds);
    eprintln!("[ablation:alloc] buddy       : {e} epochs, {b} metadata bytes / {rounds} cycles");
    group.bench_function("buddy", |bch| {
        bch.iter(|| std::hint::black_box(alloc_cycle(&mut m, &mut buddy, rounds)));
    });

    group.finish();
}

fn bench_pb_sizing(c: &mut Criterion) {
    // Echo's large batched transactions stress PB capacity hardest.
    let run = whisper::apps::echo::run_unpaced(1200, 42);
    let tcfg = TimingConfig::default();
    let mut group = c.benchmark_group("ablation_pb_sizing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for entries in [8usize, 16, 32, 64] {
        let hcfg = HopsConfig {
            pb_entries: entries,
            flush_threshold: entries / 2,
            ..HopsConfig::default()
        };
        let base = replay(&run.events, &tcfg, &hcfg, PersistModel::X86Nvm).runtime_ns;
        let hops = replay(&run.events, &tcfg, &hcfg, PersistModel::HopsNvm).runtime_ns;
        eprintln!(
            "[ablation:pb] {entries:>2}-entry PB: HOPS normalized runtime {:.3} \
             (paper: \"sustaining high performance with small-sized PBs\"; \
             it evaluates 32 entries, flush at 16)",
            hops as f64 / base as f64
        );
        group.bench_function(format!("pb_{entries}"), |b| {
            b.iter(|| {
                std::hint::black_box(replay(&run.events, &tcfg, &hcfg, PersistModel::HopsNvm))
            });
        });
    }
    group.finish();
}

fn bench_pb_coalescing(c: &mut Criterion) {
    // Section 6.3 leaves epoch coalescing as future work; the
    // functional model implements it. Measure media writes saved on a
    // self-dependency-heavy pattern (repeated counter updates).
    use hops::HopsSystem;
    use pmem::AddrRange as AR;
    let run_writes = |coalesce: bool| {
        let cfg = HopsConfig {
            coalesce,
            ..HopsConfig::default()
        };
        let mut sys = HopsSystem::new(cfg, AR::new(0, 1 << 20), 1);
        for e in 0..64u64 {
            for _ in 0..4 {
                sys.store(0, 0x40, &e.to_le_bytes()).unwrap(); // hot counter line
                sys.store(0, 0x80 + e * 64, &e.to_le_bytes()).unwrap();
            }
            sys.ofence(0).unwrap();
        }
        sys.dfence(0).unwrap();
        sys.media_writes()
    };
    eprintln!(
        "[ablation:coalesce] media writes without coalescing: {}, with: {}",
        run_writes(false),
        run_writes(true)
    );
    let mut group = c.benchmark_group("ablation_pb_coalescing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("plain", |b| {
        b.iter(|| std::hint::black_box(run_writes(false)));
    });
    group.bench_function("coalescing", |b| {
        b.iter(|| std::hint::black_box(run_writes(true)));
    });
    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    // N-store ships six storage engines; the paper evaluates OPTWAL.
    // Compare it against the OPTSP shadow-paging variant implemented
    // here (Section 2's copy-on-write alternative).
    let wal = whisper::apps::nstore::run_ycsb(600, 3);
    let sp = whisper::apps::nstore::run_ycsb_sp(600, 3);
    for r in [&wal, &sp] {
        let epochs = analysis::split_epochs(&r.events);
        let med = analysis::tx_stats(&epochs).median().unwrap_or(0);
        let amp = analysis::amplification(&epochs)
            .amplification()
            .unwrap_or(0.0);
        eprintln!(
            "[ablation:engine] {:<16} median {med:>3} epochs/tx, amplification {amp:.1}x",
            r.name
        );
    }
    let mut group = c.benchmark_group("ablation_nstore_engines");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("optwal", |b| {
        b.iter(|| std::hint::black_box(whisper::apps::nstore::run_ycsb(200, 3)));
    });
    group.bench_function("optsp", |b| {
        b.iter(|| std::hint::black_box(whisper::apps::nstore::run_ycsb_sp(200, 3)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_logging_discipline,
    bench_allocators,
    bench_pb_sizing,
    bench_pb_coalescing,
    bench_engine_comparison
);
criterion_main!(benches);
