//! Tracked suite-throughput benchmark: wall-clock and simulated-op
//! rates for the full 11-application WHISPER suite.
//!
//! Unlike the per-figure criterion benches, this one exists to be
//! *committed*: its JSON output is the perf trajectory later PRs defend
//! (see `BENCH_3.json` at the repo root). It runs `run_suite` end to
//! end — applications, single-pass analysis, and the Figure 10 replay —
//! so the number it reports is the ceiling on everything
//! `whisper-report` can do.
//!
//! ```text
//! cargo bench --bench suite_throughput -- [--scales quick,default]
//!     [--samples N] [--parallel N] [--seed N] [--out PATH]
//! ```
//!
//! Scales: `quick` = 0.05 (the CI configuration), `default` = 1.0 (the
//! statistically stable configuration). Each scale runs `--samples`
//! times (default 2) and reports every sample plus the best; rates are
//! computed from the best wall-clock. `--out` writes the machine-
//! readable document (schema below) via the in-tree `pmobs` encoder.
//!
//! ```text
//! benchmark        "suite_throughput"
//! schema_version   1
//! seed, parallelism, samples
//! scales           [{name, scale, wall_s (best), wall_s_samples,
//!                    apps, trace_events, mem_accesses, epochs,
//!                    events_per_sec, accesses_per_sec}]
//! ```

use pmobs::Json;
use std::time::Instant;
use whisper::suite::{run_suite, SuiteConfig};

struct ScaleOutcome {
    name: String,
    scale: f64,
    wall_s: Vec<f64>,
    apps: u64,
    trace_events: u64,
    mem_accesses: u64,
    epochs: u64,
}

fn run_scale(
    name: &str,
    scale: f64,
    seed: u64,
    parallelism: usize,
    samples: usize,
) -> ScaleOutcome {
    let cfg = SuiteConfig {
        scale,
        seed,
        parallelism,
        worker_threads: 4,
    };
    let mut out = ScaleOutcome {
        name: name.to_string(),
        scale,
        wall_s: Vec::with_capacity(samples),
        apps: 0,
        trace_events: 0,
        mem_accesses: 0,
        epochs: 0,
    };
    for i in 0..samples {
        let t0 = Instant::now();
        let results = run_suite(&cfg);
        let wall = t0.elapsed().as_secs_f64();
        out.wall_s.push(wall);
        if i == 0 {
            out.apps = results.len() as u64;
            for r in &results {
                out.trace_events += r.run.events.len() as u64;
                out.mem_accesses += r.run.stats.total();
                out.epochs += r.analysis.epoch_count as u64;
            }
        }
        eprintln!("  {name} (scale {scale}): sample {} = {wall:.3}s", i + 1);
    }
    out
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn scale_json(o: &ScaleOutcome) -> Json {
    let wall = best(&o.wall_s);
    Json::obj()
        .field("name", o.name.as_str())
        .field("scale", o.scale)
        .field("wall_s", wall)
        .field(
            "wall_s_samples",
            o.wall_s.iter().map(|&w| Json::from(w)).collect::<Vec<_>>(),
        )
        .field("apps", o.apps)
        .field("trace_events", o.trace_events)
        .field("mem_accesses", o.mem_accesses)
        .field("epochs", o.epochs)
        .field("events_per_sec", o.trace_events as f64 / wall)
        .field("accesses_per_sec", o.mem_accesses as f64 / wall)
}

fn die(msg: &str) -> ! {
    eprintln!("suite_throughput: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scales = vec![
        ("quick".to_string(), 0.05f64),
        ("default".to_string(), 1.0f64),
    ];
    let mut samples = 2usize;
    let mut parallelism = 1usize;
    let mut seed = 42u64;
    let mut out_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scales" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| die("--scales needs a list"));
                scales = spec
                    .split(',')
                    .map(|s| match s.trim() {
                        "quick" => ("quick".to_string(), 0.05),
                        "default" => ("default".to_string(), 1.0),
                        other => match other.parse::<f64>() {
                            Ok(v) => (other.to_string(), v),
                            Err(_) => die(&format!("unknown scale {other:?}")),
                        },
                    })
                    .collect();
            }
            "--samples" => {
                i += 1;
                samples = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--samples needs a count"));
            }
            "--parallel" => {
                i += 1;
                parallelism = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--parallel needs a worker count"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--out needs a path"))
                        .clone(),
                );
            }
            // `cargo bench` passes `--bench` through to the target.
            "--bench" => {}
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    eprintln!("suite_throughput: seed {seed}, {parallelism} worker(s), {samples} sample(s)");
    let outcomes: Vec<ScaleOutcome> = scales
        .iter()
        .map(|(name, scale)| run_scale(name, *scale, seed, parallelism, samples))
        .collect();

    println!("suite throughput (seed {seed}, {parallelism} worker(s)):");
    for o in &outcomes {
        let wall = best(&o.wall_s);
        println!(
            "  {:<8} scale {:<5} {:>8.3}s wall  {:>12.0} events/s  {:>12.0} accesses/s  ({} epochs)",
            o.name,
            o.scale,
            wall,
            o.trace_events as f64 / wall,
            o.mem_accesses as f64 / wall,
            o.epochs,
        );
    }

    if let Some(path) = out_path {
        let doc = Json::obj()
            .field("benchmark", "suite_throughput")
            .field("schema_version", 1u64)
            .field("seed", seed)
            .field("parallelism", parallelism as u64)
            .field("samples", samples as u64)
            .field(
                "scales",
                outcomes.iter().map(scale_json).collect::<Vec<_>>(),
            );
        std::fs::write(&path, doc.to_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("results written to {path}");
    }
}
