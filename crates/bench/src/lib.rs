//! Benchmark harness crate; the Criterion benches live in `benches/`.
//! See DESIGN.md for the per-experiment index.
#![forbid(unsafe_code)]
