//! Micro-benchmark harness for the WHISPER figure/table benches.
//!
//! The build environment vendors no external crates, so this crate
//! provides the small slice of the `criterion` API the benches use —
//! `Criterion::benchmark_group`, per-group `sample_size` /
//! `warm_up_time` / `measurement_time`, `bench_function` with a
//! `Bencher::iter` timing loop, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark reports min / median / max
//! time per iteration over the configured samples. See DESIGN.md for
//! the per-experiment index of the benches themselves.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        // Warm-up: run single iterations until the warm-up budget is
        // spent, using the observed mean to size the measurement
        // samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_elapsed = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += b.iters;
            warm_elapsed += b.elapsed;
        }
        let mean = warm_elapsed
            .checked_div(warm_iters as u32)
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));

        // Size each sample so the whole measurement phase roughly fits
        // the configured budget.
        let per_sample = self.measurement / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / mean.as_nanos().max(1))
            .max(1)
            .min(u64::MAX as u128) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.checked_div(b.iters as u32).unwrap_or_default());
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        eprintln!(
            "  {}/{id:<14} time: [{} {} {}]  ({} samples x {iters} iters)",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
            self.sample_size,
        );
        self
    }

    pub fn finish(self) {}
}

/// Timing handle passed to the benchmark closure; `iter` runs the
/// workload `iters` times and records the elapsed wall-clock.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} \u{b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Build a function that runs each benchmark target with a fresh
/// [`Criterion`] — the signature `criterion_group!(name, target, ...)`
/// expects.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Build `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self_test");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        assert!(calls > 0, "benchmark closure never ran");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 \u{b5}s");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
