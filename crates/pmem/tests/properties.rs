//! Property tests for the media layer.

use miniprop::prelude::*;
use pmem::{lines_spanning, AddrRange, Line, PmDevice, PmImage, LINE_SIZE};

const RANGE_LEN: u64 = 1 << 16;

fn spans() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    collection::vec(
        (0u64..RANGE_LEN - 512, collection::vec(any::<u8>(), 1..300)),
        1..24,
    )
}

proptest! {
    /// Writes land byte-exactly, with later writes overriding earlier
    /// overlapping ones — same semantics as a `Vec<u8>` model.
    #[test]
    fn device_matches_flat_model(writes in spans()) {
        let mut dev = PmDevice::new(AddrRange::new(0, RANGE_LEN));
        let mut model = vec![0u8; RANGE_LEN as usize];
        for (addr, data) in &writes {
            dev.write(*addr, data);
            model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        for (addr, data) in &writes {
            prop_assert_eq!(
                dev.read_vec(*addr, data.len()),
                model[*addr as usize..*addr as usize + data.len()].to_vec()
            );
        }
        // Random probes across the whole range.
        for probe in (0..RANGE_LEN - 64).step_by(977) {
            prop_assert_eq!(dev.read_vec(probe, 64), model[probe as usize..probe as usize + 64].to_vec());
        }
    }

    /// Images round-trip the full device contents.
    #[test]
    fn image_round_trip(writes in spans()) {
        let mut dev = PmDevice::new(AddrRange::new(0, RANGE_LEN));
        for (addr, data) in &writes {
            dev.write(*addr, data);
        }
        let img = dev.image();
        let dev2 = PmDevice::from_image(&img);
        for probe in (0..RANGE_LEN - 64).step_by(577) {
            prop_assert_eq!(dev.read_vec(probe, 64), dev2.read_vec(probe, 64));
        }
        prop_assert_eq!(img.diff_lines(&dev2.image()), Vec::<Line>::new());
    }

    /// Endurance counters equal the number of line-chunks written.
    #[test]
    fn write_counters_match_spans(writes in spans()) {
        let mut dev = PmDevice::new(AddrRange::new(0, RANGE_LEN));
        let mut expected = 0u64;
        for (addr, data) in &writes {
            dev.write(*addr, data);
            expected += lines_spanning(*addr, data.len()).count() as u64;
        }
        prop_assert_eq!(dev.total_line_writes(), expected);
    }

    /// Line arithmetic: every address maps into exactly one line, and
    /// span decomposition tiles the range exactly once.
    #[test]
    fn line_decomposition_tiles(addr in 0u64..1 << 40, len in 1usize..5000) {
        let chunks: Vec<_> = lines_spanning(addr, len).collect();
        let total: usize = chunks.iter().map(|(_, _, n)| *n).sum();
        prop_assert_eq!(total, len);
        let mut cursor = addr;
        for (line, start, n) in chunks {
            prop_assert_eq!(start, cursor);
            prop_assert!(line.contains(start));
            prop_assert!(line.contains(start + n as u64 - 1));
            prop_assert!(n as u64 <= LINE_SIZE);
            cursor += n as u64;
        }
    }

    /// `set_line` splices exactly one line and leaves the rest alone.
    #[test]
    fn image_splice_is_local(line_no in 1u64..(RANGE_LEN / LINE_SIZE - 1), fill in any::<u8>()) {
        let mut img = PmImage::empty(AddrRange::new(0, RANGE_LEN));
        img.set_line(Line(line_no), [fill; 64]);
        let line = Line(line_no);
        prop_assert_eq!(img.read_vec(line.base(), 64), vec![fill; 64]);
        prop_assert_eq!(img.read_vec(line.base() - 64, 64), vec![0; 64]);
        prop_assert_eq!(img.read_vec(line.base() + 64, 64), vec![0; 64]);
    }
}
