//! Property tests for the media layer.

use miniprop::prelude::*;
use pmem::{lines_spanning, AddrRange, Line, PmDevice, PmImage, LINE_SIZE};

const RANGE_LEN: u64 = 1 << 16;

fn spans() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    collection::vec(
        (0u64..RANGE_LEN - 512, collection::vec(any::<u8>(), 1..300)),
        1..24,
    )
}

proptest! {
    /// Writes land byte-exactly, with later writes overriding earlier
    /// overlapping ones — same semantics as a `Vec<u8>` model.
    #[test]
    fn device_matches_flat_model(writes in spans()) {
        let mut dev = PmDevice::new(AddrRange::new(0, RANGE_LEN));
        let mut model = vec![0u8; RANGE_LEN as usize];
        for (addr, data) in &writes {
            dev.write(*addr, data);
            model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        for (addr, data) in &writes {
            prop_assert_eq!(
                dev.read_vec(*addr, data.len()),
                model[*addr as usize..*addr as usize + data.len()].to_vec()
            );
        }
        // Random probes across the whole range.
        for probe in (0..RANGE_LEN - 64).step_by(977) {
            prop_assert_eq!(dev.read_vec(probe, 64), model[probe as usize..probe as usize + 64].to_vec());
        }
    }

    /// Images round-trip the full device contents.
    #[test]
    fn image_round_trip(writes in spans()) {
        let mut dev = PmDevice::new(AddrRange::new(0, RANGE_LEN));
        for (addr, data) in &writes {
            dev.write(*addr, data);
        }
        let img = dev.image();
        let dev2 = PmDevice::from_image(&img);
        for probe in (0..RANGE_LEN - 64).step_by(577) {
            prop_assert_eq!(dev.read_vec(probe, 64), dev2.read_vec(probe, 64));
        }
        prop_assert_eq!(img.diff_lines(&dev2.image()), Vec::<Line>::new());
    }

    /// Endurance counters equal the number of line-chunks written.
    #[test]
    fn write_counters_match_spans(writes in spans()) {
        let mut dev = PmDevice::new(AddrRange::new(0, RANGE_LEN));
        let mut expected = 0u64;
        for (addr, data) in &writes {
            dev.write(*addr, data);
            expected += lines_spanning(*addr, data.len()).count() as u64;
        }
        prop_assert_eq!(dev.total_line_writes(), expected);
    }

    /// Line arithmetic: every address maps into exactly one line, and
    /// span decomposition tiles the range exactly once.
    #[test]
    fn line_decomposition_tiles(addr in 0u64..1 << 40, len in 1usize..5000) {
        let chunks: Vec<_> = lines_spanning(addr, len).collect();
        let total: usize = chunks.iter().map(|(_, _, n)| *n).sum();
        prop_assert_eq!(total, len);
        let mut cursor = addr;
        for (line, start, n) in chunks {
            prop_assert_eq!(start, cursor);
            prop_assert!(line.contains(start));
            prop_assert!(line.contains(start + n as u64 - 1));
            prop_assert!(n as u64 <= LINE_SIZE);
            cursor += n as u64;
        }
    }

    /// `set_line` splices exactly one line and leaves the rest alone.
    #[test]
    fn image_splice_is_local(line_no in 1u64..(RANGE_LEN / LINE_SIZE - 1), fill in any::<u8>()) {
        let mut img = PmImage::empty(AddrRange::new(0, RANGE_LEN));
        img.set_line(Line(line_no), [fill; 64]);
        let line = Line(line_no);
        prop_assert_eq!(img.read_vec(line.base(), 64), vec![fill; 64]);
        prop_assert_eq!(img.read_vec(line.base() - 64, 64), vec![0; 64]);
        prop_assert_eq!(img.read_vec(line.base() + 64, 64), vec![0; 64]);
    }
}

// ---------------------------------------------------------------------
// Paged backing vs. the naive per-line reference model
// ---------------------------------------------------------------------

/// The reference model the paged backing replaced: one 64-byte entry
/// per written line in a hash map. The paged device must be
/// behaviorally indistinguishable from this under any op sequence.
#[derive(Default)]
struct NaiveLineModel {
    lines: std::collections::HashMap<Line, [u8; 64]>,
    writes: u64,
}

impl NaiveLineModel {
    fn write(&mut self, addr: u64, bytes: &[u8]) {
        let mut src = 0;
        for (line, start, len) in lines_spanning(addr, bytes.len()) {
            let off = line.offset_of(start);
            let data = self.lines.entry(line).or_insert([0; 64]);
            data[off..off + len].copy_from_slice(&bytes[src..src + len]);
            src += len;
            self.writes += 1;
        }
    }

    fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        let mut dst = 0;
        for (line, start, n) in lines_spanning(addr, len) {
            let off = line.offset_of(start);
            if let Some(data) = self.lines.get(&line) {
                buf[dst..dst + n].copy_from_slice(&data[off..off + n]);
            }
            dst += n;
        }
        buf
    }
}

/// Device based at 4 GiB (the asplos17 PM base: page arithmetic must be
/// base-relative) and long enough to span four 64 KiB backing pages.
const PAGED_BASE: u64 = 4 << 30;
const PAGED_LEN: u64 = 200 * 1024;
const PAGE_BYTES: u64 = 64 * 1024;

/// Write offsets: uniform over the range, plus a boosted population of
/// unaligned spans straddling a backing-page boundary.
fn paged_ops() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    let anywhere = 0u64..PAGED_LEN - 512;
    let near_boundary = (1u64..3, 0u64..384).prop_map(|(page, off)| page * PAGE_BYTES - 192 + off);
    collection::vec(
        (
            prop_oneof![anywhere, near_boundary],
            collection::vec(any::<u8>(), 1..400),
        ),
        1..32,
    )
}

proptest! {
    /// Contents, endurance accounting, line views, and image snapshots
    /// of the paged device all match the naive per-line model.
    #[test]
    fn paged_device_matches_line_map_model(ops in paged_ops()) {
        let mut dev = PmDevice::new(AddrRange::new(PAGED_BASE, PAGED_LEN));
        let mut model = NaiveLineModel::default();
        for (off, data) in &ops {
            dev.write(PAGED_BASE + off, data);
            model.write(PAGED_BASE + off, data);
        }
        // Byte contents agree at every write site and across the range
        // (probe stride is coprime to the page size).
        for (off, data) in &ops {
            prop_assert_eq!(
                dev.read_vec(PAGED_BASE + off, data.len()),
                model.read(PAGED_BASE + off, data.len())
            );
        }
        for probe in (0..PAGED_LEN - 64).step_by(4099) {
            prop_assert_eq!(
                dev.read_vec(PAGED_BASE + probe, 64),
                model.read(PAGED_BASE + probe, 64)
            );
        }
        // Accounting: live lines and endurance totals.
        prop_assert_eq!(dev.lines_in_use(), model.lines.len());
        prop_assert_eq!(dev.total_line_writes(), model.writes);
        // Borrowed line views equal the model's lines, and every
        // written line has a positive endurance count.
        for (line, data) in &model.lines {
            prop_assert_eq!(dev.line_view(*line), data);
            prop_assert!(dev.line_writes(*line) >= 1);
        }
        // The image holds exactly the written lines, in sorted order,
        // and round-trips through from_image.
        let img = dev.image();
        let mut want: Vec<Line> = model.lines.keys().copied().collect();
        want.sort_unstable();
        let got: Vec<Line> = img.lines().map(|(l, _)| l).collect();
        prop_assert_eq!(got, want);
        let dev2 = PmDevice::from_image(&img);
        prop_assert_eq!(img.diff_lines(&dev2.image()), Vec::<Line>::new());
        prop_assert_eq!(dev2.lines_in_use(), model.lines.len());
    }
}
