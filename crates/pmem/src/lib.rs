//! Simulated byte-addressable memory devices for the WHISPER/HOPS
//! reproduction.
//!
//! Emerging non-volatile memories (NVM) promise DRAM-like latencies with
//! durability. The WHISPER paper (ASPLOS 2017) defines *persistent memory*
//! (PM) as NVM accessed with byte addressability, at low latency, via
//! regular memory instructions. This crate provides the lowest layer of
//! the reproduction: the *media* — sparse, 64-byte-line-granular byte
//! stores standing in for an NVM DIMM ([`PmDevice`]) and for DRAM
//! ([`DramDevice`]), plus durable snapshots ([`PmImage`]) used to model
//! power failures.
//!
//! Nothing in this crate models caches, fences, or ordering; that is the
//! job of the `memsim` crate, which decides *when* bytes written by a
//! program actually reach the device. A byte that has reached
//! [`PmDevice`] is durable: it survives [`PmDevice::image`] /
//! [`PmDevice::from_image`] round-trips, which is how a crash is
//! simulated.
//!
//! # Example
//!
//! ```
//! use pmem::{AddressMap, PmDevice, LINE_SIZE};
//!
//! let map = AddressMap::asplos17();
//! let mut pm = PmDevice::new(map.pm);
//! let addr = map.pm.base;
//! pm.write(addr, b"hello");
//! assert_eq!(pm.read_vec(addr, 5), b"hello");
//! // One line was touched once:
//! assert_eq!(pm.line_writes(pmem::Line::containing(addr)), 1);
//! assert_eq!(LINE_SIZE, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
pub mod hash;
mod image;
mod line;
mod range;

pub use device::{DramDevice, PmDevice};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use image::PmImage;
pub use line::{lines_spanning, Line, LineSpan, LINE_SIZE};
pub use range::{AddrRange, AddressMap, MemoryKind};

/// A byte address in the simulated physical address space.
///
/// A single flat address space holds both DRAM and PM; [`AddressMap`]
/// records which range is which, mirroring the paper's heterogeneous
/// memory assumption (Section 1: systems contain both volatile DRAM and
/// NVM, and applications selectively allocate data in PM).
pub type Addr = u64;
