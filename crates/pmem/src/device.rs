//! The memory devices: sparse line-granular byte stores.

use crate::image::PmImage;
use crate::line::{lines_spanning, Line, LINE_SIZE};
use crate::range::AddrRange;
use crate::Addr;
use std::collections::HashMap;

/// Backing storage shared by both device types: a sparse map from line
/// number to 64 bytes. Unwritten bytes read as zero.
#[derive(Debug, Clone, Default)]
struct LineStore {
    lines: HashMap<Line, [u8; LINE_SIZE as usize]>,
}

impl LineStore {
    fn read(&self, addr: Addr, buf: &mut [u8]) {
        let mut dst = 0;
        for (line, start, len) in lines_spanning(addr, buf.len()) {
            let off = line.offset_of(start);
            match self.lines.get(&line) {
                Some(data) => buf[dst..dst + len].copy_from_slice(&data[off..off + len]),
                None => buf[dst..dst + len].fill(0),
            }
            dst += len;
        }
    }

    fn write(&mut self, addr: Addr, bytes: &[u8]) -> Vec<Line> {
        let mut touched = Vec::new();
        let mut src = 0;
        for (line, start, len) in lines_spanning(addr, bytes.len()) {
            let off = line.offset_of(start);
            let data = self.lines.entry(line).or_insert([0; LINE_SIZE as usize]);
            data[off..off + len].copy_from_slice(&bytes[src..src + len]);
            src += len;
            touched.push(line);
        }
        touched
    }
}

/// The simulated persistent-memory device (an NVM DIMM).
///
/// Bytes written here are *durable*: they survive a crash, modeled by
/// snapshotting with [`PmDevice::image`] and rebuilding with
/// [`PmDevice::from_image`]. The device also counts writes per line,
/// because "most NVM technologies are expected to have limited write
/// endurance" (Section 5.3) and the reproduction reports write traffic.
///
/// The device knows nothing about ordering; callers (the `memsim` cache
/// model, HOPS persist buffers) decide what reaches it and when.
#[derive(Debug, Clone)]
pub struct PmDevice {
    range: AddrRange,
    store: LineStore,
    line_writes: HashMap<Line, u64>,
    total_line_writes: u64,
}

impl PmDevice {
    /// A fresh, zeroed device covering `range`.
    pub fn new(range: AddrRange) -> PmDevice {
        PmDevice {
            range,
            store: LineStore::default(),
            line_writes: HashMap::new(),
            total_line_writes: 0,
        }
    }

    /// Rebuild a device from a crash image, preserving its contents
    /// (write counters restart at zero — the media survived, the tally
    /// is per-run).
    pub fn from_image(image: &PmImage) -> PmDevice {
        PmDevice {
            range: image.range(),
            store: LineStore {
                lines: image.lines().map(|(l, d)| (l, *d)).collect(),
            },
            line_writes: HashMap::new(),
            total_line_writes: 0,
        }
    }

    /// The address range this device decodes.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        assert!(
            self.range.contains_span(addr, buf.len()),
            "PM read out of range: {addr:#x}+{}",
            buf.len()
        );
        self.store.read(addr, buf);
    }

    /// Convenience: read `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Write bytes to the media. This is the durability point.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        assert!(
            self.range.contains_span(addr, bytes.len()),
            "PM write out of range: {addr:#x}+{}",
            bytes.len()
        );
        let touched = self.store.write(addr, bytes);
        self.total_line_writes += touched.len() as u64;
        for line in touched {
            *self.line_writes.entry(line).or_insert(0) += 1;
        }
    }

    /// How many times `line` has been written (endurance counter).
    pub fn line_writes(&self, line: Line) -> u64 {
        self.line_writes.get(&line).copied().unwrap_or(0)
    }

    /// Total line writes across the device since construction.
    pub fn total_line_writes(&self) -> u64 {
        self.total_line_writes
    }

    /// Number of distinct lines ever written.
    pub fn lines_in_use(&self) -> usize {
        self.store.lines.len()
    }

    /// Snapshot the durable contents (what survives a power failure).
    pub fn image(&self) -> PmImage {
        PmImage::from_lines(self.range, self.store.lines.iter().map(|(l, d)| (*l, *d)))
    }
}

/// The simulated DRAM device.
///
/// Identical storage behavior, but *volatile*: there is deliberately no
/// `image()` — on a crash its contents are simply dropped, which is what
/// forces WHISPER applications to be crash-recoverable from PM alone.
#[derive(Debug, Clone)]
pub struct DramDevice {
    range: AddrRange,
    store: LineStore,
}

impl DramDevice {
    /// A fresh, zeroed device covering `range`.
    pub fn new(range: AddrRange) -> DramDevice {
        DramDevice {
            range,
            store: LineStore::default(),
        }
    }

    /// The address range this device decodes.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        assert!(
            self.range.contains_span(addr, buf.len()),
            "DRAM read out of range: {addr:#x}+{}",
            buf.len()
        );
        self.store.read(addr, buf);
    }

    /// Convenience: read `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Write bytes.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        assert!(
            self.range.contains_span(addr, bytes.len()),
            "DRAM write out of range: {addr:#x}+{}",
            bytes.len()
        );
        self.store.write(addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::AddrRange;

    fn dev() -> PmDevice {
        PmDevice::new(AddrRange::new(0, 1 << 20))
    }

    #[test]
    fn unwritten_reads_zero() {
        let d = dev();
        assert_eq!(d.read_vec(1000, 8), vec![0; 8]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = dev();
        d.write(100, b"abcdef");
        assert_eq!(d.read_vec(100, 6), b"abcdef");
    }

    #[test]
    fn cross_line_write() {
        let mut d = dev();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        d.write(60, &data);
        assert_eq!(d.read_vec(60, 200), data);
        // Touched lines 0..=4 (60..260 spans 5 lines).
        assert_eq!(d.lines_in_use(), 5);
    }

    #[test]
    fn partial_line_write_preserves_neighbors() {
        let mut d = dev();
        d.write(0, &[0xAA; 64]);
        d.write(10, &[0xBB; 4]);
        let v = d.read_vec(0, 64);
        assert_eq!(&v[0..10], &[0xAA; 10]);
        assert_eq!(&v[10..14], &[0xBB; 4]);
        assert_eq!(&v[14..], &[0xAA; 50]);
    }

    #[test]
    fn endurance_counters() {
        let mut d = dev();
        d.write(0, &[1; 8]);
        d.write(4, &[2; 8]);
        d.write(64, &[3; 1]);
        assert_eq!(d.line_writes(Line(0)), 2);
        assert_eq!(d.line_writes(Line(1)), 1);
        assert_eq!(d.line_writes(Line(2)), 0);
        assert_eq!(d.total_line_writes(), 3);
    }

    #[test]
    fn image_round_trip() {
        let mut d = dev();
        d.write(100, b"persist me");
        d.write(5000, &[7; 128]);
        let img = d.image();
        let d2 = PmDevice::from_image(&img);
        assert_eq!(d2.read_vec(100, 10), b"persist me");
        assert_eq!(d2.read_vec(5000, 128), vec![7; 128]);
        assert_eq!(d2.range(), d.range());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut d = dev();
        d.write((1 << 20) - 4, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let d = dev();
        d.read_vec(1 << 20, 1);
    }

    #[test]
    fn dram_round_trip_and_no_persistence_api() {
        let mut d = DramDevice::new(AddrRange::new(0, 4096));
        d.write(0, b"volatile");
        assert_eq!(d.read_vec(0, 8), b"volatile");
        // (No image() on DramDevice — enforced at compile time.)
    }
}
