//! The memory devices: sparse line-granular byte stores.
//!
//! Backing storage is a lazily-allocated page table rather than a
//! `HashMap<Line, [u8; 64]>`: the device range is divided into 64 KiB
//! pages (1024 lines), materialized on first write. A load or store is
//! then two array indexings and a `memcpy` — no hashing, no per-line
//! entry allocation — which matters because every simulated memory
//! access in `memsim` bottoms out here. A 4 GiB range costs one
//! pointer-sized slot per page (512 KiB of `None`s) until written.

use crate::image::PmImage;
use crate::line::{lines_spanning, Line, LINE_SIZE};
use crate::range::AddrRange;
use crate::Addr;

/// Lines per backing page: 1024 lines = 64 KiB of data. Small enough
/// that sparse workloads don't over-allocate, large enough that the
/// page-slot vector for a 4 GiB device stays in the hundreds of KiB.
const PAGE_LINES: usize = 1024;
const PAGE_BYTES: usize = PAGE_LINES * LINE_SIZE as usize;
/// `u64` words in the per-page written bitmap.
const PAGE_WORDS: usize = PAGE_LINES / 64;

/// All-zero line returned when viewing storage that was never written.
static ZERO_LINE: [u8; LINE_SIZE as usize] = [0; LINE_SIZE as usize];

/// One 64 KiB backing page plus a written bitmap. The bitmap
/// distinguishes a line explicitly written with zeros from one never
/// written at all — the two read identically, but only the former
/// appears in [`PmImage`] snapshots and `lines_in_use` counts, exactly
/// as with the previous hash-map backing.
#[derive(Debug, Clone)]
struct Page {
    bytes: [u8; PAGE_BYTES],
    written: [u64; PAGE_WORDS],
}

impl Page {
    fn new() -> Box<Page> {
        Box::new(Page {
            bytes: [0; PAGE_BYTES],
            written: [0; PAGE_WORDS],
        })
    }

    #[inline]
    fn line_bytes(&self, slot: usize) -> &[u8; LINE_SIZE as usize] {
        let off = slot * LINE_SIZE as usize;
        self.bytes[off..off + LINE_SIZE as usize]
            .try_into()
            .expect("slot is line-sized")
    }

    /// Mark `slot` written; true if it was not written before.
    #[inline]
    fn mark_written(&mut self, slot: usize) -> bool {
        let (word, bit) = (slot / 64, slot % 64);
        let fresh = self.written[word] & (1 << bit) == 0;
        self.written[word] |= 1 << bit;
        fresh
    }

    #[inline]
    fn is_written(&self, slot: usize) -> bool {
        self.written[slot / 64] & (1 << (slot % 64)) != 0
    }
}

/// Backing storage shared by both device types: a two-level page table
/// over the device's line range. Unwritten bytes read as zero.
#[derive(Debug, Clone)]
struct LineStore {
    /// Line number of the first line the range touches; all page/slot
    /// arithmetic is relative to this, so a device based at 4 GiB does
    /// not pay for the address space below it.
    first_line: u64,
    pages: Vec<Option<Box<Page>>>,
    /// Distinct lines ever written (sum of written-bitmap popcounts).
    live_lines: usize,
}

impl LineStore {
    fn new(range: AddrRange) -> LineStore {
        let first_line = Line::containing(range.base).0;
        let last_line = if range.len == 0 {
            first_line
        } else {
            Line::containing(range.end() - 1).0 + 1
        };
        let lines = (last_line - first_line) as usize;
        LineStore {
            first_line,
            pages: vec![None; lines.div_ceil(PAGE_LINES)],
            live_lines: 0,
        }
    }

    /// Page index and slot for `line`, or `None` outside the table.
    #[inline]
    fn locate(&self, line: Line) -> Option<(usize, usize)> {
        let idx = line.0.checked_sub(self.first_line)? as usize;
        let page = idx / PAGE_LINES;
        if page < self.pages.len() {
            Some((page, idx % PAGE_LINES))
        } else {
            None
        }
    }

    fn read(&self, addr: Addr, buf: &mut [u8]) {
        let mut dst = 0;
        for (line, start, len) in lines_spanning(addr, buf.len()) {
            let off = line.offset_of(start);
            let (page, slot) = self.locate(line).expect("caller checked range");
            match &self.pages[page] {
                Some(p) => {
                    let base = slot * LINE_SIZE as usize + off;
                    buf[dst..dst + len].copy_from_slice(&p.bytes[base..base + len]);
                }
                None => buf[dst..dst + len].fill(0),
            }
            dst += len;
        }
    }

    /// Write `bytes` at `addr`, invoking `on_line` once per line touched
    /// (the hook replaces the `Vec<Line>` the old backing returned, so
    /// endurance counting costs no allocation).
    fn write(&mut self, addr: Addr, bytes: &[u8], mut on_line: impl FnMut(Line)) {
        let mut src = 0;
        for (line, start, len) in lines_spanning(addr, bytes.len()) {
            let off = line.offset_of(start);
            let (page, slot) = self.locate(line).expect("caller checked range");
            let p = self.pages[page].get_or_insert_with(Page::new);
            let base = slot * LINE_SIZE as usize + off;
            p.bytes[base..base + len].copy_from_slice(&bytes[src..src + len]);
            if p.mark_written(slot) {
                self.live_lines += 1;
            }
            src += len;
            on_line(line);
        }
    }

    /// Borrowed view of one line's 64 bytes (zeros if never written).
    #[inline]
    fn line_view(&self, line: Line) -> &[u8; LINE_SIZE as usize] {
        match self.locate(line) {
            Some((page, slot)) => match &self.pages[page] {
                Some(p) => p.line_bytes(slot),
                None => &ZERO_LINE,
            },
            None => &ZERO_LINE,
        }
    }

    /// All written lines in ascending order (page-major iteration is
    /// already sorted because pages partition the line range in order).
    fn written_lines(&self) -> impl Iterator<Item = (Line, &[u8; LINE_SIZE as usize])> + '_ {
        self.pages.iter().enumerate().flat_map(move |(pi, page)| {
            page.iter().flat_map(move |p| {
                (0..PAGE_LINES).filter_map(move |slot| {
                    if p.is_written(slot) {
                        let line = Line(self.first_line + (pi * PAGE_LINES + slot) as u64);
                        Some((line, p.line_bytes(slot)))
                    } else {
                        None
                    }
                })
            })
        })
    }
}

/// The simulated persistent-memory device (an NVM DIMM).
///
/// Bytes written here are *durable*: they survive a crash, modeled by
/// snapshotting with [`PmDevice::image`] and rebuilding with
/// [`PmDevice::from_image`]. The device also counts writes per line,
/// because "most NVM technologies are expected to have limited write
/// endurance" (Section 5.3) and the reproduction reports write traffic.
///
/// The device knows nothing about ordering; callers (the `memsim` cache
/// model, HOPS persist buffers) decide what reaches it and when.
#[derive(Debug, Clone)]
pub struct PmDevice {
    range: AddrRange,
    store: LineStore,
    /// Per-line endurance counters, paged like the data (8 KiB per
    /// counter page, allocated on a page's first counted write).
    line_writes: Vec<Option<Box<[u64; PAGE_LINES]>>>,
    total_line_writes: u64,
}

impl PmDevice {
    /// A fresh, zeroed device covering `range`.
    pub fn new(range: AddrRange) -> PmDevice {
        let store = LineStore::new(range);
        let counter_pages = store.pages.len();
        PmDevice {
            range,
            store,
            line_writes: vec![None; counter_pages],
            total_line_writes: 0,
        }
    }

    /// Rebuild a device from a crash image, preserving its contents
    /// (write counters restart at zero — the media survived, the tally
    /// is per-run).
    pub fn from_image(image: &PmImage) -> PmDevice {
        let mut dev = PmDevice::new(image.range());
        for (line, data) in image.lines() {
            dev.store.write(line.base(), data, |_| {});
        }
        dev
    }

    /// The address range this device decodes.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        assert!(
            self.range.contains_span(addr, buf.len()),
            "PM read out of range: {addr:#x}+{}",
            buf.len()
        );
        self.store.read(addr, buf);
    }

    /// Convenience: read `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Borrowed view of one cache line's current contents (zeros if the
    /// line was never written). This is the allocation-free snapshot
    /// path for `memsim`'s write-back machinery; the line need only
    /// overlap the device range the way [`PmDevice::read`] would allow.
    pub fn line_view(&self, line: Line) -> &[u8; LINE_SIZE as usize] {
        self.store.line_view(line)
    }

    /// Write bytes to the media. This is the durability point.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        assert!(
            self.range.contains_span(addr, bytes.len()),
            "PM write out of range: {addr:#x}+{}",
            bytes.len()
        );
        let first_line = self.store.first_line;
        let counters = &mut self.line_writes;
        let total = &mut self.total_line_writes;
        self.store.write(addr, bytes, |line| {
            let idx = (line.0 - first_line) as usize;
            let page = counters[idx / PAGE_LINES].get_or_insert_with(|| Box::new([0; PAGE_LINES]));
            page[idx % PAGE_LINES] += 1;
            *total += 1;
        });
    }

    /// How many times `line` has been written (endurance counter).
    pub fn line_writes(&self, line: Line) -> u64 {
        match self.store.locate(line) {
            Some((page, slot)) => self.line_writes[page]
                .as_ref()
                .map_or(0, |counts| counts[slot]),
            None => 0,
        }
    }

    /// Total line writes across the device since construction.
    pub fn total_line_writes(&self) -> u64 {
        self.total_line_writes
    }

    /// Number of distinct lines ever written.
    pub fn lines_in_use(&self) -> usize {
        self.store.live_lines
    }

    /// Snapshot the durable contents (what survives a power failure).
    pub fn image(&self) -> PmImage {
        PmImage::from_lines(self.range, self.store.written_lines().map(|(l, d)| (l, *d)))
    }
}

/// The simulated DRAM device.
///
/// Identical storage behavior, but *volatile*: there is deliberately no
/// `image()` — on a crash its contents are simply dropped, which is what
/// forces WHISPER applications to be crash-recoverable from PM alone.
#[derive(Debug, Clone)]
pub struct DramDevice {
    range: AddrRange,
    store: LineStore,
}

impl DramDevice {
    /// A fresh, zeroed device covering `range`.
    pub fn new(range: AddrRange) -> DramDevice {
        DramDevice {
            range,
            store: LineStore::new(range),
        }
    }

    /// The address range this device decodes.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        assert!(
            self.range.contains_span(addr, buf.len()),
            "DRAM read out of range: {addr:#x}+{}",
            buf.len()
        );
        self.store.read(addr, buf);
    }

    /// Convenience: read `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Borrowed view of one cache line's current contents (zeros if the
    /// line was never written).
    pub fn line_view(&self, line: Line) -> &[u8; LINE_SIZE as usize] {
        self.store.line_view(line)
    }

    /// Write bytes.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside the device range.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        assert!(
            self.range.contains_span(addr, bytes.len()),
            "DRAM write out of range: {addr:#x}+{}",
            bytes.len()
        );
        self.store.write(addr, bytes, |_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::AddrRange;

    fn dev() -> PmDevice {
        PmDevice::new(AddrRange::new(0, 1 << 20))
    }

    #[test]
    fn unwritten_reads_zero() {
        let d = dev();
        assert_eq!(d.read_vec(1000, 8), vec![0; 8]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = dev();
        d.write(100, b"abcdef");
        assert_eq!(d.read_vec(100, 6), b"abcdef");
    }

    #[test]
    fn cross_line_write() {
        let mut d = dev();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        d.write(60, &data);
        assert_eq!(d.read_vec(60, 200), data);
        // Touched lines 0..=4 (60..260 spans 5 lines).
        assert_eq!(d.lines_in_use(), 5);
    }

    #[test]
    fn partial_line_write_preserves_neighbors() {
        let mut d = dev();
        d.write(0, &[0xAA; 64]);
        d.write(10, &[0xBB; 4]);
        let v = d.read_vec(0, 64);
        assert_eq!(&v[0..10], &[0xAA; 10]);
        assert_eq!(&v[10..14], &[0xBB; 4]);
        assert_eq!(&v[14..], &[0xAA; 50]);
    }

    #[test]
    fn endurance_counters() {
        let mut d = dev();
        d.write(0, &[1; 8]);
        d.write(4, &[2; 8]);
        d.write(64, &[3; 1]);
        assert_eq!(d.line_writes(Line(0)), 2);
        assert_eq!(d.line_writes(Line(1)), 1);
        assert_eq!(d.line_writes(Line(2)), 0);
        assert_eq!(d.total_line_writes(), 3);
    }

    #[test]
    fn image_round_trip() {
        let mut d = dev();
        d.write(100, b"persist me");
        d.write(5000, &[7; 128]);
        let img = d.image();
        let d2 = PmDevice::from_image(&img);
        assert_eq!(d2.read_vec(100, 10), b"persist me");
        assert_eq!(d2.read_vec(5000, 128), vec![7; 128]);
        assert_eq!(d2.range(), d.range());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut d = dev();
        d.write((1 << 20) - 4, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let d = dev();
        d.read_vec(1 << 20, 1);
    }

    #[test]
    fn dram_round_trip_and_no_persistence_api() {
        let mut d = DramDevice::new(AddrRange::new(0, 4096));
        d.write(0, b"volatile");
        assert_eq!(d.read_vec(0, 8), b"volatile");
        // (No image() on DramDevice — enforced at compile time.)
    }

    #[test]
    fn line_view_matches_read_and_zero_fallback() {
        let mut d = dev();
        d.write(130, b"view");
        assert_eq!(d.line_view(Line(2)), &{
            let mut want = [0u8; 64];
            want[2..6].copy_from_slice(b"view");
            want
        });
        // A never-written line views as all zeros without allocating.
        assert_eq!(d.line_view(Line(3)), &[0u8; 64]);
        // So does a line past the device range (mirrors line_writes).
        assert_eq!(d.line_view(Line(1 << 40)), &[0u8; 64]);
    }

    #[test]
    fn explicit_zero_write_is_live_and_imaged() {
        let mut d = dev();
        d.write(64, &[0u8; 64]);
        assert_eq!(d.lines_in_use(), 1);
        assert_eq!(d.image().line_count(), 1);
    }

    #[test]
    fn high_base_range_is_cheap_and_correct() {
        // A device based at 4 GiB must not allocate pages for the
        // address space below it, and all arithmetic is base-relative.
        let base = 4u64 << 30;
        let mut d = PmDevice::new(AddrRange::new(base, 1 << 20));
        d.write(base + 65_530, &[9; 12]); // straddles a page boundary
        assert_eq!(d.read_vec(base + 65_530, 12), vec![9; 12]);
        assert_eq!(d.lines_in_use(), 2);
        assert_eq!(d.total_line_writes(), 2);
    }

    #[test]
    fn page_spanning_write_round_trips() {
        let mut d = dev();
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        d.write(3, &data);
        assert_eq!(d.read_vec(3, data.len()), data);
    }
}
