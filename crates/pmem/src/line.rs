//! Cache-line arithmetic.
//!
//! All of WHISPER's epoch analysis is at 64 B cache-line granularity
//! ("75% of epochs update exactly one 64B cache line"), so lines are a
//! first-class concept throughout the workspace.

use crate::Addr;

/// Size of a cache line in bytes, matching the x86-64 systems the paper
/// traces (Section 4).
pub const LINE_SIZE: u64 = 64;

/// A 64-byte cache-line number (address divided by [`LINE_SIZE`]).
///
/// Newtype so line numbers cannot be confused with byte addresses.
///
/// ```
/// use pmem::{Line, LINE_SIZE};
/// let l = Line::containing(130);
/// assert_eq!(l, Line(2));
/// assert_eq!(l.base(), 2 * LINE_SIZE);
/// assert!(l.contains(191));
/// assert!(!l.contains(192));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Line(pub u64);

impl Line {
    /// The line containing byte address `addr`.
    pub fn containing(addr: Addr) -> Line {
        Line(addr / LINE_SIZE)
    }

    /// First byte address of this line.
    pub fn base(self) -> Addr {
        self.0 * LINE_SIZE
    }

    /// Whether byte address `addr` falls inside this line.
    pub fn contains(self, addr: Addr) -> bool {
        Line::containing(addr) == self
    }

    /// The line immediately after this one.
    pub fn next(self) -> Line {
        Line(self.0 + 1)
    }

    /// Byte offset of `addr` within this line.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `addr` is not inside this line.
    pub fn offset_of(self, addr: Addr) -> usize {
        debug_assert!(self.contains(addr), "{addr:#x} not in {self:?}");
        (addr - self.base()) as usize
    }
}

impl std::fmt::Display for Line {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Iterator over the lines spanned by a byte range, with the byte
/// sub-range that falls in each line. Produced by [`lines_spanning`].
#[derive(Debug, Clone)]
pub struct LineSpan {
    cur: Addr,
    end: Addr,
}

impl Iterator for LineSpan {
    /// `(line, start address within span, length within line)`
    type Item = (Line, Addr, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur >= self.end {
            return None;
        }
        let line = Line::containing(self.cur);
        let line_end = line.base() + LINE_SIZE;
        let chunk_end = line_end.min(self.end);
        let item = (line, self.cur, (chunk_end - self.cur) as usize);
        self.cur = chunk_end;
        Some(item)
    }
}

/// Split the byte range `[addr, addr+len)` into per-line chunks.
///
/// ```
/// use pmem::{lines_spanning, Line};
/// let chunks: Vec<_> = lines_spanning(60, 10).collect();
/// assert_eq!(chunks, vec![(Line(0), 60, 4), (Line(1), 64, 6)]);
/// ```
pub fn lines_spanning(addr: Addr, len: usize) -> LineSpan {
    LineSpan {
        cur: addr,
        end: addr + len as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_zero() {
        assert_eq!(Line::containing(0), Line(0));
        assert_eq!(Line::containing(63), Line(0));
        assert_eq!(Line::containing(64), Line(1));
    }

    #[test]
    fn base_round_trips() {
        for a in [0u64, 1, 63, 64, 65, 4096, u64::MAX / 2] {
            let l = Line::containing(a);
            assert!(l.base() <= a);
            assert!(a < l.base() + LINE_SIZE);
        }
    }

    #[test]
    fn offset_of_works() {
        let l = Line(2);
        assert_eq!(l.offset_of(128), 0);
        assert_eq!(l.offset_of(191), 63);
    }

    #[test]
    fn span_within_one_line() {
        let v: Vec<_> = lines_spanning(10, 5).collect();
        assert_eq!(v, vec![(Line(0), 10, 5)]);
    }

    #[test]
    fn span_exact_line() {
        let v: Vec<_> = lines_spanning(64, 64).collect();
        assert_eq!(v, vec![(Line(1), 64, 64)]);
    }

    #[test]
    fn span_empty() {
        assert_eq!(lines_spanning(100, 0).count(), 0);
    }

    #[test]
    fn span_4kb_block_is_64_lines() {
        // A PMFS 4 KB block write covers 64 lines — the source of the
        // paper's large-epoch tail in Figure 4.
        let v: Vec<_> = lines_spanning(4096, 4096).collect();
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|&(_, _, n)| n == 64));
    }

    #[test]
    fn span_lengths_sum_to_total() {
        for (addr, len) in [(0u64, 1usize), (63, 2), (1, 200), (4095, 4097)] {
            let total: usize = lines_spanning(addr, len).map(|(_, _, n)| n).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Line(0)).is_empty());
    }
}
