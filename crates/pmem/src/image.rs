//! Durable crash images.

use crate::line::{Line, LINE_SIZE};
use crate::range::AddrRange;
use crate::Addr;
use std::collections::BTreeMap;

/// A snapshot of the durable contents of a [`crate::PmDevice`].
///
/// This is what "survives" a simulated power failure: the crash paths in
/// `memsim` and `hops` build an image from the device (plus whichever
/// in-flight writes they decide made it), and recovery code runs against
/// a fresh device rebuilt from the image. Everything volatile — caches,
/// write-combining buffers, persist buffers, DRAM — is absent by
/// construction.
///
/// Lines are kept in a `BTreeMap` so iteration (and therefore recovery
/// behavior in tests) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmImage {
    range: AddrRange,
    lines: BTreeMap<Line, [u8; LINE_SIZE as usize]>,
}

impl PmImage {
    /// Build an image from raw lines.
    pub fn from_lines(
        range: AddrRange,
        lines: impl IntoIterator<Item = (Line, [u8; LINE_SIZE as usize])>,
    ) -> PmImage {
        PmImage {
            range,
            lines: lines.into_iter().collect(),
        }
    }

    /// An empty (all-zero) image covering `range`.
    pub fn empty(range: AddrRange) -> PmImage {
        PmImage {
            range,
            lines: BTreeMap::new(),
        }
    }

    /// The address range of the underlying device.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Iterate over the non-zero lines.
    pub fn lines(&self) -> impl Iterator<Item = (Line, &[u8; LINE_SIZE as usize])> {
        self.lines.iter().map(|(l, d)| (*l, d))
    }

    /// Number of distinct lines captured.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Overwrite one whole line (used by crash models to splice in
    /// maybe-persisted in-flight writes).
    pub fn set_line(&mut self, line: Line, data: [u8; LINE_SIZE as usize]) {
        self.lines.insert(line, data);
    }

    /// Read bytes out of the image (unwritten bytes are zero).
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut dst = 0;
        for (line, start, n) in crate::line::lines_spanning(addr, len) {
            let off = line.offset_of(start);
            if let Some(data) = self.lines.get(&line) {
                out[dst..dst + n].copy_from_slice(&data[off..off + n]);
            }
            dst += n;
        }
        out
    }

    /// Lines present in `self` but absent or different in `other`.
    /// Useful in tests for asserting exactly what a crash lost.
    pub fn diff_lines(&self, other: &PmImage) -> Vec<Line> {
        self.lines
            .iter()
            .filter(|(l, d)| other.lines.get(l) != Some(*d))
            .map(|(l, _)| *l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmDevice;

    #[test]
    fn empty_image_reads_zero() {
        let img = PmImage::empty(AddrRange::new(0, 4096));
        assert_eq!(img.read_vec(0, 16), vec![0; 16]);
        assert_eq!(img.line_count(), 0);
    }

    #[test]
    fn image_reflects_device() {
        let mut d = PmDevice::new(AddrRange::new(0, 4096));
        d.write(70, b"xyz");
        let img = d.image();
        assert_eq!(img.read_vec(70, 3), b"xyz");
        assert_eq!(img.line_count(), 1);
    }

    #[test]
    fn set_line_splices() {
        let mut img = PmImage::empty(AddrRange::new(0, 4096));
        let mut data = [0u8; 64];
        data[5] = 9;
        img.set_line(Line(2), data);
        assert_eq!(img.read_vec(128 + 5, 1), vec![9]);
    }

    #[test]
    fn diff_lines_finds_changes() {
        let mut a = PmImage::empty(AddrRange::new(0, 4096));
        let b = PmImage::empty(AddrRange::new(0, 4096));
        a.set_line(Line(1), [1; 64]);
        assert_eq!(a.diff_lines(&b), vec![Line(1)]);
        assert!(b.diff_lines(&a).is_empty());
    }

    #[test]
    fn cross_line_read() {
        let mut img = PmImage::empty(AddrRange::new(0, 4096));
        img.set_line(Line(0), [0xAA; 64]);
        img.set_line(Line(1), [0xBB; 64]);
        let v = img.read_vec(60, 8);
        assert_eq!(v, vec![0xAA, 0xAA, 0xAA, 0xAA, 0xBB, 0xBB, 0xBB, 0xBB]);
    }
}
