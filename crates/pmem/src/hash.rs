//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a random
//! per-process key — the right choice against adversarial keys, but the
//! simulator hot path hashes nothing but its own [`Line`](crate::Line)
//! numbers and thread ids, millions of times per run. This is the
//! FxHash construction (a rotate, xor, multiply per word, as used by
//! rustc's interners): a few cycles per key, and crucially *stateless*,
//! so hash-dependent iteration order is identical across processes.
//! Nothing simulated may depend on map iteration order anyway — results
//! must be reproducible from `(scale, seed)` alone — but a deterministic
//! hasher turns any accidental dependence into a stable, testable bug
//! instead of a flaky one.
//!
//! Not for untrusted input: FxHash is trivially collidable on purpose-
//! built keys. Every key type in this workspace is simulator-generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash construction (`π`-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64`, folded a word at a time.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Builds [`FxHasher`]s; zero-sized, so maps cost nothing extra.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(0xdead_beef), hash(0xdead_beef));
        assert_ne!(hash(1), hash(2));
    }

    #[test]
    fn byte_stream_matches_itself_regardless_of_chunking() {
        let mut a = FxHasher::default();
        a.write(b"0123456789abcdef");
        let mut b = FxHasher::default();
        b.write(b"0123456789abcdef");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_like_std() {
        let mut m: FxHashMap<crate::Line, u64> = FxHashMap::default();
        m.insert(crate::Line(7), 1);
        *m.entry(crate::Line(7)).or_insert(0) += 1;
        assert_eq!(m[&crate::Line(7)], 2);
        assert_eq!(m.len(), 1);
    }
}
