//! The simulated physical address map.

use crate::Addr;

/// Which kind of memory an address belongs to.
///
/// The paper stresses that future systems are heterogeneous: DRAM for
/// the ~96% of accesses that are volatile, PM for the rest. WHISPER
/// "assumes heterogeneous memory" (Section 3) and HOPS earmarks "a
/// specific range of physical memory ... for PM" (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Volatile DRAM: contents are lost on a crash.
    Dram,
    /// Persistent memory: bytes that reach the device survive a crash.
    Pm,
}

impl std::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryKind::Dram => write!(f, "DRAM"),
            MemoryKind::Pm => write!(f, "PM"),
        }
    }
}

/// A half-open byte address range `[base, base+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// First address in the range.
    pub base: Addr,
    /// Length in bytes.
    pub len: u64,
}

impl AddrRange {
    /// Create a range. `len` may be zero (an empty range contains nothing).
    pub fn new(base: Addr, len: u64) -> AddrRange {
        AddrRange { base, len }
    }

    /// One past the last address.
    pub fn end(&self) -> Addr {
        self.base + self.len
    }

    /// Whether `addr` lies inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Whether the whole of `[addr, addr+len)` lies inside the range.
    pub fn contains_span(&self, addr: Addr, len: usize) -> bool {
        self.contains(addr) && addr + len as u64 <= self.end()
    }
}

/// The machine's physical address map: one DRAM range and one PM range.
///
/// ```
/// use pmem::{AddressMap, MemoryKind};
/// let map = AddressMap::asplos17();
/// assert_eq!(map.kind_of(map.dram.base), Some(MemoryKind::Dram));
/// assert_eq!(map.kind_of(map.pm.base), Some(MemoryKind::Pm));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// The volatile region.
    pub dram: AddrRange,
    /// The persistent region.
    pub pm: AddrRange,
}

impl AddressMap {
    /// Create a map from two non-overlapping ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap.
    pub fn new(dram: AddrRange, pm: AddrRange) -> AddressMap {
        let overlap = dram.base < pm.end() && pm.base < dram.end();
        assert!(!overlap, "DRAM and PM ranges overlap: {dram:?} vs {pm:?}");
        AddressMap { dram, pm }
    }

    /// The configuration the paper simulates (Table 3): 4 GB of DRAM and
    /// 4 GB of PM. DRAM occupies the low half of the address space.
    pub fn asplos17() -> AddressMap {
        const GB: u64 = 1 << 30;
        AddressMap::new(AddrRange::new(0, 4 * GB), AddrRange::new(4 * GB, 4 * GB))
    }

    /// Which kind of memory `addr` belongs to, or `None` for a hole.
    pub fn kind_of(&self, addr: Addr) -> Option<MemoryKind> {
        if self.dram.contains(addr) {
            Some(MemoryKind::Dram)
        } else if self.pm.contains(addr) {
            Some(MemoryKind::Pm)
        } else {
            None
        }
    }

    /// Classify a whole span; `None` if it straddles regions or a hole.
    pub fn kind_of_span(&self, addr: Addr, len: usize) -> Option<MemoryKind> {
        if self.dram.contains_span(addr, len) {
            Some(MemoryKind::Dram)
        } else if self.pm.contains_span(addr, len) {
            Some(MemoryKind::Pm)
        } else {
            None
        }
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap::asplos17()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains() {
        let r = AddrRange::new(100, 50);
        assert!(!r.contains(99));
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
    }

    #[test]
    fn range_contains_span() {
        let r = AddrRange::new(100, 50);
        assert!(r.contains_span(100, 50));
        assert!(!r.contains_span(100, 51));
        assert!(!r.contains_span(99, 2));
        assert!(r.contains_span(149, 1));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = AddrRange::new(10, 0);
        assert!(!r.contains(10));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_map_panics() {
        AddressMap::new(AddrRange::new(0, 100), AddrRange::new(50, 100));
    }

    #[test]
    fn asplos17_map_shape() {
        let m = AddressMap::asplos17();
        assert_eq!(m.dram.len, 4 << 30);
        assert_eq!(m.pm.len, 4 << 30);
        assert_eq!(m.dram.end(), m.pm.base);
    }

    #[test]
    fn kind_of_span_straddling_is_none() {
        let m = AddressMap::asplos17();
        let boundary = m.pm.base;
        assert_eq!(m.kind_of_span(boundary - 4, 8), None);
        assert_eq!(m.kind_of_span(m.pm.end() - 4, 8), None);
    }

    #[test]
    fn hole_is_none() {
        let m = AddressMap::new(AddrRange::new(0, 10), AddrRange::new(100, 10));
        assert_eq!(m.kind_of(50), None);
    }
}
