//! HOPS configuration.

/// Persist-buffer sizing, from the paper's evaluation: "We evaluate
/// HOPS with 32 entry PBs per thread, and flushing is launched at 16
/// buffered entries" (Section 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopsConfig {
    /// Persist-buffer entries per hardware thread.
    pub pb_entries: usize,
    /// Occupancy at which background flushing starts.
    pub flush_threshold: usize,
    /// Coalesce same-line stores within one epoch into a single PB
    /// entry. The paper's PB Back Ends "allow optimizations such as
    /// epoch coalescing, which we leave for future work" (Section 6.3);
    /// implemented here as that future work. Off by default to match
    /// the evaluated configuration.
    pub coalesce: bool,
}

impl Default for HopsConfig {
    fn default() -> Self {
        HopsConfig {
            pb_entries: 32,
            flush_threshold: 16,
            coalesce: false,
        }
    }
}

/// Latency parameters for the Figure 10 timing replay.
///
/// Two groups: `rec_*` are the *recording* machine's charges (fixed to
/// `memsim`'s Table 3-derived defaults, used to recover volatile time
/// from trace gaps), and the rest are the replay's own prices for the
/// persistence path. The replay prices the full cost of making a line
/// durable through the cache hierarchy and controller (hundreds of ns
/// on NVM-class media), which is what puts the paper's 15–40 %
/// persistence overheads on the x86 critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// L1 hit (volatile access, and the store cost in every model).
    pub l1_hit_ns: u64,
    /// End-to-end cost of persisting one line to the NVM device.
    pub pm_write_ns: u64,
    /// ACK latency when a persistent write queue at the memory
    /// controller is the durability point ("data becomes durable ...
    /// when it reaches the MC").
    pub pwq_ack_ns: u64,
    /// Memory controllers available for concurrent line writebacks.
    pub mem_controllers: u64,
    /// `clwb`/`clflushopt` issue cost (x86 models only; HOPS needs no
    /// flush instructions).
    pub clwb_issue_ns: u64,
    /// `sfence` base cost (x86 models).
    pub sfence_ns: u64,
    /// `ofence` cost: "simply increments the thread TS register ...
    /// a low latency operation".
    pub ofence_ns: u64,
    /// Per-line cost of tracking a store in the persist buffer and
    /// sharing writeback bandwidth with demand traffic — the PB Back
    /// Ends sit on the path to the memory controllers, so their flushes
    /// contend with ordinary traffic regardless of where durability
    /// lands (which is why the PWQ buys HOPS so little).
    pub pb_contention_ns: u64,
    /// Recorder's per-line store charge (memsim `l1_hit_ns`).
    pub rec_l1_ns: u64,
    /// Recorder's per-line persist charge (memsim `pm_write_ns`).
    pub rec_pm_write_ns: u64,
    /// Recorder's fence base charge (memsim `sfence_ns`).
    pub rec_sfence_ns: u64,
    /// Recorder's `clwb` issue charge (memsim `clwb_issue_ns`).
    pub rec_clwb_ns: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            l1_hit_ns: 1,
            pm_write_ns: 300,
            pwq_ack_ns: 190,
            mem_controllers: 2,
            clwb_issue_ns: 10,
            sfence_ns: 30,
            ofence_ns: 8,
            pb_contention_ns: 50,
            rec_l1_ns: 1,
            rec_pm_write_ns: 40,
            rec_sfence_ns: 5,
            rec_clwb_ns: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let h = HopsConfig::default();
        assert_eq!(h.pb_entries, 32);
        assert_eq!(h.flush_threshold, 16);
        let t = TimingConfig::default();
        assert!(t.pm_write_ns > t.pwq_ack_ns);
        assert_eq!(t.mem_controllers, 2);
        assert!(t.ofence_ns < t.sfence_ns);
        assert_eq!(t.rec_pm_write_ns, 40, "matches memsim's Table 3 charge");
    }
}
