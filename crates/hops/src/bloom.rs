//! Counting Bloom filter over buffered PM lines.
//!
//! "We associate counting Bloom filters with the PB Back End to
//! maintain a conservative list of buffered addresses. On a last-level
//! cache (LLC) miss, if the address is present in this list, the miss
//! is stalled until the address is written back to PM. Such stalls are
//! expected to be rare as the modified data is expected to survive
//! longer in the cache hierarchy than in the PBs." (Section 6.3.)

use pmem::Line;

/// A counting Bloom filter sized for a persist buffer's worth of lines.
///
/// Conservative by construction: [`CountingBloom::may_contain`] never
/// returns `false` for an inserted line that has not been removed
/// (no false negatives), and may return `true` for absent lines
/// (false positives — harmless stalls, as the paper accepts).
#[derive(Debug, Clone)]
pub struct CountingBloom {
    counters: Vec<u16>,
    hashes: u32,
}

impl CountingBloom {
    /// A filter with `slots` counters (rounded up to a power of two)
    /// and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `hashes` is zero.
    pub fn new(slots: usize, hashes: u32) -> CountingBloom {
        assert!(slots > 0 && hashes > 0, "degenerate Bloom filter");
        CountingBloom {
            counters: vec![0; slots.next_power_of_two()],
            hashes,
        }
    }

    /// A filter matched to the paper's 32-entry persist buffers.
    pub fn for_persist_buffer() -> CountingBloom {
        CountingBloom::new(256, 3)
    }

    fn index(&self, line: Line, i: u32) -> usize {
        // Two independent mixes combined per double hashing.
        let mut h1 = line.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h1 ^= h1 >> 32;
        let mut h2 = line.0.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) | 1;
        h2 ^= h2 >> 29;
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) as usize) & (self.counters.len() - 1)
    }

    /// Record a buffered line.
    pub fn insert(&mut self, line: Line) {
        for i in 0..self.hashes {
            let idx = self.index(line, i);
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
    }

    /// Remove one buffered occurrence of `line` (on PB writeback).
    pub fn remove(&mut self, line: Line) {
        for i in 0..self.hashes {
            let idx = self.index(line, i);
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
    }

    /// Conservative membership: `false` guarantees the line is not
    /// buffered.
    pub fn may_contain(&self, line: Line) -> bool {
        (0..self.hashes).all(|i| self.counters[self.index(line, i)] > 0)
    }

    /// Whether the filter is completely clear.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = CountingBloom::for_persist_buffer();
        for l in 0..32u64 {
            b.insert(Line(l * 7));
        }
        for l in 0..32u64 {
            assert!(b.may_contain(Line(l * 7)));
        }
    }

    #[test]
    fn remove_clears_membership() {
        let mut b = CountingBloom::for_persist_buffer();
        b.insert(Line(42));
        assert!(b.may_contain(Line(42)));
        b.remove(Line(42));
        assert!(!b.may_contain(Line(42)));
        assert!(b.is_empty());
    }

    #[test]
    fn counting_handles_duplicates() {
        let mut b = CountingBloom::for_persist_buffer();
        b.insert(Line(9));
        b.insert(Line(9));
        b.remove(Line(9));
        assert!(b.may_contain(Line(9)), "one buffered copy remains");
        b.remove(Line(9));
        assert!(!b.may_contain(Line(9)));
    }

    #[test]
    fn false_positive_rate_is_low_at_pb_occupancy() {
        let mut b = CountingBloom::for_persist_buffer();
        for l in 0..32u64 {
            b.insert(Line(l));
        }
        let fp = (1000..11_000u64)
            .filter(|&l| b.may_contain(Line(l)))
            .count();
        assert!(fp < 500, "false-positive rate {fp}/10000 too high");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_slots_panics() {
        CountingBloom::new(0, 3);
    }
}
