//! The Hands-Off Persistence System (HOPS), paper Section 6.
//!
//! HOPS "orders and persists PM updates in hardware" through per-thread
//! **persist buffers** (PBs) and two ISA primitives: a lightweight
//! ordering fence (`ofence`) that just increments the thread's epoch
//! timestamp, and a heavyweight durability fence (`dfence`) that drains
//! the thread's PB. The design goals, derived from the WHISPER
//! analysis, are: don't disturb the volatile-access path (Consequence
//! 11), make ordering cheap because epochs are common and durability is
//! rare (Consequences 1–2), buffer multiple versions of a line to
//! absorb self-dependencies (Consequence 6), and track cross-thread
//! dependencies — rare but required for correctness (Consequence 5).
//!
//! This crate provides both halves of the reproduction of Section 6:
//!
//! * [`HopsSystem`] — a *functional* model of the persist buffers with
//!   Buffered Epoch Persistency semantics: multi-versioned entries,
//!   per-thread epoch timestamps, dependency pointers captured on loss
//!   of write ownership, a global flushed-timestamp vector, and a crash
//!   model in which each thread's durable state is an epoch *prefix*.
//!   This is what the paper's Table 2 and the worked `mov/ofence/mov/
//!   dfence` example describe.
//! * [`models`] — a trace-replay *timing* model that re-prices a
//!   recorded WHISPER trace under the five configurations of
//!   Figure 10: x86-64 with durability at the NVM device, x86-64 with a
//!   persistent write queue (PWQ) at the memory controller, HOPS(NVM),
//!   HOPS(PWQ), and a non-crash-consistent IDEAL.
//!
//! # Example
//!
//! ```
//! use hops::{HopsConfig, HopsSystem};
//! use pmem::AddrRange;
//!
//! // The paper's worked example: two versions of A buffered at once.
//! let mut sys = HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 4);
//! sys.store(0, 0x100, &10u64.to_le_bytes())?;
//! sys.ofence(0)?; // cheap, local
//! sys.store(0, 0x100, &20u64.to_le_bytes())?;
//! assert_eq!(sys.buffered_versions(0, pmem::Line::containing(0x100))?, 2);
//! sys.dfence(0)?; // drains: 10 then 20, in epoch order
//! assert_eq!(sys.durable_u64(0x100), 20);
//! # Ok::<(), hops::BadThread>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod config;
pub mod models;
mod persist_buffer;

pub use bloom::CountingBloom;
pub use config::{HopsConfig, TimingConfig};
pub use models::{
    fig10_invocations, figure10_bars, replay, replay_dpo, PersistModel, Replayer, RuntimeReport,
};
pub use persist_buffer::{BadThread, HopsSystem};
