//! Trace-replay timing models for the five Figure 10 configurations.
//!
//! The replay re-prices a recorded WHISPER trace under each persistence
//! mechanism. Time between a thread's trace events is treated as
//! volatile work (identical across models, after subtracting the
//! recording machine's own persistence charges); what differs is what
//! each mechanism pays at stores, flushes, and fences:
//!
//! * **x86-64 (NVM)** — `clwb` per dirty line, `sfence` waits for every
//!   writeback to reach the NVM device. The recording baseline.
//! * **x86-64 (PWQ)** — same instructions, but a persistent write queue
//!   at the memory controller is the durability point, so fences wait
//!   only for MC ACKs ("this results in faster durability operations").
//! * **HOPS (NVM)** — no flush instructions; `ofence` is a local
//!   timestamp bump; persist buffers drain in the *background* during
//!   volatile work; only `dfence` waits, and only for what the
//!   background never caught up on.
//! * **HOPS (PWQ)** — HOPS draining to an MC-side write queue. The
//!   paper finds the PWQ adds little once flushes are off the critical
//!   path ("the PWQ only improves runtime by 1.4% for HOPS").
//! * **IDEAL (non-CC)** — ignores all ordering; not crash-consistent.

use crate::config::{HopsConfig, TimingConfig};
use pmem::lines_spanning;
use pmtrace::{Event, EventKind, Tid};

/// The five persistence configurations of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistModel {
    /// `clwb`+`sfence`, durable at the NVM device (baseline).
    X86Nvm,
    /// `clwb`+`sfence`, durable at the memory controller.
    X86Pwq,
    /// Persist buffers + `ofence`/`dfence`, durable at NVM.
    HopsNvm,
    /// Persist buffers + `ofence`/`dfence`, durable at the MC.
    HopsPwq,
    /// No ordering at all; not crash-consistent.
    Ideal,
}

impl PersistModel {
    /// All five, in Figure 10's bar order.
    pub const ALL: [PersistModel; 5] = [
        PersistModel::X86Nvm,
        PersistModel::X86Pwq,
        PersistModel::HopsNvm,
        PersistModel::HopsPwq,
        PersistModel::Ideal,
    ];
}

impl std::fmt::Display for PersistModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PersistModel::X86Nvm => "x86-64 (NVM)",
            PersistModel::X86Pwq => "x86-64 (PWQ)",
            PersistModel::HopsNvm => "HOPS (NVM)",
            PersistModel::HopsPwq => "HOPS (PWQ)",
            PersistModel::Ideal => "IDEAL (NON-CC)",
        };
        f.write_str(s)
    }
}

/// Replay result: per-thread and total runtimes.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// The configuration replayed.
    pub model: PersistModel,
    /// Runtime of each thread (ns); the app finishes at the slowest.
    pub per_thread_ns: Vec<u64>,
    /// max over threads.
    pub runtime_ns: u64,
}

#[derive(Debug, Default)]
struct ThreadReplay {
    /// Accumulated runtime under the model.
    clock_ns: u64,
    /// Timestamp of this thread's previous event in the original run.
    last_at: u64,
    /// x86: lines flushed/NT-written since the last fence.
    pending_writebacks: u64,
    /// Same counter, maintained unconditionally to reconstruct the
    /// recording machine's fence charges under every model.
    recorded_pending: u64,
    /// HOPS: persist-buffer occupancy (lines not yet drained).
    pb_outstanding: u64,
    /// Ordering-stall time: fence/ofence/dfence charges plus
    /// persist-buffer-overflow stalls. Maintained unconditionally (two
    /// integer adds per fence) so the serving profiler can decompose
    /// service time into replay vs fence-stall phases.
    stall_ns: u64,
    /// Whether an epoch span is currently open on `trace`.
    epoch_open: bool,
    /// Per-thread trace sink (`None` unless the replayer was built
    /// while tracing was active): epoch spans, fence-stall sub-spans,
    /// persist-buffer occupancy samples — all on this thread's
    /// replayed clock.
    trace: Option<pmobs::trace::TraceSink>,
}

impl Clone for ThreadReplay {
    /// Clones carry the pricing state but not the trace sink: a sink
    /// is single-owner (its drop submits the track), so a cloned
    /// replayer re-prices silently.
    fn clone(&self) -> ThreadReplay {
        ThreadReplay {
            clock_ns: self.clock_ns,
            last_at: self.last_at,
            pending_writebacks: self.pending_writebacks,
            recorded_pending: self.recorded_pending,
            pb_outstanding: self.pb_outstanding,
            stall_ns: self.stall_ns,
            epoch_open: false,
            trace: None,
        }
    }
}

fn pipelined(n: u64, unit: u64) -> u64 {
    if n == 0 {
        0
    } else {
        unit + (n - 1) * unit / 4
    }
}

/// Incremental trace replay under one persistence model.
///
/// [`replay`] prices a whole trace in one call; the serving engine
/// instead needs the clock *between* request boundaries, so the replay
/// state is exposed as a stepping cursor: feed events in trace order
/// with [`step`](Replayer::step), sample the running makespan with
/// [`makespan_ns`](Replayer::makespan_ns) at each boundary, and
/// [`finish`](Replayer::finish) into the usual [`RuntimeReport`].
/// Stepping a full trace is charge-for-charge identical to [`replay`].
#[derive(Debug, Clone)]
pub struct Replayer {
    model: PersistModel,
    cfg: TimingConfig,
    pb_entries: u64,
    /// Background drain rate: within an epoch, writes flush
    /// "concurrently to the MCs", so the per-line unit is the persist
    /// latency spread over the controllers and their queue depth.
    drain_unit: u64,
    /// A dfence waits at least for its final epoch's ACK at the
    /// durability point.
    dfence_floor: u64,
    /// Track-name base (`ctx/hops[model]/N`) captured at construction
    /// while tracing was active; per-thread sinks append `/tK`.
    trace_base: Option<String>,
    /// Per-thread pricing state. A flat vector, not a map: WHISPER
    /// traces have a handful of threads but millions of events, and
    /// consecutive events usually come from the same thread, so a
    /// cached-index hit (then a linear probe) beats hashing the tid on
    /// every step.
    threads: Vec<(Tid, ThreadReplay)>,
    /// Index into `threads` of the last-stepped thread.
    last_thread: usize,
}

impl Replayer {
    /// A fresh cursor at simulated time zero.
    pub fn new(cfg: &TimingConfig, hops_cfg: &HopsConfig, model: PersistModel) -> Replayer {
        let drain_unit = match model {
            PersistModel::HopsNvm | PersistModel::X86Nvm => {
                cfg.pm_write_ns / (cfg.mem_controllers * 4)
            }
            PersistModel::HopsPwq | PersistModel::X86Pwq => {
                cfg.pwq_ack_ns / (cfg.mem_controllers * 4)
            }
            PersistModel::Ideal => 1,
        }
        .max(1);
        let dfence_floor = match model {
            PersistModel::HopsNvm => cfg.pm_write_ns,
            PersistModel::HopsPwq => cfg.pwq_ack_ns,
            _ => 0,
        };
        let trace_base = if pmobs::trace::active() {
            pmobs::trace::track_base(&format!("hops[{model}]"))
        } else {
            None
        };
        Replayer {
            model,
            cfg: *cfg,
            pb_entries: hops_cfg.pb_entries as u64,
            drain_unit,
            dfence_floor,
            trace_base,
            threads: Vec::new(),
            last_thread: 0,
        }
    }

    /// The slot for `tid`, creating it on first sight. Fast path: the
    /// same thread as the previous step.
    fn thread_slot(&mut self, tid: Tid) -> usize {
        if let Some((t, _)) = self.threads.get(self.last_thread) {
            if *t == tid {
                return self.last_thread;
            }
        }
        let idx = self
            .threads
            .iter()
            .position(|(t, _)| *t == tid)
            .unwrap_or_else(|| {
                self.threads.push((tid, ThreadReplay::default()));
                self.threads.len() - 1
            });
        self.last_thread = idx;
        idx
    }

    /// Price one event. Events must arrive in trace (time) order.
    pub fn step(&mut self, ev: &Event) {
        let model = self.model;
        let slot = self.thread_slot(ev.tid);
        let cfg = &self.cfg;
        let t = &mut self.threads[slot].1;
        if t.trace.is_none() {
            if let Some(base) = &self.trace_base {
                t.trace = Some(pmobs::trace::TraceSink::new(format!(
                    "{base}/t{}",
                    ev.tid.0
                )));
            }
        }
        let start_ns = t.clock_ns;
        let is_fence = matches!(ev.kind, EventKind::Fence | EventKind::DFence);
        let pb_at_fence = t.pb_outstanding;
        // Volatile time since this thread's previous event, minus what
        // the recording machine charged for persistence then (the
        // subtraction happens implicitly: recording charges are added
        // back below only under the model's own pricing).
        let gap = ev.at_ns.saturating_sub(t.last_at);
        t.last_at = ev.at_ns;

        // Reconstruct the recording machine's charge for this event so
        // the gap can be re-priced (the recorder runs x86-64(NVM)).
        let recorded_charge;
        let model_charge;
        match ev.kind {
            EventKind::PmStore { addr, len, nt, .. } => {
                let lines = lines_spanning(addr, len as usize).count() as u64;
                recorded_charge = lines * cfg.rec_l1_ns;
                if nt {
                    t.recorded_pending += lines;
                }
                // Store cost is identical in every model (Consequence
                // 11: no overhead on the access path).
                model_charge = lines * cfg.l1_hit_ns;
                match model {
                    PersistModel::X86Nvm | PersistModel::X86Pwq => {
                        if nt {
                            t.pending_writebacks += lines;
                        }
                    }
                    PersistModel::HopsNvm | PersistModel::HopsPwq => {
                        t.pb_outstanding += lines;
                        // PB tracking + writeback bandwidth contention.
                        t.clock_ns += lines * cfg.pb_contention_ns;
                    }
                    PersistModel::Ideal => {}
                }
            }
            EventKind::Flush { .. } => {
                recorded_charge = cfg.rec_clwb_ns;
                t.recorded_pending += 1;
                match model {
                    PersistModel::X86Nvm | PersistModel::X86Pwq => {
                        t.pending_writebacks += 1;
                        model_charge = cfg.clwb_issue_ns;
                    }
                    // HOPS "makes data persistent without explicit
                    // flushes"; IDEAL drops them too.
                    _ => model_charge = 0,
                }
            }
            EventKind::Fence | EventKind::DFence => {
                let n = t.pending_writebacks;
                t.pending_writebacks = 0;
                let rec_n = t.recorded_pending;
                t.recorded_pending = 0;
                recorded_charge = cfg.rec_sfence_ns + pipelined(rec_n, cfg.rec_pm_write_ns);
                model_charge = match model {
                    PersistModel::X86Nvm => cfg.sfence_ns + pipelined(n, cfg.pm_write_ns),
                    PersistModel::X86Pwq => cfg.sfence_ns + pipelined(n, cfg.pwq_ack_ns),
                    PersistModel::HopsNvm | PersistModel::HopsPwq => {
                        if ev.kind == EventKind::DFence {
                            // Drain whatever background flushing has
                            // not yet retired, plus the final epoch's
                            // ACK round trip.
                            let wait = t.pb_outstanding * self.drain_unit + self.dfence_floor;
                            t.pb_outstanding = 0;
                            cfg.ofence_ns + wait
                        } else {
                            cfg.ofence_ns
                        }
                    }
                    PersistModel::Ideal => 0,
                };
            }
            EventKind::TxBegin { .. }
            | EventKind::TxEnd { .. }
            | EventKind::PmLoad { .. }
            | EventKind::RecoveryBegin => {
                // Markers (and loads, which application traces never
                // record) carry no persistence charge in any model.
                recorded_charge = 0;
                model_charge = 0;
            }
        }

        // Volatile share of the gap (never negative: eviction/WCB
        // charges the recorder folded in are treated as volatile).
        let volatile = gap.saturating_sub(recorded_charge);

        // HOPS drains persist buffers in the background of volatile
        // execution ("moving most flushes from the foreground to the
        // background").
        let mut overflow_stall = 0;
        if matches!(model, PersistModel::HopsNvm | PersistModel::HopsPwq) && t.pb_outstanding > 0 {
            let drained = volatile / self.drain_unit;
            t.pb_outstanding = t.pb_outstanding.saturating_sub(drained);
            // A full PB stalls the thread, but only long enough for
            // the overflow to retire — not a drain to empty.
            if t.pb_outstanding > self.pb_entries {
                let excess = t.pb_outstanding - self.pb_entries;
                overflow_stall = excess * self.drain_unit;
                t.clock_ns += overflow_stall;
                t.pb_outstanding = self.pb_entries;
            }
        }

        t.clock_ns += volatile + model_charge;

        // Stall accounting (unconditional, two adds): what the serving
        // profiler calls the "fence_stall" phase — ordering charges at
        // fences plus persist-buffer overflow stalls. Everything else
        // in the service time is replay (volatile work + store/flush
        // issue costs, identical across mechanisms by Consequence 11).
        if is_fence {
            t.stall_ns += model_charge;
        }
        t.stall_ns += overflow_stall;

        // Trace emission, all on this thread's replayed clock. Buffer
        // order is timestamp order: epoch begin at `start_ns`, any
        // overflow stall right after it, fence work in the final
        // `model_charge` window, epoch end at the updated clock.
        if let Some(s) = t.trace.as_mut() {
            let end_ns = t.clock_ns;
            if !t.epoch_open {
                s.begin("epoch", start_ns, 0);
                t.epoch_open = true;
            }
            if overflow_stall > 0 {
                s.begin("pb_overflow_stall", start_ns, overflow_stall);
                s.end(start_ns + overflow_stall);
            }
            if is_fence {
                let hops = matches!(model, PersistModel::HopsNvm | PersistModel::HopsPwq);
                if hops {
                    s.counter("pb_outstanding", end_ns - model_charge, pb_at_fence);
                }
                if model_charge > 0 {
                    let name = match (hops, ev.kind == EventKind::DFence) {
                        (true, true) => "dfence_stall",
                        (true, false) => "ofence_stall",
                        (false, _) => "fence_stall",
                    };
                    s.begin(name, end_ns - model_charge, model_charge);
                    s.end(end_ns);
                }
                s.end(end_ns);
                t.epoch_open = false;
            }
        }
    }

    /// The running makespan: the slowest thread's accumulated clock.
    /// Sampling this between [`step`](Replayer::step) calls is how the
    /// serving engine turns a trace into per-request service times.
    pub fn makespan_ns(&self) -> u64 {
        self.threads
            .iter()
            .map(|(_, t)| t.clock_ns)
            .max()
            .unwrap_or(0)
    }

    /// Total ordering-stall time accumulated so far, summed over
    /// threads: fence/ofence/dfence charges plus persist-buffer
    /// overflow stalls. Differencing this across request boundaries
    /// (like [`makespan_ns`](Replayer::makespan_ns)) is how the serving
    /// profiler splits service time into replay vs fence-stall phases.
    pub fn stall_total_ns(&self) -> u64 {
        self.threads.iter().map(|(_, t)| t.stall_ns).sum()
    }

    /// Consume the cursor into a [`RuntimeReport`] (threads in
    /// ascending-tid order, like [`replay`]).
    pub fn finish(self) -> RuntimeReport {
        let mut threads = self.threads;
        threads.sort_by_key(|(tid, _)| *tid);
        let per_thread_ns: Vec<u64> = threads.iter().map(|(_, t)| t.clock_ns).collect();
        let runtime_ns = per_thread_ns.iter().copied().max().unwrap_or(0);
        RuntimeReport {
            model: self.model,
            per_thread_ns,
            runtime_ns,
        }
    }
}

/// Replay a recorded trace under `model`.
///
/// `events` must be the time-ordered stream from one application run on
/// the `memsim` machine (whose charging formulas this function inverts
/// to recover volatile time).
pub fn replay(
    events: &[Event],
    cfg: &TimingConfig,
    hops_cfg: &HopsConfig,
    model: PersistModel,
) -> RuntimeReport {
    pmobs::count!("hops.replay_events", events.len() as u64);
    let mut r = Replayer::new(cfg, hops_cfg, model);
    for ev in events {
        r.step(ev);
    }
    r.finish()
}

/// Replay a trace under Delegated Persist Ordering, the concurrent
/// proposal the paper compares against in Section 7. DPO shares HOPS's
/// persist buffers but "enforces Buffered Strict Persistency ... BSP
/// may not scale well with multiple MCs and a stronger consistency
/// model (x86-TSO), resulting in serialized flushing of updates within
/// an epoch" — modeled here as HOPS draining through a single
/// serialized controller path.
pub fn replay_dpo(events: &[Event], cfg: &TimingConfig, hops_cfg: &HopsConfig) -> RuntimeReport {
    let mut serialized = *cfg;
    serialized.mem_controllers = 1;
    let mut r = replay(events, &serialized, hops_cfg, PersistModel::HopsNvm);
    // Keep the baseline label honest: this is DPO, not HOPS.
    r.model = PersistModel::HopsNvm;
    r
}

thread_local! {
    static FIG10_INVOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times [`figure10_bars`] has run on the current thread.
///
/// The five-model replay is the most expensive analysis step, so the
/// suite driver promises to run it exactly once per trace; tests verify
/// that promise by differencing this counter around a call. Per-thread
/// so concurrently running tests (or suite workers) cannot observe each
/// other's replays.
pub fn fig10_invocations() -> u64 {
    FIG10_INVOCATIONS.with(std::cell::Cell::get)
}

/// Replay all five models and return runtimes normalized to the
/// x86-64(NVM) baseline, in [`PersistModel::ALL`] order — one cluster
/// of Figure 10 bars.
pub fn figure10_bars(
    events: &[Event],
    cfg: &TimingConfig,
    hops_cfg: &HopsConfig,
) -> Vec<(PersistModel, f64)> {
    FIG10_INVOCATIONS.with(|c| c.set(c.get() + 1));
    pmobs::count!("hops.fig10_replays");
    // One replay per model: the baseline is ALL[0] (x86-64 NVM), so a
    // separate baseline replay would price the same trace twice.
    let runtimes: Vec<(PersistModel, u64)> = PersistModel::ALL
        .iter()
        .map(|&m| {
            let r = replay(events, cfg, hops_cfg, m).runtime_ns;
            // Simulated-clock domain: deterministic per (trace, config).
            if pmobs::enabled() {
                pmobs::record_sim_ns(&format!("fig10_runtime/{m}"), r);
            }
            (m, r)
        })
        .collect();
    let base = runtimes[0].1;
    debug_assert_eq!(runtimes[0].0, PersistModel::X86Nvm);
    runtimes
        .into_iter()
        .map(|(m, r)| {
            let norm = if base == 0 {
                0.0
            } else {
                r as f64 / base as f64
            };
            (m, norm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::{Category, TraceBuffer};

    /// A synthetic PM-heavy trace: per iteration, `work_ns` of volatile
    /// time, one store + flush + fence epoch, and a dfence every 10.
    fn synth_trace(iters: u64, work_ns: u64) -> Vec<Event> {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        let mut now = 0;
        for i in 0..iters {
            now += work_ns + 1; // volatile work + store (1 line × l1)
            t.pm_store(tid, i * 64, 8, false, Category::UserData, now);
            now += 2; // clwb issue
            t.flush(tid, i * 64, now);
            // Recorder charge for the fence: sfence 5 + pm_write 40.
            now += 45;
            if i % 10 == 9 {
                t.dfence(tid, now);
            } else {
                t.fence(tid, now);
            }
        }
        t.into_events()
    }

    #[test]
    fn model_ordering_matches_figure10() {
        let events = synth_trace(1000, 100);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let bars = figure10_bars(&events, &cfg, &h);
        let get = |m: PersistModel| bars.iter().find(|(b, _)| *b == m).unwrap().1;
        assert!(
            (get(PersistModel::X86Nvm) - 1.0).abs() < 1e-9,
            "baseline is 1.0"
        );
        assert!(get(PersistModel::X86Pwq) < get(PersistModel::X86Nvm));
        assert!(get(PersistModel::HopsNvm) < get(PersistModel::X86Pwq));
        assert!(get(PersistModel::HopsPwq) <= get(PersistModel::HopsNvm));
        assert!(get(PersistModel::Ideal) < get(PersistModel::HopsPwq) + 1e-12);
    }

    #[test]
    fn pwq_helps_hops_much_less_than_x86() {
        // Realistic volatile gaps give the persist buffers background
        // time to drain, which is exactly why the PWQ stops mattering
        // under HOPS.
        let events = synth_trace(1000, 1500);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let bars = figure10_bars(&events, &cfg, &h);
        let get = |m: PersistModel| bars.iter().find(|(b, _)| *b == m).unwrap().1;
        let x86_gain = get(PersistModel::X86Nvm) - get(PersistModel::X86Pwq);
        let hops_gain = get(PersistModel::HopsNvm) - get(PersistModel::HopsPwq);
        assert!(
            hops_gain < x86_gain / 2.0,
            "PWQ matters far less under HOPS: {hops_gain} vs {x86_gain}"
        );
    }

    #[test]
    fn speedup_proportional_to_pm_intensity() {
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let dense = figure10_bars(&synth_trace(1000, 50), &cfg, &h);
        let sparse = figure10_bars(&synth_trace(1000, 2000), &cfg, &h);
        let gain = |bars: &[(PersistModel, f64)]| {
            1.0 - bars
                .iter()
                .find(|(m, _)| *m == PersistModel::HopsNvm)
                .unwrap()
                .1
        };
        assert!(
            gain(&dense) > gain(&sparse) * 2.0,
            "PM-intense apps gain more: {} vs {}",
            gain(&dense),
            gain(&sparse)
        );
    }

    #[test]
    fn empty_trace_runs_in_zero_time() {
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let r = replay(&[], &cfg, &h, PersistModel::X86Nvm);
        assert_eq!(r.runtime_ns, 0);
        assert!(r.per_thread_ns.is_empty());
    }

    #[test]
    fn ideal_is_volatile_time_plus_stores() {
        // With all persistence charges gone, IDEAL ≈ volatile + stores.
        let events = synth_trace(100, 1000);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let ideal = replay(&events, &cfg, &h, PersistModel::Ideal).runtime_ns;
        // 100 iters × (1000 work + 1 store line) = 100_100, plus
        // nothing else.
        assert_eq!(ideal, 100 * (1000 + 1));
    }

    #[test]
    fn per_thread_runtimes_reported() {
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 10);
        t.fence(Tid(0), 60);
        t.pm_store(Tid(1), 64, 8, false, Category::UserData, 500);
        t.fence(Tid(1), 600);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let r = replay(t.events(), &cfg, &h, PersistModel::X86Nvm);
        assert_eq!(r.per_thread_ns.len(), 2);
        assert_eq!(r.runtime_ns, *r.per_thread_ns.iter().max().unwrap());
    }

    #[test]
    fn dpo_serialization_costs_against_hops() {
        // Section 7: with multiple MCs, DPO's serialized epoch flushing
        // loses to HOPS's concurrent flushing — but both beat x86-64.
        let events = synth_trace(1000, 600);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        let x86 = replay(&events, &cfg, &h, PersistModel::X86Nvm).runtime_ns;
        let hops = replay(&events, &cfg, &h, PersistModel::HopsNvm).runtime_ns;
        let dpo = replay_dpo(&events, &cfg, &h).runtime_ns;
        assert!(dpo >= hops, "DPO serializes what HOPS overlaps");
        assert!(dpo < x86, "DPO still beats explicit flushing");
    }

    #[test]
    fn stepping_replayer_matches_batch_replay() {
        // The incremental cursor is the same pricing engine; stepping a
        // whole trace must reproduce replay() exactly, for every model,
        // and its sampled makespan must be monotone along the trace.
        let events = synth_trace(500, 300);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        for model in PersistModel::ALL {
            let batch = replay(&events, &cfg, &h, model);
            let mut r = Replayer::new(&cfg, &h, model);
            let mut last = 0;
            for ev in &events {
                r.step(ev);
                let now = r.makespan_ns();
                assert!(now >= last, "{model}: makespan went backwards");
                last = now;
            }
            assert_eq!(r.makespan_ns(), batch.runtime_ns, "{model}");
            let stepped = r.finish();
            assert_eq!(stepped, batch, "{model}");
        }
    }

    #[test]
    fn stall_accounting_splits_fence_time() {
        let events = synth_trace(100, 100);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        // x86: every fence pays sfence + writeback waits — all stall.
        let mut x86 = Replayer::new(&cfg, &h, PersistModel::X86Nvm);
        // IDEAL ignores ordering entirely: zero stall by definition.
        let mut ideal = Replayer::new(&cfg, &h, PersistModel::Ideal);
        for ev in &events {
            x86.step(ev);
            ideal.step(ev);
        }
        assert!(x86.stall_total_ns() > 0);
        assert!(x86.stall_total_ns() <= x86.makespan_ns());
        assert_eq!(ideal.stall_total_ns(), 0);
    }

    #[test]
    fn replay_traces_epochs_and_stalls() {
        use pmobs::trace::Phase;
        let events = synth_trace(20, 100);
        let cfg = TimingConfig::default();
        let h = HopsConfig::default();
        pmobs::trace::set_enabled(true);
        {
            let _ctx = pmobs::trace::context("test");
            let mut r = Replayer::new(&cfg, &h, PersistModel::HopsNvm);
            for ev in &events {
                r.step(ev);
            }
            // Dropping the replayer drops its per-thread sinks, which
            // submit their tracks.
        }
        pmobs::trace::set_enabled(false);
        let tracks = pmobs::trace::take_tracks();
        let track = tracks
            .iter()
            .find(|t| t.name == "test/hops[HOPS (NVM)]/0/t0")
            .expect("per-thread replay track submitted");
        let begins = track
            .events
            .iter()
            .filter(|e| e.phase == Phase::Begin)
            .count();
        let ends = track
            .events
            .iter()
            .filter(|e| e.phase == Phase::End)
            .count();
        assert_eq!(begins, ends, "balanced spans");
        for name in ["epoch", "ofence_stall", "dfence_stall", "pb_outstanding"] {
            assert!(
                track.events.iter().any(|e| e.name == name),
                "expected {name} events"
            );
        }
        let mut last = 0;
        for e in &track.events {
            assert!(e.at_ns >= last, "timestamps non-decreasing");
            last = e.at_ns;
        }
    }

    #[test]
    fn display_names_are_figure10_labels() {
        assert_eq!(format!("{}", PersistModel::X86Nvm), "x86-64 (NVM)");
        assert_eq!(format!("{}", PersistModel::Ideal), "IDEAL (NON-CC)");
    }
}
