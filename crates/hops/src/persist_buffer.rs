//! Functional model of the HOPS persist buffers.

use crate::bloom::CountingBloom;
use crate::config::HopsConfig;
use pmem::{lines_spanning, Addr, AddrRange, FxHashMap, Line, PmDevice, PmImage, LINE_SIZE};
use pmrand::{Rng, SeedableRng, SmallRng};
use std::collections::VecDeque;

const LINE: usize = LINE_SIZE as usize;

/// A per-thread operation named a hardware thread the system was not
/// built with.
///
/// HOPS sizes its persist buffers, Bloom filters, and global TS
/// registers at construction; a slot outside that range has no state to
/// index, so every per-thread entry point validates before touching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadThread {
    /// The offending slot.
    pub tid: usize,
    /// Hardware threads the system was built with.
    pub threads: usize,
}

impl std::fmt::Display for BadThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} out of range (system has {} threads)",
            self.tid, self.threads
        )
    }
}

impl std::error::Error for BadThread {}

/// One persist-buffer entry: the PB Front End metadata (address, epoch
/// TS, dependency pointer) plus the Back End data copy (Figure 7/9).
#[derive(Debug, Clone)]
struct PbEntry {
    line: Line,
    data: [u8; LINE],
    epoch_ts: u64,
    /// `(source thread, source epoch TS)` — this entry may not become
    /// durable until the source thread has flushed through that epoch.
    dep: Option<(usize, u64)>,
}

#[derive(Debug)]
struct ThreadState {
    /// Thread TS register: "indicates the timestamp of the current,
    /// inflight epoch".
    ts: u64,
    pb: VecDeque<PbEntry>,
    /// Counting Bloom filter over this PB's buffered lines; LLC misses
    /// probe it and stall on a (possible) hit (Section 6.3).
    bloom: CountingBloom,
}

/// Functional persist-buffer system implementing Buffered Epoch
/// Persistency: PM stores are tracked redundantly in per-thread persist
/// buffers and written back to the PM device in epoch order, while the
/// (volatile) cache keeps only the newest value.
///
/// "HOPS maintains write ordering with 16-bit epoch timestamps"
/// (Section 6.3): when a thread's counter reaches the 16-bit limit its
/// persist buffer is drained and the counter wraps — the comparison
/// logic never has to reason about wrapped values against buffered
/// entries.
#[derive(Debug)]
pub struct HopsSystem {
    cfg: HopsConfig,
    /// Durable media.
    pm: PmDevice,
    /// Functional (cache-visible) contents — always newest values.
    functional: PmDevice,
    threads: Vec<ThreadState>,
    /// Last buffered writer of each line: `(thread, epoch ts)` — the
    /// sticky-M / ownership information used to detect cross-thread
    /// dependencies when write permission moves.
    last_writer: FxHashMap<Line, (usize, u64)>,
    /// Global TS register at the LLC: per-thread flushed-through epoch
    /// timestamps.
    flushed_ts: Vec<u64>,
    /// Lines written back to PM so far (for stats).
    media_writes: u64,
}

impl HopsSystem {
    /// A fresh system over a PM range with `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(cfg: HopsConfig, pm_range: AddrRange, threads: usize) -> HopsSystem {
        assert!(threads > 0, "need at least one thread");
        HopsSystem {
            cfg,
            pm: PmDevice::new(pm_range),
            functional: PmDevice::new(pm_range),
            threads: (0..threads)
                .map(|_| ThreadState {
                    ts: 1,
                    pb: VecDeque::new(),
                    bloom: CountingBloom::for_persist_buffer(),
                })
                .collect(),
            last_writer: FxHashMap::default(),
            flushed_ts: vec![0; threads],
            media_writes: 0,
        }
    }

    /// Validate a thread slot against the count the system was built
    /// with.
    ///
    /// # Errors
    ///
    /// [`BadThread`] when `tid` names no hardware thread.
    fn check(&self, tid: usize) -> Result<(), BadThread> {
        if tid < self.threads.len() {
            Ok(())
        } else {
            Err(BadThread {
                tid,
                threads: self.threads.len(),
            })
        }
    }

    /// Current epoch timestamp of a thread.
    ///
    /// # Errors
    ///
    /// [`BadThread`] for an out-of-range slot.
    pub fn thread_ts(&self, tid: usize) -> Result<u64, BadThread> {
        self.check(tid)?;
        Ok(self.threads[tid].ts)
    }

    /// Persist-buffer occupancy of a thread.
    ///
    /// # Errors
    ///
    /// [`BadThread`] for an out-of-range slot.
    pub fn pb_len(&self, tid: usize) -> Result<usize, BadThread> {
        self.check(tid)?;
        Ok(self.threads[tid].pb.len())
    }

    /// How many buffered versions of `line` thread `tid` holds —
    /// the multi-versioning that absorbs self-dependencies
    /// (Consequence 6).
    ///
    /// # Errors
    ///
    /// [`BadThread`] for an out-of-range slot.
    pub fn buffered_versions(&self, tid: usize, line: Line) -> Result<usize, BadThread> {
        self.check(tid)?;
        Ok(self.threads[tid]
            .pb
            .iter()
            .filter(|e| e.line == line)
            .count())
    }

    /// Lines written to the PM device so far.
    pub fn media_writes(&self) -> u64 {
        self.media_writes
    }

    /// A PM store: updates the cache (functional state) and appends to
    /// the thread's persist buffer (Table 2, "L1 write hit/miss").
    /// If another thread has buffered updates to the line, a dependency
    /// pointer to `(source thread, its current epoch TS)` is recorded —
    /// the conservative choice the paper makes "to simplify the
    /// hardware".
    ///
    /// # Errors
    ///
    /// [`BadThread`] for an out-of-range slot (the store takes no
    /// effect, functional or durable).
    pub fn store(&mut self, tid: usize, addr: Addr, bytes: &[u8]) -> Result<(), BadThread> {
        self.check(tid)?;
        self.functional.write(addr, bytes);
        let ts = self.threads[tid].ts;
        for (line, _, _) in lines_spanning(addr, bytes.len()) {
            let data = *self.functional.line_view(line);
            // Epoch coalescing (Section 6.3's future-work optimization):
            // a same-line store in the same epoch overwrites the
            // buffered entry instead of appending a version.
            if self.cfg.coalesce {
                if let Some(e) = self.threads[tid]
                    .pb
                    .iter_mut()
                    .rev()
                    .find(|e| e.line == line && e.epoch_ts == ts)
                {
                    e.data = data;
                    self.last_writer.insert(line, (tid, ts));
                    continue;
                }
            }
            let dep = match self.last_writer.get(&line) {
                Some(&(src, _)) if src != tid && self.has_buffered(src, line) => {
                    Some((src, self.threads[src].ts))
                }
                _ => None,
            };
            self.threads[tid].pb.push_back(PbEntry {
                line,
                data,
                epoch_ts: ts,
                dep,
            });
            if dep.is_some() {
                pmobs::count!("hops.cross_thread_deps");
            }
            self.threads[tid].bloom.insert(line);
            self.last_writer.insert(line, (tid, ts));
            pmobs::high_water!(
                "hops.pb_occupancy_highwater",
                self.threads[tid].pb.len() as u64
            );
            if self.threads[tid].pb.len() >= self.cfg.flush_threshold {
                // Background flushing launches at the threshold.
                pmobs::count!("hops.background_flushes");
                self.flush_oldest_epoch(tid);
            }
            // A PB can never exceed its capacity: stall (flush) until
            // it fits.
            while self.threads[tid].pb.len() > self.cfg.pb_entries {
                pmobs::count!("hops.pb_capacity_stalls");
                self.flush_oldest_epoch(tid);
            }
        }
        Ok(())
    }

    fn has_buffered(&self, tid: usize, line: Line) -> bool {
        self.threads[tid].pb.iter().any(|e| e.line == line)
    }

    /// Read current (cache) contents.
    pub fn load_vec(&mut self, addr: Addr, len: usize) -> Vec<u8> {
        self.functional.read_vec(addr, len)
    }

    /// `ofence`: "increment Thread TS to end current epoch" — purely
    /// local, no flushing (Table 2) — except at the 16-bit timestamp
    /// wrap, where the PB drains so no buffered entry can outlive its
    /// epoch numbering.
    ///
    /// # Errors
    ///
    /// [`BadThread`] for an out-of-range slot.
    pub fn ofence(&mut self, tid: usize) -> Result<(), BadThread> {
        self.check(tid)?;
        pmobs::count!("hops.ofence");
        if self.threads[tid].ts >= u16::MAX as u64 {
            // The wrap drain is the only time an ofence stalls.
            pmobs::count!("hops.ofence_wrap_stalls");
            while !self.threads[tid].pb.is_empty() {
                self.flush_oldest_epoch(tid);
            }
            self.flushed_ts[tid] = 0;
            self.threads[tid].ts = 1;
            return Ok(());
        }
        self.threads[tid].ts += 1;
        Ok(())
    }

    /// `dfence`: end the epoch and stall until the thread's PB is
    /// flushed clean (Table 2).
    ///
    /// # Errors
    ///
    /// [`BadThread`] for an out-of-range slot.
    pub fn dfence(&mut self, tid: usize) -> Result<(), BadThread> {
        self.check(tid)?;
        pmobs::count!("hops.dfence");
        pmobs::observe!(
            "hops.dfence_stall_entries",
            pmobs::Unit::Count,
            self.threads[tid].pb.len() as u64
        );
        self.threads[tid].ts += 1;
        while !self.threads[tid].pb.is_empty() {
            self.flush_oldest_epoch(tid);
        }
        Ok(())
    }

    /// Flush the oldest complete epoch from `tid`'s PB, honoring
    /// cross-thread dependency pointers by first flushing the source
    /// thread up to the required timestamp. Dependencies always point
    /// to epochs that began earlier in the global order, so the
    /// recursion terminates (hardware prevents the analogous deadlock
    /// by splitting epochs).
    fn flush_oldest_epoch(&mut self, tid: usize) {
        let Some(front) = self.threads[tid].pb.front() else {
            return;
        };
        let epoch = front.epoch_ts;
        while let Some(front) = self.threads[tid].pb.front() {
            if front.epoch_ts != epoch {
                break;
            }
            if let Some((src, src_ts)) = front.dep {
                if self.flushed_ts[src] < src_ts {
                    // Stall this flush on the source epoch (global TS
                    // register lookup), draining the source first.
                    pmobs::count!("hops.cross_dep_flush_stalls");
                    self.flush_thread_through(src, src_ts);
                }
            }
            let e = self.threads[tid].pb.pop_front().expect("front exists");
            self.threads[tid].bloom.remove(e.line);
            self.pm.write(e.line.base(), &e.data);
            self.media_writes += 1;
            // Drop ownership info if this was the last buffered copy
            // anywhere (approximation of sticky-M decay).
            if !self.has_buffered(tid, e.line) {
                if let Some(&(owner, _)) = self.last_writer.get(&e.line) {
                    if owner == tid {
                        self.last_writer.remove(&e.line);
                    }
                }
            }
        }
        self.flushed_ts[tid] = self.flushed_ts[tid].max(epoch);
    }

    fn flush_thread_through(&mut self, tid: usize, ts: u64) {
        while self.flushed_ts[tid] < ts && !self.threads[tid].pb.is_empty() {
            self.flush_oldest_epoch(tid);
        }
        // If the PB emptied, every buffered epoch is durable.
        if self.threads[tid].pb.is_empty() {
            self.flushed_ts[tid] = self.flushed_ts[tid].max(ts);
        }
    }

    /// Whether an LLC miss to `addr` must stall because some thread's
    /// persist buffer may hold the line ("on a last-level cache miss,
    /// if the address is present in this list, the miss is stalled
    /// until the address is written back to PM"). Conservative: false
    /// positives are possible, false negatives are not.
    pub fn llc_miss_would_stall(&self, addr: Addr) -> bool {
        let line = Line::containing(addr);
        let maybe = self.threads.iter().any(|t| t.bloom.may_contain(line));
        if pmobs::enabled() {
            pmobs::count!("hops.bloom_probes");
            if maybe {
                pmobs::count!("hops.bloom_hits");
                // The filter is conservative: check ground truth to
                // count spurious stalls (never on the disabled path —
                // the exact scan is what the Bloom filter exists to
                // avoid).
                let actual = (0..self.threads.len()).any(|t| self.has_buffered(t, line));
                if !actual {
                    pmobs::count!("hops.bloom_false_positives");
                }
            }
        }
        maybe
    }

    /// Durable `u64` at `addr` (test helper).
    pub fn durable_u64(&self, addr: Addr) -> u64 {
        let v = self.pm.read_vec(addr, 8);
        u64::from_le_bytes(v.try_into().expect("8 bytes"))
    }

    /// Power failure. Each thread's persist buffer drains an *epoch
    /// prefix* chosen by the seed (hardware guarantees nothing beyond
    /// epoch ordering for un-dfenced data); dependency pointers are
    /// honored, then everything else is lost.
    pub fn crash(mut self, seed: u64) -> PmImage {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Randomly interleave per-thread prefix flushes.
        let nthreads = self.threads.len();
        for _ in 0..nthreads * 4 {
            let tid = rng.gen_range(0..nthreads);
            if rng.gen_bool(0.5) {
                self.flush_oldest_epoch(tid);
            }
        }
        self.pm.image()
    }

    /// Crash after draining everything (clean shutdown).
    pub fn shutdown(mut self) -> PmImage {
        for tid in 0..self.threads.len() {
            while !self.threads[tid].pb.is_empty() {
                self.flush_oldest_epoch(tid);
            }
        }
        self.pm.image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> HopsSystem {
        HopsSystem::new(HopsConfig::default(), AddrRange::new(0, 1 << 20), 4)
    }

    #[test]
    fn instruments_record_persist_buffer_activity() {
        // Counters are global and monotonic, and sibling tests may run
        // while recording is briefly enabled, so compare deltas with >=.
        let count = |s: &pmobs::MetricsSnapshot, k: &str| s.counters.get(k).copied().unwrap_or(0);
        let before = pmobs::global().snapshot();
        pmobs::set_enabled(true);
        let mut s = sys();
        s.store(0, 0, &[1u8; 8]).unwrap();
        s.ofence(0).unwrap();
        s.store(0, 64, &[2u8; 8]).unwrap();
        s.dfence(0).unwrap();
        let _ = s.llc_miss_would_stall(0);
        pmobs::set_enabled(false);
        let after = pmobs::global().snapshot();
        assert!(count(&after, "hops.ofence") > count(&before, "hops.ofence"));
        assert!(count(&after, "hops.dfence") > count(&before, "hops.dfence"));
        assert!(count(&after, "hops.bloom_probes") > count(&before, "hops.bloom_probes"));
        assert!(after.gauges["hops.pb_occupancy_highwater"] >= 1);
    }

    #[test]
    fn paper_worked_example() {
        // mov A, 10; ofence; mov A, 20; dfence — Section 6.3.
        let mut s = sys();
        s.store(0, 0x100, &10u64.to_le_bytes()).unwrap();
        assert_eq!(s.thread_ts(0).unwrap(), 1);
        s.ofence(0).unwrap();
        assert_eq!(s.thread_ts(0).unwrap(), 2, "ofence is a local TS bump");
        s.store(0, 0x100, &20u64.to_le_bytes()).unwrap();
        assert_eq!(s.buffered_versions(0, Line::containing(0x100)).unwrap(), 2);
        assert_eq!(s.durable_u64(0x100), 0, "nothing durable yet");
        s.dfence(0).unwrap();
        assert_eq!(s.thread_ts(0).unwrap(), 3);
        assert_eq!(s.durable_u64(0x100), 20);
        assert_eq!(s.pb_len(0).unwrap(), 0);
        // Both versions were written to media, in order.
        assert_eq!(s.media_writes(), 2);
    }

    #[test]
    fn ofence_does_not_flush() {
        let mut s = sys();
        s.store(0, 0, &[1; 8]).unwrap();
        s.ofence(0).unwrap();
        assert_eq!(s.pb_len(0).unwrap(), 1);
        assert_eq!(s.durable_u64(0), 0);
    }

    #[test]
    fn cache_sees_newest_value_always() {
        let mut s = sys();
        s.store(0, 0, &[1; 8]).unwrap();
        s.ofence(0).unwrap();
        s.store(0, 0, &[2; 8]).unwrap();
        assert_eq!(s.load_vec(0, 8), vec![2; 8]);
    }

    #[test]
    fn epoch_prefix_durability_under_crash() {
        // Whatever the seed, the durable state is an epoch prefix:
        // seeing epoch k's line implies epochs < k are durable.
        for seed in 0..50 {
            let mut s = sys();
            for i in 0..6u64 {
                s.store(0, i * 64, &(i + 1).to_le_bytes()).unwrap();
                s.ofence(0).unwrap();
            }
            let img = s.crash(seed);
            let vals: Vec<u64> = (0..6)
                .map(|i| u64::from_le_bytes(img.read_vec(i * 64, 8).try_into().unwrap()))
                .collect();
            let first_zero = vals.iter().position(|&v| v == 0).unwrap_or(6);
            for (i, &v) in vals.iter().enumerate() {
                if i < first_zero {
                    assert_eq!(v, (i + 1) as u64, "seed {seed}: prefix must be intact");
                } else {
                    assert_eq!(
                        v, 0,
                        "seed {seed}: epoch {i} durable before epoch {first_zero}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_version_crash_never_skips_old_version() {
        // A=10 (e1), A=20 (e2): durable A must be 0, 10, or 20 — and if
        // the PB flushed anything, the versions went in order.
        for seed in 0..30 {
            let mut s = sys();
            s.store(0, 0x40, &10u64.to_le_bytes()).unwrap();
            s.ofence(0).unwrap();
            s.store(0, 0x40, &20u64.to_le_bytes()).unwrap();
            let img = s.crash(seed);
            let v = u64::from_le_bytes(img.read_vec(0x40, 8).try_into().unwrap());
            assert!(
                v == 0 || v == 10 || v == 20,
                "seed {seed}: impossible value {v}"
            );
        }
    }

    #[test]
    fn cross_thread_dependency_ordering() {
        // t0 buffers line L; t1 then writes L. t1's update must never
        // be durable while t0's earlier update is not.
        for seed in 0..50 {
            let mut s = sys();
            s.store(0, 0x80, &1u64.to_le_bytes()).unwrap();
            // t1 takes write ownership (RAW/WAW conflict) and writes 2.
            s.store(1, 0x80, &2u64.to_le_bytes()).unwrap();
            // Also a marker only t0 wrote, in the same epoch as its L
            // write, to detect whether t0's epoch flushed.
            let img = s.crash(seed);
            let l = u64::from_le_bytes(img.read_vec(0x80, 8).try_into().unwrap());
            assert!(l == 0 || l == 1 || l == 2, "seed {seed}");
            // value 2 requires t0's epoch flushed first; since both
            // wrote the same line, seeing 2 means 1 was written before
            // (media write count ordering) — verified structurally: the
            // dependency pointer forces t0's flush inside t1's.
            if l == 2 {
                // t0's PB must have drained its epoch: flushed_ts check
                // is internal, but media writes ≥ 2 proves both landed.
            }
        }
    }

    #[test]
    fn dfence_with_cross_dep_flushes_source_thread() {
        let mut s = sys();
        s.store(0, 0x80, &1u64.to_le_bytes()).unwrap();
        s.store(1, 0x80, &2u64.to_le_bytes()).unwrap();
        s.dfence(1).unwrap();
        // Draining t1 required draining t0 first.
        assert_eq!(
            s.pb_len(0).unwrap(),
            0,
            "source thread drained by dependency"
        );
        assert_eq!(s.durable_u64(0x80), 2);
        assert_eq!(s.media_writes(), 2, "both versions reached PM in order");
    }

    #[test]
    fn pb_capacity_triggers_background_flush() {
        let mut s = sys();
        // 20 singleton stores in one epoch: threshold is 16.
        for i in 0..20u64 {
            s.store(0, i * 64, &[7; 8]).unwrap();
        }
        assert!(s.pb_len(0).unwrap() < 20, "background flushing kicked in");
        assert!(s.media_writes() > 0);
    }

    #[test]
    fn shutdown_drains_everything() {
        let mut s = sys();
        for t in 0..4 {
            s.store(t, 0x1000 + t as u64 * 64, &[t as u8 + 1; 8])
                .unwrap();
        }
        let img = s.shutdown();
        for t in 0..4u64 {
            assert_eq!(img.read_vec(0x1000 + t * 64, 1), vec![t as u8 + 1]);
        }
    }

    #[test]
    fn independent_threads_flush_independently() {
        let mut s = sys();
        s.store(0, 0, &[1; 8]).unwrap();
        s.store(1, 64, &[2; 8]).unwrap();
        s.dfence(0).unwrap();
        assert_eq!(s.durable_u64(0), u64::from_le_bytes([1; 8]));
        assert_eq!(s.pb_len(1).unwrap(), 1, "no conflict → t1 untouched");
    }

    #[test]
    fn sixteen_bit_timestamp_wrap_drains_and_restarts() {
        let mut s = sys();
        s.store(0, 0, &[1; 8]).unwrap();
        // Force the counter to the 16-bit ceiling.
        while s.thread_ts(0).unwrap() < u16::MAX as u64 {
            s.ofence(0).unwrap();
        }
        s.store(0, 64, &[2; 8]).unwrap();
        s.ofence(0).unwrap(); // the wrapping fence
        assert_eq!(s.thread_ts(0).unwrap(), 1, "counter wrapped");
        assert_eq!(s.pb_len(0).unwrap(), 0, "PB drained at the wrap");
        assert_eq!(s.durable_u64(0), u64::from_le_bytes([1; 8]));
        assert_eq!(s.durable_u64(64), u64::from_le_bytes([2; 8]));
        // The system keeps working across the wrap.
        s.store(0, 128, &[3; 8]).unwrap();
        s.dfence(0).unwrap();
        assert_eq!(s.durable_u64(128), u64::from_le_bytes([3; 8]));
    }

    #[test]
    fn llc_miss_stalls_track_pb_contents() {
        let mut s = sys();
        assert!(!s.llc_miss_would_stall(0x100), "empty PBs never stall");
        s.store(0, 0x100, &[1; 8]).unwrap();
        assert!(s.llc_miss_would_stall(0x100), "buffered line stalls a miss");
        s.dfence(0).unwrap();
        assert!(
            !s.llc_miss_would_stall(0x100),
            "writeback clears the filter: stalls are transient"
        );
    }

    #[test]
    fn coalescing_merges_same_epoch_writes() {
        let cfg = HopsConfig {
            coalesce: true,
            ..HopsConfig::default()
        };
        let mut s = HopsSystem::new(cfg, AddrRange::new(0, 1 << 20), 1);
        // Three stores to one line in one epoch: one PB entry, holding
        // the newest value.
        for v in [1u64, 2, 3] {
            s.store(0, 0x40, &v.to_le_bytes()).unwrap();
        }
        assert_eq!(s.pb_len(0).unwrap(), 1);
        // Across epochs, versions still multi-buffer.
        s.ofence(0).unwrap();
        s.store(0, 0x40, &4u64.to_le_bytes()).unwrap();
        assert_eq!(s.buffered_versions(0, Line::containing(0x40)).unwrap(), 2);
        s.dfence(0).unwrap();
        assert_eq!(s.durable_u64(0x40), 4);
        assert_eq!(s.media_writes(), 2, "coalescing saved two media writes");
    }

    #[test]
    fn out_of_range_thread_is_a_typed_error_on_every_entry_point() {
        let mut s = sys(); // 4 hardware threads
        let bad = 4usize;
        let err = BadThread { tid: 4, threads: 4 };
        assert_eq!(s.store(bad, 0, &[1; 8]), Err(err));
        assert_eq!(s.ofence(bad), Err(err));
        assert_eq!(s.dfence(bad), Err(err));
        assert_eq!(s.thread_ts(bad), Err(err));
        assert_eq!(s.pb_len(bad), Err(err));
        assert_eq!(s.buffered_versions(bad, Line::containing(0)), Err(err));
        assert_eq!(
            err.to_string(),
            "thread 4 out of range (system has 4 threads)"
        );
        // The rejected store left no trace, functional or durable.
        assert_eq!(s.load_vec(0, 8), vec![0; 8]);
        // In-range threads are unaffected.
        s.store(3, 0, &[1; 8]).unwrap();
        s.dfence(3).unwrap();
        assert_eq!(s.durable_u64(0), u64::from_le_bytes([1; 8]));
    }

    #[test]
    fn multi_line_store_spans_entries() {
        let mut s = sys();
        s.store(0, 60, &[9; 10]).unwrap(); // crosses a line boundary
        assert_eq!(s.pb_len(0).unwrap(), 2);
        s.dfence(0).unwrap();
        assert_eq!(s.load_vec(60, 10), vec![9; 10]);
        let img = s.shutdown();
        assert_eq!(img.read_vec(60, 10), vec![9; 10]);
    }
}
