//! Minimal property-testing harness with a `proptest`-shaped API.
//!
//! The workspace's property tests were written against `proptest`; the
//! build environment vendors no external crates, so this crate
//! re-implements the slice of its surface those tests use — the
//! [`Strategy`] trait, range/tuple/`any`/`Just`/`prop_map`/`prop_oneof`
//! strategies, `collection::vec`, the [`proptest!`] macro, and the
//! `prop_assert*` macros — over [`pmrand`]'s deterministic generator.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case reports its seed and case index via
//!   the panic message instead of a minimized input;
//! - deterministic: each test function derives its stream from the
//!   test's name (override with `MINIPROP_SEED` for exploration).

#![forbid(unsafe_code)]

use pmrand::SeedableRng;
pub use pmrand::SmallRng;

/// Number of cases run when the test does not set a config.
pub const DEFAULT_CASES: u32 = 48;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the constructor the tests use).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform produced values (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of a type (proptest's `any::<T>()`).
pub fn any<T: pmrand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: pmrand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        pmrand::Rng::gen(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                pmrand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                pmrand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SmallRng, Strategy};

    /// Lengths acceptable to [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            pmrand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            pmrand::Rng::gen_range(rng, self.clone())
        }
    }

    /// `Vec`s of values from `element`, with a length from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among same-valued strategies (proptest's
/// `prop_oneof!`). Weights are not supported; every arm is equally
/// likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::OneOf {
            arms: vec![$($crate::Strategy::boxed($arm)),+],
        }
    }};
}

/// See [`prop_oneof!`].
pub struct OneOf<T> {
    /// The equally-weighted alternatives.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let i = pmrand::Rng::gen_range(rng, 0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Seed for a named test: `MINIPROP_SEED` if set, else an FNV-1a hash
/// of the test name, so every test gets a distinct, stable stream.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("MINIPROP_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run `cases` deterministic cases of `body`, labelling any panic with
/// the failing seed and case index (the no-shrinking substitute for
/// proptest's minimized counterexamples).
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut SmallRng)) {
    let seed = seed_for(test_name);
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "miniprop: {test_name} failed at case {case}/{cases} \
                 (rerun with MINIPROP_SEED={seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
///
/// Accepts an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
/// header, exactly like proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__miniprop_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__miniprop_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __miniprop_fns {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
}

/// proptest's `prop_assert!`, minus the early-return plumbing.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Drop-in for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_accepted(v in collection::vec(any::<u8>(), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
        }
    }

    proptest! {
        #[test]
        fn combinators_compose(
            v in collection::vec(
                prop_oneof![
                    (0u8..4).prop_map(|n| n as u64),
                    Just(99u64),
                    any::<bool>().prop_map(|b| b as u64),
                ],
                1..20,
            )
        ) {
            for x in v {
                prop_assert!(x < 4 || x == 99);
            }
        }
    }

    #[test]
    fn seed_is_stable_and_per_test() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        crate::run_cases("failing_property_panics", 4, |_| panic!("boom"));
    }
}
