//! Property tests: the filesystem against an in-memory model, across
//! crashes.

use memsim::{CrashSpec, Machine, MachineConfig};
use miniprop::prelude::*;
use pmem::AddrRange;
use pmfs::{FsError, Pmfs, PmfsConfig};
use pmtrace::Tid;
use std::collections::BTreeMap;

const TID: Tid = Tid(0);

#[derive(Debug, Clone)]
enum FsOp {
    Create { f: u8 },
    Append { f: u8, len: u16 },
    Overwrite { f: u8, off: u16, len: u16 },
    Truncate { f: u8, keep: u16 },
    Unlink { f: u8 },
    Rename { f: u8, to: u8 },
}

fn ops() -> impl Strategy<Value = Vec<FsOp>> {
    collection::vec(
        prop_oneof![
            (0u8..8).prop_map(|f| FsOp::Create { f }),
            (0u8..8, 1u16..5000).prop_map(|(f, len)| FsOp::Append { f, len }),
            (0u8..8, 0u16..4000, 1u16..2000).prop_map(|(f, off, len)| FsOp::Overwrite {
                f,
                off,
                len
            }),
            (0u8..8, 0u16..3000).prop_map(|(f, keep)| FsOp::Truncate { f, keep }),
            (0u8..8).prop_map(|f| FsOp::Unlink { f }),
            (0u8..8, 0u8..8).prop_map(|(f, to)| FsOp::Rename { f, to }),
        ],
        1..30,
    )
}

fn path(f: u8) -> String {
    format!("/f{f}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every completed operation is durable (PMFS is synchronous):
    /// after a crash, the filesystem matches a byte-level model of the
    /// completed operations exactly.
    #[test]
    fn synchronous_semantics_survive_crash(script in ops(), fill in any::<u8>()) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let region = AddrRange::new(m.config().map.pm.base, 64 << 20);
        let mut fs = Pmfs::mkfs(&mut m, TID, region, PmfsConfig::default()).unwrap();
        let mut model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();

        for (i, op) in script.iter().enumerate() {
            let byte = fill.wrapping_add(i as u8);
            match op {
                FsOp::Create { f } => {
                    let r = fs.create(&mut m, TID, &path(*f));
                    if model.contains_key(f) {
                        { let matched = matches!(r, Err(FsError::Exists { .. })); prop_assert!(matched); }
                    } else {
                        r.unwrap();
                        model.insert(*f, Vec::new());
                    }
                }
                FsOp::Append { f, len } => {
                    let r = fs.append(&mut m, TID, &path(*f), &vec![byte; *len as usize]);
                    match model.get_mut(f) {
                        Some(content) => {
                            r.unwrap();
                            content.extend(std::iter::repeat_n(byte, *len as usize));
                        }
                        None => {
                            let matched = matches!(r, Err(FsError::NotFound { .. }));
                            prop_assert!(matched);
                        }
                    }
                }
                FsOp::Overwrite { f, off, len } => {
                    let r = fs.write(&mut m, TID, &path(*f), *off as u64, &vec![byte; *len as usize]);
                    match model.get_mut(f) {
                        Some(content) => {
                            r.unwrap();
                            let end = *off as usize + *len as usize;
                            if content.len() < end {
                                content.resize(end, 0);
                            }
                            content[*off as usize..end].fill(byte);
                        }
                        None => {
                            let matched = matches!(r, Err(FsError::NotFound { .. }));
                            prop_assert!(matched);
                        }
                    }
                }
                FsOp::Truncate { f, keep } => {
                    let r = fs.truncate(&mut m, TID, &path(*f), *keep as u64);
                    match model.get_mut(f) {
                        Some(content) if content.len() >= *keep as usize => {
                            r.unwrap();
                            content.truncate(*keep as usize);
                        }
                        Some(_) => {
                            let matched = matches!(r, Err(FsError::FileTooBig { .. }));
                            prop_assert!(matched);
                        }
                        None => {
                            let matched = matches!(r, Err(FsError::NotFound { .. }));
                            prop_assert!(matched);
                        }
                    }
                }
                FsOp::Unlink { f } => {
                    let r = fs.unlink(&mut m, TID, &path(*f));
                    if model.remove(f).is_some() {
                        r.unwrap();
                    } else {
                        { let matched = matches!(r, Err(FsError::NotFound { .. })); prop_assert!(matched); }
                    }
                }
                FsOp::Rename { f, to } => {
                    let r = fs.rename(&mut m, TID, &path(*f), &path(*to));
                    if model.contains_key(f) && !model.contains_key(to) && f != to {
                        r.unwrap();
                        let content = model.remove(f).expect("present");
                        model.insert(*to, content);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
        }

        // Crash losing everything volatile; remount.
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let (mut fs2, rolled_back) = Pmfs::mount(&mut m2, TID, region).unwrap();
        prop_assert!(!rolled_back, "no op was in flight");

        // Byte-exact equivalence with the model.
        for f in 0u8..8 {
            match model.get(&f) {
                Some(content) => {
                    let got = fs2.read_file(&mut m2, TID, &path(f)).unwrap();
                    prop_assert_eq!(&got, content, "file {} content mismatch", f);
                }
                None => {
                    let gone =
                        matches!(fs2.read_file(&mut m2, TID, &path(f)), Err(FsError::NotFound { .. }));
                    prop_assert!(gone, "file {} should not exist", f);
                }
            }
        }
        // Directory listing matches too.
        let mut names = fs2.readdir(&mut m2, TID, "/").unwrap();
        names.sort();
        let mut expect: Vec<String> = model.keys().map(|f| format!("f{f}")).collect();
        expect.sort();
        prop_assert_eq!(names, expect);
    }
}
