//! A PMFS-style persistent-memory filesystem.
//!
//! WHISPER's filesystem applications (NFS, Exim, MySQL) run over PMFS,
//! "a Linux filesystem for x86-64 that provides access to PM via system
//! calls ... It exposes PM using files, and persists user data and
//! filesystem metadata synchronously" (Section 3.1). This crate
//! implements the same design points the paper measures:
//!
//! * **4 KB data blocks written with non-temporal stores** — "PMFS
//!   avoids cache pollution when writing user data and for zeroing
//!   pages with NTIs"; a full block write touches 64 cache lines, the
//!   source of Figure 4's large-epoch mode for PMFS applications, and
//!   "about 96% of writes in PMFS use NTIs" (Section 5.2).
//! * **An undo journal for metadata only** — "It employs an undo log to
//!   ensure metadata consistency and uses cacheable stores for metadata
//!   related updates ... It does not guarantee consistency of user
//!   data." Journal status flips (UNCOMMITTED → COMMITTED) and
//!   per-entry clears produce the singleton `LogMeta` epochs and
//!   self-dependencies the paper traces to PMFS.
//! * **Synchronous persistence** — every operation is durable when it
//!   returns; there is no write-back cache to flush, so `fsync` is a
//!   no-op.
//!
//! Write amplification lands near the paper's ~10 % figure: a 4096-byte
//! append writes a few hundred bytes of inode, bitmap, and journal
//! traffic.
//!
//! # Example
//!
//! ```
//! use memsim::{Machine, MachineConfig};
//! use pmem::AddrRange;
//! use pmfs::{Pmfs, PmfsConfig};
//! use pmtrace::Tid;
//!
//! let mut m = Machine::new(MachineConfig::asplos17());
//! let region = AddrRange::new(m.config().map.pm.base, 64 << 20);
//! let mut fs = Pmfs::mkfs(&mut m, Tid(0), region, PmfsConfig::default())?;
//! let tid = Tid(0);
//! fs.create(&mut m, tid, "/hello.txt")?;
//! fs.append(&mut m, tid, "/hello.txt", b"persistent!")?;
//! assert_eq!(fs.read_file(&mut m, tid, "/hello.txt")?, b"persistent!");
//! # Ok::<(), pmfs::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fs;
mod journal;
mod layout;

pub use fs::{FileStat, Pmfs};
pub use layout::PmfsConfig;

/// Filesystem errors (the `errno`s of the simulated syscall layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound {
        /// The missing path or component.
        path: String,
    },
    /// Path already exists (create/mkdir collision).
    Exists {
        /// The colliding path.
        path: String,
    },
    /// A path component is a file, not a directory.
    NotDir {
        /// The offending component.
        path: String,
    },
    /// The operation needs a file but found a directory.
    IsDir {
        /// The offending path.
        path: String,
    },
    /// No free data blocks.
    NoSpace,
    /// No free inodes.
    NoInodes,
    /// File would exceed the maximum supported size.
    FileTooBig {
        /// Requested size.
        size: u64,
    },
    /// A path component exceeds 55 bytes.
    NameTooLong {
        /// The offending component.
        name: String,
    },
    /// Directory not empty on `rmdir`/`unlink`.
    NotEmpty {
        /// The offending path.
        path: String,
    },
    /// Malformed path (empty, or not starting with `/`).
    BadPath {
        /// The offending path.
        path: String,
    },
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            FsError::Exists { path } => write!(f, "file exists: {path}"),
            FsError::NotDir { path } => write!(f, "not a directory: {path}"),
            FsError::IsDir { path } => write!(f, "is a directory: {path}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::FileTooBig { size } => write!(f, "file too large: {size} bytes"),
            FsError::NameTooLong { name } => write!(f, "file name too long: {name}"),
            FsError::NotEmpty { path } => write!(f, "directory not empty: {path}"),
            FsError::BadPath { path } => write!(f, "invalid path: {path}"),
        }
    }
}

impl std::error::Error for FsError {}
