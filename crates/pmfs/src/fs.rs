//! Filesystem operations (the simulated syscall layer).

use crate::journal::Journal;
use crate::layout::*;
use crate::FsError;
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

/// Result of [`Pmfs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: u32,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Last-modification time, simulated nanoseconds.
    pub mtime_ns: u64,
}

/// The mounted filesystem. See the crate docs for the design points
/// reproduced from PMFS.
#[derive(Debug)]
pub struct Pmfs {
    layout: Layout,
    journal: Journal,
    free_block_hint: u64,
    free_inode_hint: u32,
}

impl Pmfs {
    /// Format a fresh filesystem over `region`.
    ///
    /// # Errors
    ///
    /// Currently formatting cannot fail once the region fits the
    /// layout; the `Result` leaves room for richer validation.
    ///
    /// # Panics
    ///
    /// Panics if `region` is too small for `cfg` (see
    /// [`PmfsConfig::default`]: 64 MB is comfortable).
    pub fn mkfs(
        m: &mut Machine,
        tid: Tid,
        region: AddrRange,
        cfg: PmfsConfig,
    ) -> Result<Pmfs, FsError> {
        let layout = Layout::compute(region, cfg);
        let journal = Journal::new(layout.journal, layout.journal_bytes);
        journal.format(m, tid);
        let mut w = PmWriter::new(tid);
        // Superblock.
        w.write_u64(m, layout.base, SB_MAGIC, Category::FsMeta);
        w.write_u64(m, layout.base + 8, cfg.data_blocks, Category::FsMeta);
        w.write_u32(m, layout.base + 16, cfg.inodes, Category::FsMeta);
        w.write_u64(m, layout.base + 24, cfg.journal_bytes, Category::FsMeta);
        // Root directory inode.
        let root = layout.inode_addr(ROOT_INO);
        w.write_u32(m, root + I_MODE, MODE_DIR, Category::FsMeta);
        w.write_u64(m, root + I_SIZE, 0, Category::FsMeta);
        w.durability_fence(m);
        Ok(Pmfs {
            layout,
            journal,
            free_block_hint: 1,
            free_inode_hint: 2,
        })
    }

    /// Mount an existing filesystem, running journal recovery —
    /// the crash path. Returns the filesystem and whether a rollback
    /// occurred.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if `region` holds no filesystem.
    pub fn mount(m: &mut Machine, tid: Tid, region: AddrRange) -> Result<(Pmfs, bool), FsError> {
        if m.load_u64(tid, region.base) != SB_MAGIC {
            return Err(FsError::NotFound {
                path: "<superblock>".into(),
            });
        }
        let cfg = PmfsConfig {
            data_blocks: m.load_u64(tid, region.base + 8),
            inodes: m.load_u32(tid, region.base + 16),
            journal_bytes: m.load_u64(tid, region.base + 24),
        };
        let layout = Layout::compute(region, cfg);
        let mut journal = Journal::new(layout.journal, layout.journal_bytes);
        assert!(journal.is_formatted(m, tid), "superblock without journal");
        let rolled_back = journal.recover(m, tid);
        Ok((
            Pmfs {
                layout,
                journal,
                free_block_hint: 1,
                free_inode_hint: 2,
            },
            rolled_back,
        ))
    }

    // -----------------------------------------------------------------
    // Journaled metadata helpers
    // -----------------------------------------------------------------

    fn meta_write(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr, bytes: &[u8]) {
        self.journal.log_old(m, w, addr, bytes.len());
        w.write(m, addr, bytes, Category::FsMeta);
    }

    fn meta_write_u64(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr, v: u64) {
        self.meta_write(m, w, addr, &v.to_le_bytes());
    }

    fn meta_write_u32(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr, v: u32) {
        self.meta_write(m, w, addr, &v.to_le_bytes());
    }

    // -----------------------------------------------------------------
    // Allocation
    // -----------------------------------------------------------------

    fn alloc_block(&mut self, m: &mut Machine, w: &mut PmWriter) -> Result<u64, FsError> {
        let tid = w.tid();
        let total = self.layout.data_blocks;
        for i in 0..total {
            let block = (self.free_block_hint + i - 1) % total + 1;
            let byte_addr = self.layout.bitmap_byte_addr(block);
            let byte = m.load_vec(tid, byte_addr, 1)[0];
            let mask = 1u8 << ((block - 1) % 8);
            if byte & mask == 0 {
                self.meta_write(m, w, byte_addr, &[byte | mask]);
                self.free_block_hint = block % total + 1;
                return Ok(block);
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&mut self, m: &mut Machine, w: &mut PmWriter, block: u64) {
        let tid = w.tid();
        let byte_addr = self.layout.bitmap_byte_addr(block);
        let byte = m.load_vec(tid, byte_addr, 1)[0];
        let mask = 1u8 << ((block - 1) % 8);
        self.meta_write(m, w, byte_addr, &[byte & !mask]);
    }

    fn alloc_inode(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        mode: u32,
    ) -> Result<u32, FsError> {
        let tid = w.tid();
        let total = self.layout.inodes;
        for i in 0..total {
            let ino = (self.free_inode_hint + i - 2) % (total - 1) + 2; // skip root
            let addr = self.layout.inode_addr(ino);
            if m.load_u32(tid, addr + I_MODE) == MODE_FREE {
                self.meta_write_u32(m, w, addr + I_MODE, mode);
                self.meta_write_u64(m, w, addr + I_SIZE, 0);
                self.meta_write_u64(m, w, addr + I_MTIME, m.now_ns());
                self.free_inode_hint = ino % total + 1;
                return Ok(ino);
            }
        }
        Err(FsError::NoInodes)
    }

    // -----------------------------------------------------------------
    // Block mapping
    // -----------------------------------------------------------------

    /// Block number backing file block index `idx`, or 0 for a hole.
    fn get_block(&self, m: &mut Machine, tid: Tid, ino: u32, idx: u64) -> u64 {
        let inode = self.layout.inode_addr(ino);
        if idx < DIRECT_PTRS {
            m.load_u64(tid, inode + I_DIRECT + idx * 8)
        } else {
            let ind = m.load_u64(tid, inode + I_INDIRECT);
            if ind == 0 {
                return 0;
            }
            m.load_u64(tid, self.layout.block_addr(ind) + (idx - DIRECT_PTRS) * 8)
        }
    }

    /// Ensure file block `idx` is mapped; allocate if needed.
    fn ensure_block(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        ino: u32,
        idx: u64,
    ) -> Result<u64, FsError> {
        let tid = w.tid();
        let existing = self.get_block(m, tid, ino, idx);
        if existing != 0 {
            return Ok(existing);
        }
        let inode = self.layout.inode_addr(ino);
        let block = self.alloc_block(m, w)?;
        if idx < DIRECT_PTRS {
            self.meta_write_u64(m, w, inode + I_DIRECT + idx * 8, block);
        } else {
            let mut ind = m.load_u64(tid, inode + I_INDIRECT);
            if ind == 0 {
                ind = self.alloc_block(m, w)?;
                // A fresh indirect block must be zeroed; PMFS zeroes
                // pages with non-temporal stores.
                w.write_nt(
                    m,
                    self.layout.block_addr(ind),
                    &[0u8; BLOCK_SIZE as usize],
                    Category::FsMeta,
                );
                w.ordering_fence(m);
                self.meta_write_u64(m, w, inode + I_INDIRECT, ind);
            }
            self.meta_write_u64(
                m,
                w,
                self.layout.block_addr(ind) + (idx - DIRECT_PTRS) * 8,
                block,
            );
        }
        Ok(block)
    }

    // -----------------------------------------------------------------
    // Path resolution & directories
    // -----------------------------------------------------------------

    fn split_path<'a>(&self, path: &'a str) -> Result<Vec<&'a str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::BadPath { path: path.into() });
        }
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        for p in &parts {
            if p.len() > MAX_NAME {
                return Err(FsError::NameTooLong { name: (*p).into() });
            }
        }
        Ok(parts)
    }

    fn inode_mode(&self, m: &mut Machine, tid: Tid, ino: u32) -> u32 {
        let addr = self.layout.inode_addr(ino);
        m.load_u32(tid, addr + I_MODE)
    }

    /// Scan a directory for `name`. Returns `(child ino, dent addr)`.
    fn lookup(&self, m: &mut Machine, tid: Tid, dir: u32, name: &str) -> Option<(u32, Addr)> {
        let inode = self.layout.inode_addr(dir);
        let size = m.load_u64(tid, inode + I_SIZE);
        let nblocks = size.div_ceil(BLOCK_SIZE);
        for b in 0..nblocks {
            let block = self.get_block(m, tid, dir, b);
            if block == 0 {
                continue;
            }
            let base = self.layout.block_addr(block);
            for slot in 0..BLOCK_SIZE / DENT_SIZE {
                let at = base + slot * DENT_SIZE;
                let child = m.load_u32(tid, at);
                if child == 0 {
                    continue;
                }
                let nlen = m.load_u32(tid, at + 4) as usize;
                let n = m.load_vec(tid, at + 8, nlen);
                if n == name.as_bytes() {
                    return Some((child, at));
                }
            }
        }
        None
    }

    /// Resolve a path to `(inode, parent inode)`. Root has parent root.
    fn resolve(&self, m: &mut Machine, tid: Tid, path: &str) -> Result<(u32, u32), FsError> {
        let parts = self.split_path(path)?;
        let mut cur = ROOT_INO;
        let mut parent = ROOT_INO;
        for (i, part) in parts.iter().enumerate() {
            if self.inode_mode(m, tid, cur) != MODE_DIR {
                return Err(FsError::NotDir {
                    path: parts[..i].join("/"),
                });
            }
            match self.lookup(m, tid, cur, part) {
                Some((child, _)) => {
                    parent = cur;
                    cur = child;
                }
                None => {
                    return Err(FsError::NotFound { path: path.into() });
                }
            }
        }
        Ok((cur, parent))
    }

    fn dir_add(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        dir: u32,
        name: &str,
        child: u32,
    ) -> Result<(), FsError> {
        let tid = w.tid();
        let inode = self.layout.inode_addr(dir);
        let size = m.load_u64(tid, inode + I_SIZE);
        let nblocks = size.div_ceil(BLOCK_SIZE);
        // Look for a free slot in existing blocks.
        for b in 0..nblocks {
            let block = self.get_block(m, tid, dir, b);
            if block == 0 {
                continue;
            }
            let base = self.layout.block_addr(block);
            for slot in 0..BLOCK_SIZE / DENT_SIZE {
                let at = base + slot * DENT_SIZE;
                if m.load_u32(tid, at) == 0 {
                    return self.write_dent(m, w, at, name, child);
                }
            }
        }
        // Grow the directory by one block.
        if nblocks >= DIRECT_PTRS + INDIRECT_PTRS {
            return Err(FsError::NoSpace);
        }
        let block = self.ensure_block(m, w, dir, nblocks)?;
        // Zero the new directory block so stale entries cannot appear.
        w.write_nt(
            m,
            self.layout.block_addr(block),
            &[0u8; BLOCK_SIZE as usize],
            Category::FsMeta,
        );
        w.ordering_fence(m);
        self.meta_write_u64(m, w, inode + I_SIZE, (nblocks + 1) * BLOCK_SIZE);
        let at = self.layout.block_addr(block);
        self.write_dent(m, w, at, name, child)
    }

    fn write_dent(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        at: Addr,
        name: &str,
        child: u32,
    ) -> Result<(), FsError> {
        let mut dent = [0u8; DENT_SIZE as usize];
        dent[0..4].copy_from_slice(&child.to_le_bytes());
        dent[4..8].copy_from_slice(&(name.len() as u32).to_le_bytes());
        dent[8..8 + name.len()].copy_from_slice(name.as_bytes());
        self.meta_write(m, w, at, &dent);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Public operations
    // -----------------------------------------------------------------

    /// Create an empty regular file.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`], [`FsError::NotFound`] (missing parent),
    /// [`FsError::NoInodes`], path errors.
    pub fn create(&mut self, m: &mut Machine, tid: Tid, path: &str) -> Result<u32, FsError> {
        self.create_node(m, tid, path, MODE_FILE)
    }

    /// Create a directory.
    ///
    /// # Errors
    ///
    /// As for [`Pmfs::create`].
    pub fn mkdir(&mut self, m: &mut Machine, tid: Tid, path: &str) -> Result<u32, FsError> {
        self.create_node(m, tid, path, MODE_DIR)
    }

    fn create_node(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        path: &str,
        mode: u32,
    ) -> Result<u32, FsError> {
        let parts = self.split_path(path)?;
        let Some((name, parent_parts)) = parts.split_last() else {
            return Err(FsError::Exists { path: path.into() });
        };
        let parent_path = format!("/{}", parent_parts.join("/"));
        let (dir, _) = self.resolve(m, tid, &parent_path)?;
        if self.inode_mode(m, tid, dir) != MODE_DIR {
            return Err(FsError::NotDir { path: parent_path });
        }
        if self.lookup(m, tid, dir, name).is_some() {
            return Err(FsError::Exists { path: path.into() });
        }
        let mut w = PmWriter::new(tid);
        self.journal.begin_op(m, &mut w);
        let ino = self.alloc_inode(m, &mut w, mode)?;
        self.dir_add(m, &mut w, dir, name, ino)?;
        self.journal.end_op(m, &mut w);
        Ok(ino)
    }

    /// Write `data` at byte offset `off`, extending the file as needed.
    /// Data goes to PM with non-temporal stores, synchronously.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsDir`],
    /// [`FsError::FileTooBig`], [`FsError::NoSpace`].
    pub fn write(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        path: &str,
        off: u64,
        data: &[u8],
    ) -> Result<(), FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        if self.inode_mode(m, tid, ino) == MODE_DIR {
            return Err(FsError::IsDir { path: path.into() });
        }
        let end = off + data.len() as u64;
        if end > MAX_FILE {
            return Err(FsError::FileTooBig { size: end });
        }
        let mut w = PmWriter::new(tid);
        self.journal.begin_op(m, &mut w);
        // Map and write each affected block. User data is written with
        // NTIs and is not journaled (PMFS does not log user data).
        let mut cursor = off;
        let mut src = 0usize;
        while cursor < end {
            let bidx = cursor / BLOCK_SIZE;
            let boff = cursor % BLOCK_SIZE;
            let chunk = ((BLOCK_SIZE - boff) as usize).min(data.len() - src);
            let block = self.ensure_block(m, &mut w, ino, bidx)?;
            let at = self.layout.block_addr(block) + boff;
            w.write_nt(m, at, &data[src..src + chunk], Category::UserData);
            // One epoch per block write: a 4 KB block is 64 lines.
            w.ordering_fence(m);
            cursor += chunk as u64;
            src += chunk;
        }
        // Update size and mtime under the journal.
        let inode = self.layout.inode_addr(ino);
        let old_size = m.load_u64(tid, inode + I_SIZE);
        if end > old_size {
            self.meta_write_u64(m, &mut w, inode + I_SIZE, end);
        }
        let now = m.now_ns();
        self.meta_write_u64(m, &mut w, inode + I_MTIME, now);
        self.journal.end_op(m, &mut w);
        Ok(())
    }

    /// Append `data` at the end of the file.
    ///
    /// # Errors
    ///
    /// As for [`Pmfs::write`].
    pub fn append(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        path: &str,
        data: &[u8],
    ) -> Result<(), FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        let size = m.load_u64(tid, self.layout.inode_addr(ino) + I_SIZE);
        self.write(m, tid, path, size, data)
    }

    /// Read `len` bytes from byte offset `off` (short reads at EOF).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsDir`].
    pub fn read(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        path: &str,
        off: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        if self.inode_mode(m, tid, ino) == MODE_DIR {
            return Err(FsError::IsDir { path: path.into() });
        }
        let size = m.load_u64(tid, self.layout.inode_addr(ino) + I_SIZE);
        let end = (off + len as u64).min(size);
        let mut out = Vec::with_capacity(len);
        let mut cursor = off;
        while cursor < end {
            let bidx = cursor / BLOCK_SIZE;
            let boff = cursor % BLOCK_SIZE;
            let chunk = (BLOCK_SIZE - boff).min(end - cursor) as usize;
            let block = self.get_block(m, tid, ino, bidx);
            if block == 0 {
                out.extend(std::iter::repeat_n(0u8, chunk)); // hole
            } else {
                out.extend(m.load_vec(tid, self.layout.block_addr(block) + boff, chunk));
            }
            cursor += chunk as u64;
        }
        Ok(out)
    }

    /// Read a whole file.
    ///
    /// # Errors
    ///
    /// As for [`Pmfs::read`].
    pub fn read_file(&mut self, m: &mut Machine, tid: Tid, path: &str) -> Result<Vec<u8>, FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        let size = m.load_u64(tid, self.layout.inode_addr(ino) + I_SIZE);
        self.read(m, tid, path, 0, size as usize)
    }

    /// File metadata.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], path errors.
    pub fn stat(&mut self, m: &mut Machine, tid: Tid, path: &str) -> Result<FileStat, FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        let inode = self.layout.inode_addr(ino);
        Ok(FileStat {
            ino,
            size: m.load_u64(tid, inode + I_SIZE),
            is_dir: m.load_u32(tid, inode + I_MODE) == MODE_DIR,
            mtime_ns: m.load_u64(tid, inode + I_MTIME),
        })
    }

    /// Synchronous-persistence filesystems have nothing to flush:
    /// "PMFS ... persists user data and filesystem metadata
    /// synchronously". Provided for interface compatibility.
    pub fn fsync(&self, _m: &mut Machine, _tid: Tid, _path: &str) {}

    /// Delete a file, freeing its blocks and inode.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsDir`] (use `rmdir`).
    pub fn unlink(&mut self, m: &mut Machine, tid: Tid, path: &str) -> Result<(), FsError> {
        let parts = self.split_path(path)?;
        let Some((name, parent_parts)) = parts.split_last() else {
            return Err(FsError::IsDir { path: path.into() });
        };
        let parent_path = format!("/{}", parent_parts.join("/"));
        let (dir, _) = self.resolve(m, tid, &parent_path)?;
        let Some((ino, dent)) = self.lookup(m, tid, dir, name) else {
            return Err(FsError::NotFound { path: path.into() });
        };
        if self.inode_mode(m, tid, ino) == MODE_DIR {
            return Err(FsError::IsDir { path: path.into() });
        }
        let mut w = PmWriter::new(tid);
        self.journal.begin_op(m, &mut w);
        self.meta_write_u32(m, &mut w, dent, 0); // clear dent
        let inode = self.layout.inode_addr(ino);
        let size = m.load_u64(tid, inode + I_SIZE);
        for bidx in 0..size.div_ceil(BLOCK_SIZE) {
            let block = self.get_block(m, tid, ino, bidx);
            if block != 0 {
                self.free_block(m, &mut w, block);
            }
        }
        let ind = m.load_u64(tid, inode + I_INDIRECT);
        if ind != 0 {
            self.free_block(m, &mut w, ind);
        }
        // Clear the inode (mode, size, pointers).
        self.meta_write_u32(m, &mut w, inode + I_MODE, MODE_FREE);
        self.meta_write_u64(m, &mut w, inode + I_SIZE, 0);
        self.meta_write(
            m,
            &mut w,
            inode + I_DIRECT,
            &[0u8; (DIRECT_PTRS as usize + 1) * 8],
        );
        self.journal.end_op(m, &mut w);
        Ok(())
    }

    /// Rename a file or directory within the filesystem (one journaled
    /// metadata transaction: the new entry appears and the old one
    /// disappears atomically, as PMFS's journal guarantees).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::Exists`] if `to` exists,
    /// path errors.
    pub fn rename(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        from: &str,
        to: &str,
    ) -> Result<(), FsError> {
        let from_parts = self.split_path(from)?;
        let to_parts = self.split_path(to)?;
        let Some((from_name, from_parent)) = from_parts.split_last() else {
            return Err(FsError::BadPath { path: from.into() });
        };
        let Some((to_name, to_parent)) = to_parts.split_last() else {
            return Err(FsError::BadPath { path: to.into() });
        };
        let from_dir = self
            .resolve(m, tid, &format!("/{}", from_parent.join("/")))?
            .0;
        let to_dir = self
            .resolve(m, tid, &format!("/{}", to_parent.join("/")))?
            .0;
        let Some((ino, old_dent)) = self.lookup(m, tid, from_dir, from_name) else {
            return Err(FsError::NotFound { path: from.into() });
        };
        if self.lookup(m, tid, to_dir, to_name).is_some() {
            return Err(FsError::Exists { path: to.into() });
        }
        let mut w = PmWriter::new(tid);
        self.journal.begin_op(m, &mut w);
        self.dir_add(m, &mut w, to_dir, to_name, ino)?;
        self.meta_write_u32(m, &mut w, old_dent, 0);
        self.journal.end_op(m, &mut w);
        Ok(())
    }

    /// Remove an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::NotDir`],
    /// [`FsError::NotEmpty`], and [`FsError::BadPath`] for the root.
    pub fn rmdir(&mut self, m: &mut Machine, tid: Tid, path: &str) -> Result<(), FsError> {
        let parts = self.split_path(path)?;
        let Some((name, parent_parts)) = parts.split_last() else {
            return Err(FsError::BadPath { path: path.into() });
        };
        let parent_path = format!("/{}", parent_parts.join("/"));
        let (dir, _) = self.resolve(m, tid, &parent_path)?;
        let Some((ino, dent)) = self.lookup(m, tid, dir, name) else {
            return Err(FsError::NotFound { path: path.into() });
        };
        if self.inode_mode(m, tid, ino) != MODE_DIR {
            return Err(FsError::NotDir { path: path.into() });
        }
        if !self.readdir(m, tid, path)?.is_empty() {
            return Err(FsError::NotEmpty { path: path.into() });
        }
        let mut w = PmWriter::new(tid);
        self.journal.begin_op(m, &mut w);
        self.meta_write_u32(m, &mut w, dent, 0);
        let inode = self.layout.inode_addr(ino);
        // Free the (possibly allocated-then-emptied) directory blocks.
        let size = m.load_u64(tid, inode + I_SIZE);
        for bidx in 0..size.div_ceil(BLOCK_SIZE) {
            let block = self.get_block(m, tid, ino, bidx);
            if block != 0 {
                self.free_block(m, &mut w, block);
            }
        }
        self.meta_write_u32(m, &mut w, inode + I_MODE, MODE_FREE);
        self.meta_write_u64(m, &mut w, inode + I_SIZE, 0);
        self.meta_write(
            m,
            &mut w,
            inode + I_DIRECT,
            &[0u8; (DIRECT_PTRS as usize + 1) * 8],
        );
        self.journal.end_op(m, &mut w);
        Ok(())
    }

    /// List the names in a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::NotDir`].
    pub fn readdir(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        path: &str,
    ) -> Result<Vec<String>, FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        if self.inode_mode(m, tid, ino) != MODE_DIR {
            return Err(FsError::NotDir { path: path.into() });
        }
        let inode = self.layout.inode_addr(ino);
        let size = m.load_u64(tid, inode + I_SIZE);
        let mut names = Vec::new();
        for b in 0..size.div_ceil(BLOCK_SIZE) {
            let block = self.get_block(m, tid, ino, b);
            if block == 0 {
                continue;
            }
            let base = self.layout.block_addr(block);
            for slot in 0..BLOCK_SIZE / DENT_SIZE {
                let at = base + slot * DENT_SIZE;
                let child = m.load_u32(tid, at);
                if child != 0 {
                    let nlen = m.load_u32(tid, at + 4) as usize;
                    let n = m.load_vec(tid, at + 8, nlen);
                    names.push(String::from_utf8_lossy(&n).into_owned());
                }
            }
        }
        Ok(names)
    }

    /// Shrink a file to `new_size` (which must not exceed the current
    /// size), freeing whole blocks past the new end.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsDir`],
    /// [`FsError::FileTooBig`] if `new_size` is larger than the file.
    pub fn truncate(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        path: &str,
        new_size: u64,
    ) -> Result<(), FsError> {
        let (ino, _) = self.resolve(m, tid, path)?;
        if self.inode_mode(m, tid, ino) == MODE_DIR {
            return Err(FsError::IsDir { path: path.into() });
        }
        let inode = self.layout.inode_addr(ino);
        let size = m.load_u64(tid, inode + I_SIZE);
        if new_size > size {
            return Err(FsError::FileTooBig { size: new_size });
        }
        let mut w = PmWriter::new(tid);
        self.journal.begin_op(m, &mut w);
        let keep = new_size.div_ceil(BLOCK_SIZE);
        for bidx in keep..size.div_ceil(BLOCK_SIZE) {
            let block = self.get_block(m, tid, ino, bidx);
            if block != 0 {
                self.free_block(m, &mut w, block);
                if bidx < DIRECT_PTRS {
                    self.meta_write_u64(m, &mut w, inode + I_DIRECT + bidx * 8, 0);
                } else {
                    let ind = m.load_u64(tid, inode + I_INDIRECT);
                    self.meta_write_u64(
                        m,
                        &mut w,
                        self.layout.block_addr(ind) + (bidx - DIRECT_PTRS) * 8,
                        0,
                    );
                }
            }
        }
        self.meta_write_u64(m, &mut w, inode + I_SIZE, new_size);
        let now = m.now_ns();
        self.meta_write_u64(m, &mut w, inode + I_MTIME, now);
        self.journal.end_op(m, &mut w);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};

    const TID: Tid = Tid(0);

    fn setup() -> (Machine, Pmfs, AddrRange) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let region = AddrRange::new(m.config().map.pm.base, 64 << 20);
        let fs = Pmfs::mkfs(&mut m, TID, region, PmfsConfig::default()).unwrap();
        (m, fs, region)
    }

    #[test]
    fn create_write_read() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/a.txt").unwrap();
        fs.write(&mut m, TID, "/a.txt", 0, b"hello pmfs").unwrap();
        assert_eq!(fs.read_file(&mut m, TID, "/a.txt").unwrap(), b"hello pmfs");
        let st = fs.stat(&mut m, TID, "/a.txt").unwrap();
        assert_eq!(st.size, 10);
        assert!(!st.is_dir);
    }

    #[test]
    fn nested_directories() {
        let (mut m, mut fs, _) = setup();
        fs.mkdir(&mut m, TID, "/d1").unwrap();
        fs.mkdir(&mut m, TID, "/d1/d2").unwrap();
        fs.create(&mut m, TID, "/d1/d2/f").unwrap();
        fs.append(&mut m, TID, "/d1/d2/f", b"deep").unwrap();
        assert_eq!(fs.read_file(&mut m, TID, "/d1/d2/f").unwrap(), b"deep");
        assert_eq!(fs.readdir(&mut m, TID, "/d1").unwrap(), vec!["d2"]);
        assert!(fs.stat(&mut m, TID, "/d1").unwrap().is_dir);
    }

    #[test]
    fn errors_surface_correctly() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/f").unwrap();
        assert!(matches!(
            fs.create(&mut m, TID, "/f"),
            Err(FsError::Exists { .. })
        ));
        assert!(matches!(
            fs.read_file(&mut m, TID, "/missing"),
            Err(FsError::NotFound { .. })
        ));
        assert!(matches!(
            fs.create(&mut m, TID, "/f/child"),
            Err(FsError::NotDir { .. })
        ));
        assert!(matches!(
            fs.write(&mut m, TID, "/", 0, b"x"),
            Err(FsError::IsDir { .. })
        ));
        assert!(matches!(
            fs.create(&mut m, TID, "no-slash"),
            Err(FsError::BadPath { .. })
        ));
        let long = format!("/{}", "n".repeat(100));
        assert!(matches!(
            fs.create(&mut m, TID, &long),
            Err(FsError::NameTooLong { .. })
        ));
    }

    #[test]
    fn multi_block_files_and_offsets() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/big").unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        fs.write(&mut m, TID, "/big", 0, &data).unwrap();
        assert_eq!(fs.read_file(&mut m, TID, "/big").unwrap(), data);
        // Overwrite in the middle, spanning a block boundary.
        fs.write(&mut m, TID, "/big", 4090, &[0xFF; 20]).unwrap();
        let r = fs.read(&mut m, TID, "/big", 4090, 20).unwrap();
        assert_eq!(r, vec![0xFF; 20]);
        assert_eq!(fs.stat(&mut m, TID, "/big").unwrap().size, 10_000);
    }

    #[test]
    fn indirect_blocks_for_large_files() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/huge").unwrap();
        // Past the direct range: 12 * 4096 = 49152.
        let off = 13 * 4096;
        fs.write(&mut m, TID, "/huge", off, b"indirect-data")
            .unwrap();
        assert_eq!(
            fs.read(&mut m, TID, "/huge", off, 13).unwrap(),
            b"indirect-data"
        );
        // The hole before it reads as zeros.
        assert_eq!(fs.read(&mut m, TID, "/huge", 0, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn file_too_big_rejected() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/f").unwrap();
        assert!(matches!(
            fs.write(&mut m, TID, "/f", MAX_FILE, b"x"),
            Err(FsError::FileTooBig { .. })
        ));
    }

    #[test]
    fn unlink_frees_space_for_reuse() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/a").unwrap();
        fs.write(&mut m, TID, "/a", 0, &[1; 8192]).unwrap();
        fs.unlink(&mut m, TID, "/a").unwrap();
        assert!(matches!(
            fs.read_file(&mut m, TID, "/a"),
            Err(FsError::NotFound { .. })
        ));
        // Name and space reusable.
        fs.create(&mut m, TID, "/a").unwrap();
        fs.write(&mut m, TID, "/a", 0, b"new").unwrap();
        assert_eq!(fs.read_file(&mut m, TID, "/a").unwrap(), b"new");
    }

    #[test]
    fn rename_moves_atomically() {
        let (mut m, mut fs, region) = setup();
        fs.mkdir(&mut m, TID, "/spool").unwrap();
        fs.mkdir(&mut m, TID, "/inbox").unwrap();
        fs.create(&mut m, TID, "/spool/msg").unwrap();
        fs.append(&mut m, TID, "/spool/msg", b"mail body").unwrap();
        fs.rename(&mut m, TID, "/spool/msg", "/inbox/msg").unwrap();
        assert_eq!(
            fs.read_file(&mut m, TID, "/inbox/msg").unwrap(),
            b"mail body"
        );
        assert!(matches!(
            fs.read_file(&mut m, TID, "/spool/msg"),
            Err(FsError::NotFound { .. })
        ));
        // Destination collision and missing source are rejected.
        fs.create(&mut m, TID, "/spool/other").unwrap();
        assert!(matches!(
            fs.rename(&mut m, TID, "/spool/other", "/inbox/msg"),
            Err(FsError::Exists { .. })
        ));
        assert!(matches!(
            fs.rename(&mut m, TID, "/spool/ghost", "/inbox/x"),
            Err(FsError::NotFound { .. })
        ));
        // Crash mid-rename rolls back to exactly one name.
        let mut w = PmWriter::new(TID);
        fs.journal.begin_op(&mut m, &mut w);
        let (ino, dent) = {
            let (dir, _) = fs.resolve(&mut m, TID, "/spool").unwrap();
            fs.lookup(&mut m, TID, dir, "other").unwrap()
        };
        let (to_dir, _) = fs.resolve(&mut m, TID, "/inbox").unwrap();
        fs.dir_add(&mut m, &mut w, to_dir, "other", ino).unwrap();
        fs.meta_write_u32(&mut m, &mut w, dent, 0);
        // No end_op: crash with everything in flight persisted (the
        // worst case for an uncommitted rename).
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let (mut fs2, rolled_back) = Pmfs::mount(&mut m2, TID, region).unwrap();
        assert!(rolled_back, "mid-rename journal must roll back");
        let in_spool = fs2.stat(&mut m2, TID, "/spool/other").is_ok();
        let in_inbox = fs2.stat(&mut m2, TID, "/inbox/other").is_ok();
        assert!(in_spool && !in_inbox, "rename must roll back whole");
    }

    #[test]
    fn rmdir_requires_empty() {
        let (mut m, mut fs, _) = setup();
        fs.mkdir(&mut m, TID, "/d").unwrap();
        fs.create(&mut m, TID, "/d/f").unwrap();
        assert!(matches!(
            fs.rmdir(&mut m, TID, "/d"),
            Err(FsError::NotEmpty { .. })
        ));
        fs.unlink(&mut m, TID, "/d/f").unwrap();
        fs.rmdir(&mut m, TID, "/d").unwrap();
        assert!(matches!(
            fs.stat(&mut m, TID, "/d"),
            Err(FsError::NotFound { .. })
        ));
        // Name reusable as a file afterwards.
        fs.create(&mut m, TID, "/d").unwrap();
        assert!(matches!(
            fs.rmdir(&mut m, TID, "/d"),
            Err(FsError::NotDir { .. })
        ));
        assert!(matches!(
            fs.rmdir(&mut m, TID, "/"),
            Err(FsError::BadPath { .. })
        ));
    }

    #[test]
    fn truncate_shrinks() {
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/t").unwrap();
        fs.write(&mut m, TID, "/t", 0, &[7; 9000]).unwrap();
        fs.truncate(&mut m, TID, "/t", 100).unwrap();
        assert_eq!(fs.stat(&mut m, TID, "/t").unwrap().size, 100);
        assert_eq!(fs.read_file(&mut m, TID, "/t").unwrap(), vec![7; 100]);
        assert!(matches!(
            fs.truncate(&mut m, TID, "/t", 200),
            Err(FsError::FileTooBig { .. })
        ));
    }

    #[test]
    fn data_durable_after_write_returns() {
        let (mut m, mut fs, region) = setup();
        fs.create(&mut m, TID, "/d").unwrap();
        fs.write(&mut m, TID, "/d", 0, b"synchronous").unwrap();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let (mut fs2, rolled_back) = Pmfs::mount(&mut m2, TID, region).unwrap();
        assert!(!rolled_back);
        assert_eq!(fs2.read_file(&mut m2, TID, "/d").unwrap(), b"synchronous");
    }

    #[test]
    fn crash_mid_op_rolls_back_metadata() {
        for seed in 0..20 {
            let (mut m, mut fs, region) = setup();
            fs.create(&mut m, TID, "/keep").unwrap();
            fs.write(&mut m, TID, "/keep", 0, b"safe").unwrap();
            // Start an op and crash before its journal commit: emulate
            // by doing the journaled pieces by hand.
            let mut w = PmWriter::new(TID);
            fs.journal.begin_op(&mut m, &mut w);
            let ino = fs.alloc_inode(&mut m, &mut w, MODE_FILE).unwrap();
            fs.dir_add(&mut m, &mut w, ROOT_INO, "torn", ino).unwrap();
            // No end_op: crash.
            let img = m.crash(CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let (mut fs2, _) = Pmfs::mount(&mut m2, TID, region).unwrap();
            assert_eq!(
                fs2.read_file(&mut m2, TID, "/keep").unwrap(),
                b"safe",
                "seed {seed}"
            );
            assert!(
                matches!(
                    fs2.stat(&mut m2, TID, "/torn"),
                    Err(FsError::NotFound { .. })
                ),
                "seed {seed}: torn create must roll back"
            );
            // The filesystem still works after recovery.
            fs2.create(&mut m2, TID, "/after").unwrap();
            fs2.append(&mut m2, TID, "/after", b"ok").unwrap();
            assert_eq!(fs2.read_file(&mut m2, TID, "/after").unwrap(), b"ok");
        }
    }

    #[test]
    fn mount_rejects_unformatted_region() {
        let m = Machine::new(MachineConfig::asplos17());
        let mut m = m;
        let region = AddrRange::new(m.config().map.pm.base + (128 << 20), 64 << 20);
        assert!(matches!(
            Pmfs::mount(&mut m, TID, region),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn nt_fraction_is_high_for_block_writes() {
        // Consequence 10: PMFS writes ~96% of bytes with NTIs.
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/data").unwrap();
        for i in 0..8u64 {
            fs.write(&mut m, TID, "/data", i * 4096, &[i as u8; 4096])
                .unwrap();
        }
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let nt = pmtrace::analysis::nt_fraction(&epochs).unwrap();
        assert!(nt > 0.8, "NT fraction {nt} too low");
    }

    #[test]
    fn write_amplification_near_ten_percent() {
        // Section 5.2: ~400 extra bytes per 4096-byte append.
        let (mut m, mut fs, _) = setup();
        fs.create(&mut m, TID, "/amp").unwrap();
        m.trace_mut().clear();
        for i in 0..16u64 {
            fs.append(&mut m, TID, "/amp", &[i as u8; 4096]).unwrap();
        }
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let amp = pmtrace::analysis::amplification(&epochs)
            .amplification()
            .unwrap();
        assert!(
            amp > 0.02 && amp < 0.5,
            "amplification {amp} out of PMFS range"
        );
    }

    #[test]
    fn many_files_in_directory() {
        let (mut m, mut fs, _) = setup();
        // More files than fit in one 4 KB dir block (64 dents).
        for i in 0..100 {
            fs.create(&mut m, TID, &format!("/f{i}")).unwrap();
        }
        let names = fs.readdir(&mut m, TID, "/").unwrap();
        assert_eq!(names.len(), 100);
        fs.unlink(&mut m, TID, "/f50").unwrap();
        assert_eq!(fs.readdir(&mut m, TID, "/").unwrap().len(), 99);
        // The freed slot is reused.
        fs.create(&mut m, TID, "/reused").unwrap();
        assert_eq!(fs.readdir(&mut m, TID, "/").unwrap().len(), 100);
    }
}
