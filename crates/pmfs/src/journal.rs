//! The metadata undo journal.

use memsim::{Machine, PmWriter};
use pmem::Addr;
use pmtrace::{Category, Tid};

const J_MAGIC: u64 = 0x504d_4653_4a4e_4c21; // "PMFSJNL!"
const ENTRY_VALID: u32 = 0x5566_7788;
/// Fixed journal slot: header (valid u32, len u32, addr u64, seq u64)
/// plus up to 136 bytes of old metadata.
const SLOT_BYTES: u64 = 160;
const SLOT_HDR: u64 = 24;
pub(crate) const MAX_OLD: usize = (SLOT_BYTES - SLOT_HDR) as usize;
pub(crate) const STATUS_IDLE: u32 = 0;
pub(crate) const STATUS_UNCOMMITTED: u32 = 1;
pub(crate) const STATUS_COMMITTED: u32 = 2;

/// PMFS's undo journal for metadata: "PMFS ... employs an undo log to
/// ensure metadata consistency", altering "the status in the log
/// descriptor from UNCOMMITTED to COMMITTED after a successful commit"
/// (Sections 3.1, 5.1).
///
/// The journal is a ring of fixed-size slots. Entries are written in
/// their own epochs (the paper's PMFS singleton population), the commit
/// marker flips the descriptor line written at `begin_op` (a
/// self-dependency), and — because the log is a ring — each entry is
/// *cleared lazily at the start of the next operation*, long after its
/// own line was written. At MySQL's and Exim's operation rates those
/// clears fall outside the 50 µs dependency window, which is why the
/// paper measures far fewer self-dependencies for them than for NFS,
/// whose back-to-back operations keep reusing journal and metadata
/// lines within the window.
#[derive(Debug)]
pub(crate) struct Journal {
    base: Addr,
    n_slots: u64,
    /// Next slot index to write (volatile; recovery rescans).
    cursor: u64,
    /// Monotone entry sequence number (orders rollback).
    seq: u64,
    /// Slots written by the in-flight / most recent op, pending lazy
    /// clearing.
    entries: Vec<Addr>,
}

impl Journal {
    pub(crate) fn new(base: Addr, size: u64) -> Journal {
        assert!(size >= 64 + 4 * SLOT_BYTES, "journal too small");
        Journal {
            base,
            n_slots: (size - 64) / SLOT_BYTES,
            cursor: 0,
            seq: 1,
            entries: Vec::new(),
        }
    }

    fn slot_addr(&self, idx: u64) -> Addr {
        self.base + 64 + idx * SLOT_BYTES
    }

    pub(crate) fn format(&self, m: &mut Machine, tid: Tid) {
        let mut w = PmWriter::new(tid);
        w.write_u64(m, self.base, J_MAGIC, Category::LogMeta);
        w.write_u32(m, self.base + 8, STATUS_IDLE, Category::LogMeta);
        w.ordering_fence(m);
    }

    pub(crate) fn is_formatted(&self, m: &mut Machine, tid: Tid) -> bool {
        m.load_u64(tid, self.base) == J_MAGIC
    }

    /// Begin a metadata transaction: lazily clear the previous
    /// operation's entries (each in its own epoch), then flip the
    /// descriptor to UNCOMMITTED.
    pub(crate) fn begin_op(&mut self, m: &mut Machine, w: &mut PmWriter) {
        for at in std::mem::take(&mut self.entries) {
            w.write_u32(m, at, 0, Category::LogMeta);
            w.ordering_fence(m);
        }
        w.write_u32(m, self.base + 8, STATUS_UNCOMMITTED, Category::LogMeta);
        w.ordering_fence(m);
    }

    /// Log the current (old) contents of a metadata range before it is
    /// overwritten. One epoch per entry.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds a slot or the operation needs more
    /// slots than the ring holds.
    pub(crate) fn log_old(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr, len: usize) {
        assert!(
            len <= MAX_OLD,
            "metadata range of {len} bytes exceeds a journal slot"
        );
        assert!(
            (self.entries.len() as u64) < self.n_slots,
            "operation needs more than {} journal slots",
            self.n_slots
        );
        let tid = w.tid();
        let old = m.load_vec(tid, addr, len);
        let at = self.slot_addr(self.cursor);
        let mut hdr = [0u8; SLOT_HDR as usize];
        hdr[0..4].copy_from_slice(&ENTRY_VALID.to_le_bytes());
        hdr[4..8].copy_from_slice(&(len as u32).to_le_bytes());
        hdr[8..16].copy_from_slice(&addr.to_le_bytes());
        hdr[16..24].copy_from_slice(&self.seq.to_le_bytes());
        w.write(m, at, &hdr, Category::UndoLog);
        w.write(m, at + SLOT_HDR, &old, Category::UndoLog);
        w.ordering_fence(m);
        self.entries.push(at);
        self.cursor = (self.cursor + 1) % self.n_slots;
        self.seq += 1;
    }

    /// Commit: make the metadata (and any caller-pending data) durable,
    /// then flip the descriptor to COMMITTED — the line `begin_op`
    /// wrote, an intra-op self-dependency. Entries stay valid until the
    /// next `begin_op` clears them.
    pub(crate) fn end_op(&mut self, m: &mut Machine, w: &mut PmWriter) {
        w.durability_fence(m);
        w.write_u32(m, self.base + 8, STATUS_COMMITTED, Category::LogMeta);
        w.ordering_fence(m);
    }

    /// Mount-time recovery: roll back an UNCOMMITTED journal, then
    /// clear every valid slot. Returns whether a rollback happened.
    pub(crate) fn recover(&mut self, m: &mut Machine, tid: Tid) -> bool {
        let status = m.load_u32(tid, self.base + 8);
        let mut w = PmWriter::new(tid);
        // Collect every valid slot (the in-flight op's entries).
        let mut valid: Vec<(u64, Addr, Vec<u8>)> = Vec::new();
        let mut max_seq = 0;
        for idx in 0..self.n_slots {
            let at = self.slot_addr(idx);
            if m.load_u32(tid, at) != ENTRY_VALID {
                continue;
            }
            let len = (m.load_u32(tid, at + 4) as usize).min(MAX_OLD);
            let target = m.load_u64(tid, at + 8);
            let seq = m.load_u64(tid, at + 16);
            max_seq = max_seq.max(seq);
            let old = m.load_vec(tid, at + SLOT_HDR, len);
            valid.push((seq, target, old));
        }
        let rolled_back = status == STATUS_UNCOMMITTED && !valid.is_empty();
        if status == STATUS_UNCOMMITTED {
            valid.sort_unstable_by_key(|(seq, _, _)| *seq);
            for (_, target, old) in valid.iter().rev() {
                w.write(m, *target, old, Category::FsMeta);
            }
            w.durability_fence(m);
        }
        for idx in 0..self.n_slots {
            let at = self.slot_addr(idx);
            if m.load_u32(tid, at) == ENTRY_VALID {
                w.write_u32(m, at, 0, Category::LogMeta);
            }
        }
        w.write_u32(m, self.base + 8, STATUS_IDLE, Category::LogMeta);
        w.ordering_fence(m);
        self.entries.clear();
        self.cursor = 0;
        self.seq = max_seq + 1;
        rolled_back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};

    fn setup() -> (Machine, Journal, Addr) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let j = Journal::new(base, 64 * 1024);
        j.format(&mut m, Tid(0));
        (m, j, base + (1 << 20))
    }

    #[test]
    fn committed_op_keeps_new_values() {
        let (mut m, mut j, meta) = setup();
        let tid = Tid(0);
        let mut w = PmWriter::new(tid);
        m.store_u64(tid, meta, 1, Category::FsMeta);
        m.clwb(tid, meta);
        m.sfence(tid);
        j.begin_op(&mut m, &mut w);
        j.log_old(&mut m, &mut w, meta, 8);
        w.write_u64(&mut m, meta, 2, Category::FsMeta);
        j.end_op(&mut m, &mut w);
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut j2 = Journal::new(m2.config().map.pm.base, 64 * 1024);
        assert!(!j2.recover(&mut m2, Tid(0)));
        assert_eq!(m2.load_u64(Tid(0), meta), 2);
    }

    #[test]
    fn uncommitted_op_rolls_back() {
        let (mut m, mut j, meta) = setup();
        let tid = Tid(0);
        let mut w = PmWriter::new(tid);
        m.store_u64(tid, meta, 1, Category::FsMeta);
        m.clwb(tid, meta);
        m.sfence(tid);
        j.begin_op(&mut m, &mut w);
        j.log_old(&mut m, &mut w, meta, 8);
        w.write_u64(&mut m, meta, 2, Category::FsMeta);
        // Crash before end_op with everything in flight persisted.
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut j2 = Journal::new(m2.config().map.pm.base, 64 * 1024);
        assert!(j2.recover(&mut m2, Tid(0)));
        assert_eq!(m2.load_u64(Tid(0), meta), 1, "old value restored");
    }

    #[test]
    fn lazy_clear_does_not_resurrect_committed_op() {
        // Op 1 commits; its entries are still valid. A crash before
        // op 2 must NOT roll op 1 back (status is COMMITTED).
        let (mut m, mut j, meta) = setup();
        let tid = Tid(0);
        let mut w = PmWriter::new(tid);
        m.store_u64(tid, meta, 1, Category::FsMeta);
        m.clwb(tid, meta);
        m.sfence(tid);
        j.begin_op(&mut m, &mut w);
        j.log_old(&mut m, &mut w, meta, 8);
        w.write_u64(&mut m, meta, 2, Category::FsMeta);
        j.end_op(&mut m, &mut w);
        let img = m.crash(CrashSpec::PersistAll);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut j2 = Journal::new(m2.config().map.pm.base, 64 * 1024);
        assert!(!j2.recover(&mut m2, Tid(0)));
        assert_eq!(m2.load_u64(Tid(0), meta), 2);
    }

    #[test]
    fn ring_wraps_and_stays_correct() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        // Tiny ring: 4 slots.
        let mut j = Journal::new(base, 64 + 4 * SLOT_BYTES);
        j.format(&mut m, Tid(0));
        let meta = base + (1 << 20);
        let tid = Tid(0);
        for i in 0..20u64 {
            let mut w = PmWriter::new(tid);
            j.begin_op(&mut m, &mut w);
            j.log_old(&mut m, &mut w, meta, 8);
            w.write_u64(&mut m, meta, i, Category::FsMeta);
            j.end_op(&mut m, &mut w);
        }
        assert_eq!(m.load_u64(tid, meta), 19);
    }

    #[test]
    #[should_panic(expected = "journal slot")]
    fn oversized_range_panics() {
        let (mut m, mut j, meta) = setup();
        let mut w = PmWriter::new(Tid(0));
        j.begin_op(&mut m, &mut w);
        j.log_old(&mut m, &mut w, meta, MAX_OLD + 1);
    }

    #[test]
    fn adversarial_crash_is_all_or_nothing() {
        for seed in 0..30 {
            let (mut m, mut j, meta) = setup();
            let tid = Tid(0);
            let mut w = PmWriter::new(tid);
            m.store_u64(tid, meta, 10, Category::FsMeta);
            m.store_u64(tid, meta + 128, 10, Category::FsMeta);
            m.clwb(tid, meta);
            m.clwb(tid, meta + 128);
            m.sfence(tid);
            j.begin_op(&mut m, &mut w);
            j.log_old(&mut m, &mut w, meta, 8);
            w.write_u64(&mut m, meta, 20, Category::FsMeta);
            j.log_old(&mut m, &mut w, meta + 128, 8);
            w.write_u64(&mut m, meta + 128, 20, Category::FsMeta);
            let img = m.crash(CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let mut j2 = Journal::new(m2.config().map.pm.base, 64 * 1024);
            j2.recover(&mut m2, Tid(0));
            assert_eq!(m2.load_u64(Tid(0), meta), 10, "seed {seed}");
            assert_eq!(m2.load_u64(Tid(0), meta + 128), 10, "seed {seed}");
        }
    }

    #[test]
    fn self_deps_only_on_descriptor_line_within_op() {
        // The ring + lazy clear leave the commit marker as the only
        // same-line rewrite inside an op (vs. the naive design where
        // every clear collides with its append).
        let (mut m, mut j, meta) = setup();
        let tid = Tid(0);
        for i in 0..10u64 {
            let mut w = PmWriter::new(tid);
            j.begin_op(&mut m, &mut w);
            j.log_old(&mut m, &mut w, meta + i * 64, 8);
            w.write_u64(&mut m, meta + i * 64, i, Category::FsMeta);
            j.end_op(&mut m, &mut w);
            m.advance_ns(500_000); // a slow, MySQL-like op rate
        }
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let deps = pmtrace::analysis::dependencies(&epochs);
        assert!(
            deps.self_fraction() < 0.45,
            "paced PMFS ops should have few self-deps, got {}",
            deps.self_fraction()
        );
    }
}
