//! On-"device" layout of the filesystem.

use pmem::{Addr, AddrRange};

pub(crate) const SB_MAGIC: u64 = 0x504d_4653_2121_2121; // "PMFS!!!!"
/// PMFS stores user data in 4 KB blocks (Section 3.1).
pub(crate) const BLOCK_SIZE: u64 = 4096;
/// Bytes reserved per inode. Holds mode, size, and 12 direct + 1
/// indirect block pointer.
pub(crate) const INODE_SIZE: u64 = 192;
pub(crate) const DIRECT_PTRS: u64 = 12;
/// Pointers in an indirect block.
pub(crate) const INDIRECT_PTRS: u64 = BLOCK_SIZE / 8;
/// Maximum file size: 12 direct + 512 indirect blocks.
pub(crate) const MAX_FILE: u64 = (DIRECT_PTRS + INDIRECT_PTRS) * BLOCK_SIZE;
/// A directory entry: inode u32, name_len u32, name[56].
pub(crate) const DENT_SIZE: u64 = 64;
pub(crate) const MAX_NAME: usize = 55;

// Inode field offsets.
pub(crate) const I_MODE: u64 = 0; // u32: 0 free, 1 file, 2 dir
pub(crate) const I_SIZE: u64 = 8; // u64 bytes
pub(crate) const I_MTIME: u64 = 16; // u64 simulated ns
pub(crate) const I_DIRECT: u64 = 24; // 12 × u64 block numbers (0 = hole)
pub(crate) const I_INDIRECT: u64 = 24 + DIRECT_PTRS * 8; // u64 block number

pub(crate) const MODE_FREE: u32 = 0;
pub(crate) const MODE_FILE: u32 = 1;
pub(crate) const MODE_DIR: u32 = 2;

/// Root directory inode number.
pub(crate) const ROOT_INO: u32 = 1;

/// Formatting parameters for [`crate::Pmfs::mkfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmfsConfig {
    /// Number of 4 KB data blocks.
    pub data_blocks: u64,
    /// Number of inodes.
    pub inodes: u32,
    /// Bytes reserved for the metadata undo journal.
    pub journal_bytes: u64,
}

impl Default for PmfsConfig {
    /// 8192 blocks (32 MB of data), 1024 inodes, 64 KB journal.
    fn default() -> Self {
        PmfsConfig {
            data_blocks: 8192,
            inodes: 1024,
            journal_bytes: 64 * 1024,
        }
    }
}

/// Computed byte offsets of each on-device area.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    pub(crate) base: Addr,
    pub(crate) journal: Addr,
    pub(crate) journal_bytes: u64,
    pub(crate) block_bitmap: Addr,
    pub(crate) inode_table: Addr,
    pub(crate) data: Addr,
    pub(crate) data_blocks: u64,
    pub(crate) inodes: u32,
}

impl Layout {
    pub(crate) fn compute(region: AddrRange, cfg: PmfsConfig) -> Layout {
        let align = |a: Addr| a.div_ceil(64) * 64;
        let journal = align(region.base + 64);
        let block_bitmap = align(journal + cfg.journal_bytes);
        let bitmap_bytes = cfg.data_blocks.div_ceil(8);
        let inode_table = align(block_bitmap + bitmap_bytes);
        let data = (inode_table + cfg.inodes as u64 * INODE_SIZE).div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        let layout = Layout {
            base: region.base,
            journal,
            journal_bytes: cfg.journal_bytes,
            block_bitmap,
            inode_table,
            data,
            data_blocks: cfg.data_blocks,
            inodes: cfg.inodes,
        };
        assert!(
            layout.data + cfg.data_blocks * BLOCK_SIZE <= region.end(),
            "region too small: need {} bytes",
            layout.data + cfg.data_blocks * BLOCK_SIZE - region.base
        );
        layout
    }

    pub(crate) fn inode_addr(&self, ino: u32) -> Addr {
        assert!(ino >= 1 && ino <= self.inodes, "inode {ino} out of range");
        self.inode_table + (ino as u64 - 1) * INODE_SIZE
    }

    pub(crate) fn block_addr(&self, block: u64) -> Addr {
        assert!(
            block >= 1 && block <= self.data_blocks,
            "block {block} out of range"
        );
        self.data + (block - 1) * BLOCK_SIZE
    }

    pub(crate) fn bitmap_byte_addr(&self, block: u64) -> Addr {
        self.block_bitmap + (block - 1) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_areas_do_not_overlap() {
        let region = AddrRange::new(4 << 30, 64 << 20);
        let l = Layout::compute(region, PmfsConfig::default());
        assert!(l.journal > l.base);
        assert!(l.block_bitmap >= l.journal + 64 * 1024);
        assert!(l.inode_table >= l.block_bitmap + 1024);
        assert!(l.data >= l.inode_table + 1024 * INODE_SIZE);
        assert_eq!(l.data % BLOCK_SIZE, 0);
    }

    #[test]
    fn inode_and_block_addressing() {
        let region = AddrRange::new(4 << 30, 64 << 20);
        let l = Layout::compute(region, PmfsConfig::default());
        assert_eq!(l.inode_addr(1), l.inode_table);
        assert_eq!(l.inode_addr(2), l.inode_table + INODE_SIZE);
        assert_eq!(l.block_addr(1), l.data);
        assert_eq!(l.block_addr(2), l.data + BLOCK_SIZE);
        assert_eq!(l.bitmap_byte_addr(1), l.block_bitmap);
        assert_eq!(l.bitmap_byte_addr(9), l.block_bitmap + 1);
    }

    #[test]
    #[should_panic(expected = "region too small")]
    fn too_small_region_panics() {
        Layout::compute(AddrRange::new(4 << 30, 1 << 20), PmfsConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inode_zero_is_invalid() {
        let l = Layout::compute(AddrRange::new(4 << 30, 64 << 20), PmfsConfig::default());
        l.inode_addr(0);
    }

    #[test]
    fn max_file_is_over_2mb() {
        assert_eq!(MAX_FILE, (12 + 512) * 4096);
    }
}
