//! Property tests shared by all three allocator designs.

use memsim::{CrashSpec, Machine, MachineConfig, PmWriter};
use miniprop::prelude::*;
use pmalloc::{BuddyAlloc, PmAllocator, SingleHeapAlloc, SlabBitmapAlloc};
use pmem::AddrRange;
use pmtrace::Tid;
use std::collections::BTreeMap;

const TID: Tid = Tid(0);

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc {
        size: u64,
    },
    /// Free the i-th oldest live block (modulo live count).
    Free {
        victim: usize,
    },
}

fn ops() -> impl Strategy<Value = Vec<AllocOp>> {
    collection::vec(
        prop_oneof![
            (1u64..3000).prop_map(|size| AllocOp::Alloc { size }),
            (0usize..64).prop_map(|victim| AllocOp::Free { victim }),
        ],
        1..60,
    )
}

/// Drive an allocator through a random sequence, asserting the
/// fundamental invariants after every step: returned blocks never
/// overlap a live block, stay in the region, and the byte accounting
/// never goes negative or leaks on balanced workloads.
fn drive<A: PmAllocator>(m: &mut Machine, a: &mut A, script: &[AllocOp]) {
    let mut w = PmWriter::new(TID);
    // live: addr -> requested size
    let mut live: BTreeMap<u64, u64> = BTreeMap::new();
    for op in script {
        match op {
            AllocOp::Alloc { size } => {
                match a.alloc(m, &mut w, *size) {
                    Ok(p) => {
                        assert!(
                            a.region().contains_span(p, *size as usize),
                            "block outside region"
                        );
                        // No overlap with any live block (checking the
                        // requested extents).
                        for (&q, &qs) in &live {
                            let disjoint = p + size <= q || q + qs <= p;
                            assert!(disjoint, "{p:#x}+{size} overlaps {q:#x}+{qs}");
                        }
                        live.insert(p, *size);
                    }
                    Err(_) => { /* OOM/BadSize are legal responses */ }
                }
            }
            AllocOp::Free { victim } => {
                if live.is_empty() {
                    continue;
                }
                let k = *live.keys().nth(victim % live.len()).expect("nonempty");
                live.remove(&k);
                a.free(m, &mut w, k).expect("freeing a live block succeeds");
            }
        }
        assert!(a.allocated_bytes() as i128 >= 0, "accounting went negative");
    }
    // Free everything: accounting returns to zero.
    for (&p, _) in live.clone().iter() {
        a.free(m, &mut w, p).expect("final free");
    }
    assert_eq!(a.allocated_bytes(), 0, "leak after freeing all blocks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn slab_invariants(script in ops()) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let mut w = PmWriter::new(TID);
        let mut a = SlabBitmapAlloc::format(&mut m, &mut w, AddrRange::new(base, 32 << 20));
        drive(&mut m, &mut a, &script);
    }

    #[test]
    fn single_heap_invariants(script in ops()) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let mut w = PmWriter::new(TID);
        let mut a = SingleHeapAlloc::format(&mut m, &mut w, AddrRange::new(base, 32 << 20));
        drive(&mut m, &mut a, &script);
    }

    #[test]
    fn buddy_invariants(script in ops()) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let mut w = PmWriter::new(TID);
        let mut a = BuddyAlloc::format(&mut m, &mut w, AddrRange::new(base, 32 << 20));
        drive(&mut m, &mut a, &script);
    }

    /// Slab recovery after a clean crash reproduces exactly the durable
    /// allocation state.
    #[test]
    fn slab_recovery_equivalence(script in ops()) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let region = AddrRange::new(base, 32 << 20);
        let mut w = PmWriter::new(TID);
        let mut a = SlabBitmapAlloc::format(&mut m, &mut w, region);
        let mut live: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &script {
            match op {
                AllocOp::Alloc { size } => {
                    if let Ok(p) = a.alloc(&mut m, &mut w, *size) {
                        live.insert(p, *size);
                    }
                }
                AllocOp::Free { victim } => {
                    if !live.is_empty() {
                        let k = *live.keys().nth(victim % live.len()).expect("nonempty");
                        live.remove(&k);
                        a.free(&mut m, &mut w, k).expect("free");
                    }
                }
            }
        }
        let before = a.allocated_bytes();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let a2 = SlabBitmapAlloc::recover(&mut m2, TID, region);
        prop_assert_eq!(a2.allocated_bytes(), before);
        // Every live block is reported leaked when nothing claims it,
        // and not leaked when claimed.
        let leaked = a2.leaked_blocks(|addr| live.contains_key(&addr));
        prop_assert!(leaked.is_empty(), "live blocks misreported as leaked: {:?}", leaked);
    }
}
