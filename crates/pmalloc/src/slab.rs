//! Mnemosyne-style multi-slab bitmap allocator.

use crate::{AllocError, AllocStats, PmAllocator};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const MAGIC: u64 = 0x534c_4142_4d41_5021; // "SLABMAP!"
const MAX_SLABS: u64 = 256;
const SLAB_BYTES: u64 = 64 * 1024;
const BITMAP_BYTES: u64 = 256; // 2048 blocks max per slab
const DIR_ENTRY_BYTES: u64 = 8; // class_size u32 + used u32
const HEADER_BYTES: u64 = 64 + MAX_SLABS * DIR_ENTRY_BYTES;

/// The size classes, matching a multiple-slab allocator "with multiple
/// slabs for different allocation sizes, as in Mnemosyne and NVML"
/// (Section 5.2).
pub(crate) const CLASSES: [u64; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

#[derive(Debug, Clone)]
struct SlabState {
    class: u64,
    /// Volatile mirror of the persistent bitmap (bit set = allocated).
    bitmap: Vec<u8>,
    free_blocks: u32,
}

/// Mnemosyne-style persistent allocator: slabs of power-of-two size
/// classes with a persistent allocation bitmap per slab and volatile
/// indexes for speed.
///
/// "Allocators with multiple slabs for different allocation sizes ...
/// store a bitmap of allocated blocks and use volatile structures to
/// speed allocation. Mnemosyne's allocator can leak memory if a power
/// failure occurs during a transaction, but does not create more
/// epochs." (Section 5.2.) Accordingly, `alloc` persists exactly one
/// small bitmap update in its own epoch — the singleton, <10 B epochs
/// the paper traces back to allocators — and makes no attempt at
/// atomicity with the enclosing transaction: a crash between the bitmap
/// update and the transaction commit leaks the block, and
/// [`SlabBitmapAlloc::leaked_blocks`] implements the garbage-collection
/// sweep the paper suggests as the remedy (Consequence 8).
///
/// Blocks are aligned to their size class.
#[derive(Debug, Clone)]
pub struct SlabBitmapAlloc {
    region: AddrRange,
    slabs: Vec<SlabState>,
    /// Per-class list of slab indices that have free blocks.
    nonfull: Vec<Vec<usize>>,
    allocated_bytes: u64,
    stats: AllocStats,
}

impl SlabBitmapAlloc {
    fn class_index(size: u64) -> Result<usize, AllocError> {
        if size == 0 {
            return Err(AllocError::BadSize { requested: 0 });
        }
        CLASSES
            .iter()
            .position(|&c| c >= size)
            .ok_or(AllocError::BadSize { requested: size })
    }

    fn blocks_per_slab(class: u64) -> u32 {
        let payload = SLAB_BYTES - BITMAP_BYTES;
        ((payload / class) as u32).min((BITMAP_BYTES * 8) as u32)
    }

    fn slab_base(&self, idx: usize) -> Addr {
        self.region.base + HEADER_BYTES + idx as u64 * SLAB_BYTES
    }

    fn dir_entry_addr(&self, idx: usize) -> Addr {
        self.region.base + 64 + idx as u64 * DIR_ENTRY_BYTES
    }

    fn block_addr(&self, slab_idx: usize, block: u32) -> Addr {
        let s = &self.slabs[slab_idx];
        self.slab_base(slab_idx) + BITMAP_BYTES + block as u64 * s.class
    }

    /// Format a fresh allocator over `region` (must be in PM and large
    /// enough for the directory plus at least one slab).
    ///
    /// # Panics
    ///
    /// Panics if the region is too small.
    pub fn format(m: &mut Machine, w: &mut PmWriter, region: AddrRange) -> SlabBitmapAlloc {
        assert!(
            region.len >= HEADER_BYTES + SLAB_BYTES,
            "region too small for slab allocator: {} bytes",
            region.len
        );
        w.write_u64(m, region.base, MAGIC, Category::AllocMeta);
        // Zero the directory so recovery sees no slabs.
        w.write(
            m,
            region.base + 64,
            &vec![0u8; (MAX_SLABS * DIR_ENTRY_BYTES) as usize],
            Category::AllocMeta,
        );
        w.ordering_fence(m);
        SlabBitmapAlloc {
            region,
            slabs: Vec::new(),
            nonfull: vec![Vec::new(); CLASSES.len()],
            allocated_bytes: 0,
            stats: AllocStats::default(),
        }
    }

    /// Rebuild the allocator after a crash by scanning the persistent
    /// directory and bitmaps (Mnemosyne rebuilds its volatile indexes
    /// the same way).
    ///
    /// # Panics
    ///
    /// Panics if `region` does not hold a formatted allocator.
    pub fn recover(m: &mut Machine, tid: Tid, region: AddrRange) -> SlabBitmapAlloc {
        let magic = m.load_u64(tid, region.base);
        assert_eq!(magic, MAGIC, "no slab allocator at {:#x}", region.base);
        let mut a = SlabBitmapAlloc {
            region,
            slabs: Vec::new(),
            nonfull: vec![Vec::new(); CLASSES.len()],
            allocated_bytes: 0,
            stats: AllocStats::default(),
        };
        for idx in 0..MAX_SLABS as usize {
            let entry = a.dir_entry_addr(idx);
            let class = m.load_u32(tid, entry) as u64;
            let used = m.load_u32(tid, entry + 4);
            if used == 0 {
                break; // slabs are claimed densely
            }
            let bitmap = m.load_vec(tid, a.slab_base(idx), BITMAP_BYTES as usize);
            let blocks = Self::blocks_per_slab(class);
            let mut free = 0;
            let mut used_blocks = 0u64;
            for b in 0..blocks {
                if bitmap[(b / 8) as usize] & (1 << (b % 8)) == 0 {
                    free += 1;
                } else {
                    used_blocks += 1;
                }
            }
            a.allocated_bytes += used_blocks * class;
            let ci = Self::class_index(class).expect("valid persisted class");
            if free > 0 {
                a.nonfull[ci].push(idx);
            }
            a.slabs.push(SlabState {
                class,
                bitmap,
                free_blocks: free,
            });
        }
        a
    }

    fn grow(&mut self, m: &mut Machine, w: &mut PmWriter, ci: usize) -> Result<usize, AllocError> {
        let idx = self.slabs.len();
        let class = CLASSES[ci];
        if idx as u64 >= MAX_SLABS || self.slab_base(idx) + SLAB_BYTES > self.region.end() {
            return Err(AllocError::OutOfMemory { requested: class });
        }
        // Persist the directory claim; the bitmap area is zero (all
        // free) by formatting invariant.
        let entry = self.dir_entry_addr(idx);
        w.write_u32(m, entry, class as u32, Category::AllocMeta);
        w.write_u32(m, entry + 4, 1, Category::AllocMeta);
        // Zero the bitmap persistently in case the region is recycled.
        w.write(
            m,
            self.slab_base(idx),
            &[0u8; BITMAP_BYTES as usize],
            Category::AllocMeta,
        );
        w.ordering_fence(m);
        self.slabs.push(SlabState {
            class,
            bitmap: vec![0; BITMAP_BYTES as usize],
            free_blocks: Self::blocks_per_slab(class),
        });
        self.nonfull[ci].push(idx);
        Ok(idx)
    }

    fn locate(&self, addr: Addr) -> Option<(usize, u32)> {
        if addr < self.region.base + HEADER_BYTES {
            return None;
        }
        let off = addr - self.region.base - HEADER_BYTES;
        let slab_idx = (off / SLAB_BYTES) as usize;
        if slab_idx >= self.slabs.len() {
            return None;
        }
        let s = &self.slabs[slab_idx];
        let inner = off % SLAB_BYTES;
        if inner < BITMAP_BYTES {
            return None;
        }
        let rel = inner - BITMAP_BYTES;
        if !rel.is_multiple_of(s.class) {
            return None;
        }
        let block = (rel / s.class) as u32;
        if block >= Self::blocks_per_slab(s.class) {
            return None;
        }
        Some((slab_idx, block))
    }

    /// Blocks whose bitmap bit is set but that `is_live` does not
    /// recognize — leaked by a crash mid-transaction. The caller can
    /// free them, implementing the paper's suggested GC pass.
    pub fn leaked_blocks(&self, is_live: impl Fn(Addr) -> bool) -> Vec<Addr> {
        let mut leaked = Vec::new();
        for (idx, s) in self.slabs.iter().enumerate() {
            for b in 0..Self::blocks_per_slab(s.class) {
                if s.bitmap[(b / 8) as usize] & (1 << (b % 8)) != 0 {
                    let addr = self.block_addr(idx, b);
                    if !is_live(addr) {
                        leaked.push(addr);
                    }
                }
            }
        }
        leaked
    }

    /// Allocation/free/split/merge counters.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Free every leaked block (allocated in the bitmap but not
    /// recognized by `is_live`) — the garbage-collection sweep the
    /// paper suggests to make leak-on-crash allocation safe
    /// (Consequence 8, citing Makalu-style GC). Returns the number of
    /// blocks reclaimed.
    pub fn reclaim_leaked(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        is_live: impl Fn(Addr) -> bool,
    ) -> usize {
        let leaked = self.leaked_blocks(is_live);
        let n = leaked.len();
        for addr in leaked {
            self.free(m, w, addr).expect("leaked block is allocated");
        }
        n
    }
}

impl PmAllocator for SlabBitmapAlloc {
    fn alloc(&mut self, m: &mut Machine, w: &mut PmWriter, size: u64) -> Result<Addr, AllocError> {
        let ci = Self::class_index(size)?;
        let slab_idx = loop {
            match self.nonfull[ci].last() {
                Some(&idx) => break idx,
                None => {
                    self.grow(m, w, ci)?;
                }
            }
        };
        let blocks = Self::blocks_per_slab(CLASSES[ci]);
        let s = &mut self.slabs[slab_idx];
        let block = (0..blocks)
            .find(|b| s.bitmap[(b / 8) as usize] & (1 << (b % 8)) == 0)
            .expect("nonfull slab has a free block");
        s.bitmap[(block / 8) as usize] |= 1 << (block % 8);
        s.free_blocks -= 1;
        if s.free_blocks == 0 {
            self.nonfull[ci].retain(|&i| i != slab_idx);
        }
        let byte = self.slabs[slab_idx].bitmap[(block / 8) as usize];
        // The persistent metadata update: one byte, own epoch.
        let bm_addr = self.slab_base(slab_idx) + (block / 8) as u64;
        w.write(m, bm_addr, &[byte], Category::AllocMeta);
        w.ordering_fence(m);
        self.allocated_bytes += CLASSES[ci];
        self.stats.allocs += 1;
        Ok(self.block_addr(slab_idx, block))
    }

    fn free(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr) -> Result<(), AllocError> {
        let (slab_idx, block) = self.locate(addr).ok_or(AllocError::InvalidFree { addr })?;
        let s = &mut self.slabs[slab_idx];
        let mask = 1u8 << (block % 8);
        if s.bitmap[(block / 8) as usize] & mask == 0 {
            return Err(AllocError::InvalidFree { addr });
        }
        s.bitmap[(block / 8) as usize] &= !mask;
        s.free_blocks += 1;
        let class = s.class;
        let byte = s.bitmap[(block / 8) as usize];
        let ci = Self::class_index(class).expect("valid class");
        if !self.nonfull[ci].contains(&slab_idx) {
            self.nonfull[ci].push(slab_idx);
        }
        let bm_addr = self.slab_base(slab_idx) + (block / 8) as u64;
        w.write(m, bm_addr, &[byte], Category::AllocMeta);
        w.ordering_fence(m);
        self.allocated_bytes -= class;
        self.stats.frees += 1;
        Ok(())
    }

    fn region(&self) -> AddrRange {
        self.region
    }

    fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;

    fn setup() -> (Machine, PmWriter, SlabBitmapAlloc) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        let a = SlabBitmapAlloc::format(&mut m, &mut w, AddrRange::new(base, 4 << 20));
        (m, w, a)
    }

    #[test]
    fn alloc_returns_class_aligned_distinct_blocks() {
        let (mut m, mut w, mut a) = setup();
        let p1 = a.alloc(&mut m, &mut w, 40).unwrap(); // class 64
        let p2 = a.alloc(&mut m, &mut w, 40).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(p1 % 64, 0);
        assert_eq!(a.allocated_bytes(), 128);
    }

    #[test]
    fn free_then_realloc_reuses() {
        let (mut m, mut w, mut a) = setup();
        let p1 = a.alloc(&mut m, &mut w, 64).unwrap();
        a.free(&mut m, &mut w, p1).unwrap();
        let p2 = a.alloc(&mut m, &mut w, 64).unwrap();
        assert_eq!(p1, p2, "LIFO-ish reuse causes the paper's dependencies");
        assert_eq!(a.allocated_bytes(), 64);
    }

    #[test]
    fn zero_and_oversize_rejected() {
        let (mut m, mut w, mut a) = setup();
        assert_eq!(
            a.alloc(&mut m, &mut w, 0),
            Err(AllocError::BadSize { requested: 0 })
        );
        assert!(matches!(
            a.alloc(&mut m, &mut w, 8192),
            Err(AllocError::BadSize { .. })
        ));
    }

    #[test]
    fn invalid_free_rejected() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        assert!(a.free(&mut m, &mut w, p + 1).is_err());
        a.free(&mut m, &mut w, p).unwrap();
        assert!(a.free(&mut m, &mut w, p).is_err(), "double free rejected");
    }

    #[test]
    fn different_classes_use_different_slabs() {
        let (mut m, mut w, mut a) = setup();
        let small = a.alloc(&mut m, &mut w, 16).unwrap();
        let big = a.alloc(&mut m, &mut w, 4096).unwrap();
        assert_ne!(small / SLAB_BYTES, big / SLAB_BYTES);
        assert_eq!(big % 4096 % 64, 0);
    }

    #[test]
    fn metadata_epochs_are_small_singletons() {
        let (mut m, mut w, mut a) = setup();
        a.alloc(&mut m, &mut w, 64).unwrap(); // warm: creates the slab
        let before = pmtrace::analysis::split_epochs(m.trace().events()).len();
        a.alloc(&mut m, &mut w, 64).unwrap();
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let new: Vec<_> = epochs[before..].iter().collect();
        assert_eq!(new.len(), 1, "one epoch per alloc");
        assert!(new[0].is_singleton());
        assert!(new[0].bytes < 10, "bitmap update is a few bytes");
        assert_eq!(new[0].cat_bytes(Category::AllocMeta), new[0].bytes);
    }

    #[test]
    fn recover_after_clean_persist_sees_allocations() {
        let (mut m, mut w, mut a) = setup();
        let region = a.region();
        let p1 = a.alloc(&mut m, &mut w, 64).unwrap();
        let _p2 = a.alloc(&mut m, &mut w, 64).unwrap();
        a.free(&mut m, &mut w, p1).unwrap();
        let img = m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut w2 = PmWriter::new(Tid(0));
        let mut a2 = SlabBitmapAlloc::recover(&mut m2, Tid(0), region);
        assert_eq!(a2.allocated_bytes(), 64);
        // p1 was freed durably; it is allocatable again.
        let p3 = a2.alloc(&mut m2, &mut w2, 64).unwrap();
        assert_eq!(p3, p1);
    }

    #[test]
    fn leaked_blocks_found_by_gc() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        let leaked = a.leaked_blocks(|_| false);
        assert_eq!(leaked, vec![p]);
        assert!(a.leaked_blocks(|addr| addr == p).is_empty());
    }

    #[test]
    fn gc_reclaims_crash_leaked_blocks() {
        let (mut m, mut w, mut a) = setup();
        let region = a.region();
        let live = a.alloc(&mut m, &mut w, 64).unwrap();
        let _leaked = a.alloc(&mut m, &mut w, 64).unwrap(); // never linked
                                                            // Crash and recover: the bitmap says two blocks are allocated.
        let img = m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut a2 = SlabBitmapAlloc::recover(&mut m2, Tid(0), region);
        assert_eq!(a2.allocated_bytes(), 128);
        let mut w2 = PmWriter::new(Tid(0));
        let reclaimed = a2.reclaim_leaked(&mut m2, &mut w2, |addr| addr == live);
        assert_eq!(reclaimed, 1);
        assert_eq!(a2.allocated_bytes(), 64, "only the live block remains");
    }

    #[test]
    fn slab_exhaustion_grows_new_slab() {
        let (mut m, mut w, mut a) = setup();
        let per_slab = SlabBitmapAlloc::blocks_per_slab(4096);
        let mut ptrs = Vec::new();
        for _ in 0..per_slab + 1 {
            ptrs.push(a.alloc(&mut m, &mut w, 4096).unwrap());
        }
        let slabs_used: std::collections::HashSet<u64> = ptrs
            .iter()
            .map(|p| (p - a.region().base - HEADER_BYTES) / SLAB_BYTES)
            .collect();
        assert_eq!(slabs_used.len(), 2);
    }

    #[test]
    fn out_of_memory_when_region_full() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        // Room for the header and exactly one slab.
        let mut a = SlabBitmapAlloc::format(
            &mut m,
            &mut w,
            AddrRange::new(base, HEADER_BYTES + SLAB_BYTES),
        );
        let per_slab = SlabBitmapAlloc::blocks_per_slab(4096);
        for _ in 0..per_slab {
            a.alloc(&mut m, &mut w, 4096).unwrap();
        }
        assert!(matches!(
            a.alloc(&mut m, &mut w, 4096),
            Err(AllocError::OutOfMemory { .. })
        ));
    }
}
