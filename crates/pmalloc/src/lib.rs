//! Persistent-memory allocators for the WHISPER reproduction.
//!
//! Section 5.2 of the paper finds that "persistent memory allocators
//! have an unexpectedly large impact on behavior": they are invoked
//! inside transactions, their metadata writes are the dominant cause of
//! small (singleton, <10 B) epochs, and their block-recycling causes
//! self- and cross-thread dependencies. This crate implements the three
//! allocator designs the paper analyzes:
//!
//! * [`SlabBitmapAlloc`] — Mnemosyne-style: multiple slabs per size
//!   class, a persistent bitmap of allocated blocks, volatile structures
//!   to speed allocation. Can leak blocks on a crash mid-transaction
//!   (which the paper notes avoids extra logging epochs).
//! * [`SingleHeapAlloc`] — N-store/Echo-style: one heap for all sizes
//!   with "frequent splits and coalescing of blocks, each requiring a
//!   persistent metadata write", plus the FREE/VOLATILE/PERSISTENT
//!   block-state variable whose triple writes cause self-dependencies.
//! * [`BuddyAlloc`] — the buddy system behind N-store's 200–1400 %
//!   write amplification.
//!
//! All metadata writes go through the instrumented machine tagged
//! [`pmtrace::Category::AllocMeta`], so the trace analysis attributes
//! them exactly as the paper does. Each allocator persists its metadata
//! in its own epoch (a `clwb; sfence` after the metadata store), which
//! is what makes allocator traffic visible as singleton epochs.
//!
//! # Example
//!
//! ```
//! use memsim::{Machine, MachineConfig, PmWriter};
//! use pmalloc::{PmAllocator, SlabBitmapAlloc};
//! use pmem::AddrRange;
//! use pmtrace::Tid;
//!
//! let mut m = Machine::new(MachineConfig::asplos17());
//! let pm = m.config().map.pm;
//! let mut w = PmWriter::new(Tid(0));
//! let mut a = SlabBitmapAlloc::format(&mut m, &mut w, AddrRange::new(pm.base, 1 << 20));
//! let p = a.alloc(&mut m, &mut w, 48).unwrap();
//! a.free(&mut m, &mut w, p).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod sharded;
mod single_heap;
mod slab;

pub use buddy::BuddyAlloc;
pub use sharded::ShardedSlab;
pub use single_heap::{BlockState, SingleHeapAlloc};
pub use slab::SlabBitmapAlloc;

use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};

/// Errors returned by persistent allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The region cannot satisfy the request.
    OutOfMemory {
        /// The size that could not be satisfied.
        requested: u64,
    },
    /// `free`/`set_state` of an address this allocator does not consider
    /// an allocated block.
    InvalidFree {
        /// The offending address.
        addr: Addr,
    },
    /// A request for zero bytes or a size above the allocator's limit.
    BadSize {
        /// The offending size.
        requested: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(
                    f,
                    "persistent region exhausted for {requested}-byte request"
                )
            }
            AllocError::InvalidFree { addr } => {
                write!(f, "free of unallocated address {addr:#x}")
            }
            AllocError::BadSize { requested } => {
                write!(f, "unsupported allocation size {requested}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Common interface of the three persistent allocators.
///
/// Allocators take the machine and the caller's [`PmWriter`] because
/// their metadata updates execute on the caller's thread, inside the
/// caller's transaction — exactly how the paper's applications invoke
/// them.
pub trait PmAllocator {
    /// Allocate `size` bytes of PM. The returned block is 64 B-aligned.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadSize`] for zero or oversized requests,
    /// [`AllocError::OutOfMemory`] when the region is exhausted.
    fn alloc(&mut self, m: &mut Machine, w: &mut PmWriter, size: u64) -> Result<Addr, AllocError>;

    /// Release a block previously returned by `alloc`.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `addr` is not an allocated block.
    fn free(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr) -> Result<(), AllocError>;

    /// The PM range this allocator manages.
    fn region(&self) -> AddrRange;

    /// Bytes currently allocated (payload, not metadata).
    fn allocated_bytes(&self) -> u64;
}

/// Statistics shared by allocator implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Block splits (single-heap / buddy).
    pub splits: u64,
    /// Block coalesces/merges.
    pub merges: u64,
}
