//! Buddy-system allocator (N-store's high-write-amplification variant).

use crate::{AllocError, AllocStats, PmAllocator};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const MAGIC: u64 = 0x4255_4444_5948_4550; // "BUDDYHEP"
const MIN_ORDER_BYTES: u64 = 64;
const ALLOCATED: u8 = 0x80;
const ORDER_MASK: u8 = 0x7f;

/// A persistent buddy allocator over power-of-two blocks (64 B minimum).
///
/// N-store's write amplification "varies between 200% and 1400% ...
/// largely due to its PM allocator that uses a buddy system"
/// (Section 5.2): every split and merge persists per-block metadata, so
/// small allocations from a large free block generate a cascade of
/// metadata epochs. This implementation keeps one metadata byte per
/// minimum-sized block (`order | allocated-bit`), persisted on every
/// split, merge, allocation, and free.
///
/// The metadata array is walkable after a crash at any epoch boundary:
/// the recovery scan trusts each block-start byte and skips the block it
/// describes, so stale interior bytes are harmless.
#[derive(Debug, Clone)]
pub struct BuddyAlloc {
    region: AddrRange,
    payload_base: Addr,
    n_min_blocks: u64,
    max_order: u8,
    /// Volatile mirror of the metadata bytes.
    meta: Vec<u8>,
    /// Volatile free lists per order (indices of min-blocks).
    free: Vec<Vec<u64>>,
    allocated_bytes: u64,
    stats: AllocStats,
}

impl BuddyAlloc {
    fn meta_addr(&self, idx: u64) -> Addr {
        self.region.base + 64 + idx
    }

    fn block_addr(&self, idx: u64) -> Addr {
        self.payload_base + idx * MIN_ORDER_BYTES
    }

    fn idx_of(&self, addr: Addr) -> Option<u64> {
        if addr < self.payload_base {
            return None;
        }
        let off = addr - self.payload_base;
        if !off.is_multiple_of(MIN_ORDER_BYTES) {
            return None;
        }
        let idx = off / MIN_ORDER_BYTES;
        (idx < self.n_min_blocks).then_some(idx)
    }

    fn layout(region: AddrRange) -> (Addr, u64, u8) {
        // Solve for the largest power-of-two payload that fits after the
        // 64 B header plus one metadata byte per min block.
        let mut order: u8 = 0;
        while order < 63 {
            let next_blocks = 1u64 << (order + 1);
            let need = 64 + next_blocks + next_blocks * MIN_ORDER_BYTES;
            if need > region.len {
                break;
            }
            order += 1;
        }
        let blocks = 1u64 << order;
        assert!(
            64 + blocks + blocks * MIN_ORDER_BYTES <= region.len && order > 0,
            "region too small for buddy allocator"
        );
        let meta_end = region.base + 64 + blocks;
        let payload = meta_end.div_ceil(MIN_ORDER_BYTES) * MIN_ORDER_BYTES;
        (payload, blocks, order)
    }

    /// Format a fresh buddy heap over `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold at least two minimum blocks.
    pub fn format(m: &mut Machine, w: &mut PmWriter, region: AddrRange) -> BuddyAlloc {
        let (payload_base, n_min_blocks, max_order) = Self::layout(region);
        w.write_u64(m, region.base, MAGIC, Category::AllocMeta);
        // Zero the metadata array; then stamp the root block's order.
        w.write(
            m,
            region.base + 64,
            &vec![0u8; n_min_blocks as usize],
            Category::AllocMeta,
        );
        w.ordering_fence(m);
        let mut a = BuddyAlloc {
            region,
            payload_base,
            n_min_blocks,
            max_order,
            meta: vec![0; n_min_blocks as usize],
            free: vec![Vec::new(); max_order as usize + 1],
            allocated_bytes: 0,
            stats: AllocStats::default(),
        };
        a.set_meta(m, w, 0, max_order, false);
        w.ordering_fence(m);
        a.free[max_order as usize].push(0);
        a
    }

    /// Rebuild after a crash by scanning the metadata bytes.
    ///
    /// # Panics
    ///
    /// Panics if `region` does not hold a formatted buddy heap.
    pub fn recover(m: &mut Machine, tid: Tid, region: AddrRange) -> BuddyAlloc {
        let magic = m.load_u64(tid, region.base);
        assert_eq!(magic, MAGIC, "no buddy allocator at {:#x}", region.base);
        let (payload_base, n_min_blocks, max_order) = Self::layout(region);
        let meta = m.load_vec(tid, region.base + 64, n_min_blocks as usize);
        let mut a = BuddyAlloc {
            region,
            payload_base,
            n_min_blocks,
            max_order,
            meta,
            free: vec![Vec::new(); max_order as usize + 1],
            allocated_bytes: 0,
            stats: AllocStats::default(),
        };
        let mut idx = 0u64;
        while idx < a.n_min_blocks {
            let byte = a.meta[idx as usize];
            let mut order = byte & ORDER_MASK;
            // Defensive: an order must respect alignment and bounds;
            // stale interior bytes collapse to order 0.
            if order > a.max_order
                || !idx.is_multiple_of(1 << order)
                || idx + (1 << order) > a.n_min_blocks
            {
                order = 0;
                a.meta[idx as usize] = 0;
            }
            let allocated = byte & ALLOCATED != 0 && (byte & ORDER_MASK) == order;
            if allocated {
                a.allocated_bytes += (1u64 << order) * MIN_ORDER_BYTES;
            } else {
                a.free[order as usize].push(idx);
            }
            idx += 1 << order;
        }
        a
    }

    fn set_meta(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        idx: u64,
        order: u8,
        allocated: bool,
    ) {
        let byte = order | if allocated { ALLOCATED } else { 0 };
        self.meta[idx as usize] = byte;
        w.write(m, self.meta_addr(idx), &[byte], Category::AllocMeta);
    }

    fn order_for(size: u64) -> Result<u8, AllocError> {
        if size == 0 {
            return Err(AllocError::BadSize { requested: 0 });
        }
        let blocks = size.div_ceil(MIN_ORDER_BYTES);
        Ok(blocks.next_power_of_two().trailing_zeros() as u8)
    }

    /// Allocation counters.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }
}

impl PmAllocator for BuddyAlloc {
    fn alloc(&mut self, m: &mut Machine, w: &mut PmWriter, size: u64) -> Result<Addr, AllocError> {
        let want = Self::order_for(size)?;
        if want > self.max_order {
            return Err(AllocError::BadSize { requested: size });
        }
        // Find the smallest order >= want with a free block.
        let have = (want..=self.max_order)
            .find(|&o| !self.free[o as usize].is_empty())
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        let idx = self.free[have as usize].pop().expect("nonempty list");
        let mut order = have;
        // Split down to the wanted order; each split persists both
        // halves' metadata — the buddy amplification cascade.
        while order > want {
            order -= 1;
            let buddy = idx + (1 << order);
            self.set_meta(m, w, idx, order, false);
            self.set_meta(m, w, buddy, order, false);
            w.ordering_fence(m);
            self.free[order as usize].push(buddy);
            self.stats.splits += 1;
        }
        self.set_meta(m, w, idx, want, true);
        w.ordering_fence(m);
        self.allocated_bytes += (1u64 << want) * MIN_ORDER_BYTES;
        self.stats.allocs += 1;
        Ok(self.block_addr(idx))
    }

    fn free(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr) -> Result<(), AllocError> {
        let mut idx = self.idx_of(addr).ok_or(AllocError::InvalidFree { addr })?;
        let byte = self.meta[idx as usize];
        if byte & ALLOCATED == 0 {
            return Err(AllocError::InvalidFree { addr });
        }
        let mut order = byte & ORDER_MASK;
        self.allocated_bytes -= (1u64 << order) * MIN_ORDER_BYTES;
        self.set_meta(m, w, idx, order, false);
        w.ordering_fence(m);
        // Merge with a free buddy — lazily, at most one level per free,
        // so hot size classes keep populated free lists instead of
        // collapsing to the root and re-splitting on the next
        // allocation. Each merge is another persistent metadata epoch.
        let merge_budget = 1;
        let mut merges = 0;
        while order < self.max_order && merges < merge_budget {
            let buddy = idx ^ (1 << order);
            let bbyte = self.meta[buddy as usize];
            let buddy_free = bbyte & ALLOCATED == 0
                && (bbyte & ORDER_MASK) == order
                && self.free[order as usize].contains(&buddy);
            if !buddy_free {
                break;
            }
            self.free[order as usize].retain(|&b| b != buddy);
            let left = idx.min(buddy);
            let right = idx.max(buddy);
            self.set_meta(m, w, right, 0, false); // demote stale start
            self.set_meta(m, w, left, order + 1, false);
            w.ordering_fence(m);
            idx = left;
            order += 1;
            merges += 1;
            self.stats.merges += 1;
        }
        self.free[order as usize].push(idx);
        self.stats.frees += 1;
        Ok(())
    }

    fn region(&self) -> AddrRange {
        self.region
    }

    fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;

    fn setup() -> (Machine, PmWriter, BuddyAlloc) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        let a = BuddyAlloc::format(&mut m, &mut w, AddrRange::new(base, 1 << 20));
        (m, w, a)
    }

    #[test]
    fn order_for_sizes() {
        assert_eq!(BuddyAlloc::order_for(1).unwrap(), 0);
        assert_eq!(BuddyAlloc::order_for(64).unwrap(), 0);
        assert_eq!(BuddyAlloc::order_for(65).unwrap(), 1);
        assert_eq!(BuddyAlloc::order_for(128).unwrap(), 1);
        assert_eq!(BuddyAlloc::order_for(129).unwrap(), 2);
        assert!(BuddyAlloc::order_for(0).is_err());
    }

    #[test]
    fn alloc_free_round_trip() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 100).unwrap(); // order 1 = 128 B
        assert_eq!(p % 64, 0);
        assert_eq!(a.allocated_bytes(), 128);
        a.free(&mut m, &mut w, p).unwrap();
        assert_eq!(a.allocated_bytes(), 0);
    }

    #[test]
    fn split_cascade_amplifies_metadata() {
        let (mut m, mut w, mut a) = setup();
        let max = a.max_order;
        a.alloc(&mut m, &mut w, 64).unwrap();
        // Splitting from the root block down to order 0 takes max_order
        // splits, each a persistent metadata epoch.
        assert_eq!(a.stats().splits, max as u64);
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        assert!(epochs.len() as u64 >= max as u64);
    }

    #[test]
    fn free_merges_lazily_one_level() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        a.free(&mut m, &mut w, p).unwrap();
        // One merge, then the block stays at order 1 feeding reuse.
        assert_eq!(a.stats().merges, 1);
        let p2 = a.alloc(&mut m, &mut w, 64).unwrap();
        assert_eq!(p, p2, "free list reuse without a re-split cascade");
        assert_eq!(a.stats().splits, a.max_order as u64 + 1);
    }

    #[test]
    fn buddies_are_adjacent() {
        let (mut m, mut w, mut a) = setup();
        let p1 = a.alloc(&mut m, &mut w, 64).unwrap();
        let p2 = a.alloc(&mut m, &mut w, 64).unwrap();
        assert_eq!((p1 as i64 - p2 as i64).unsigned_abs(), 64);
    }

    #[test]
    fn invalid_frees_rejected() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        assert!(a.free(&mut m, &mut w, p + 1).is_err());
        assert!(
            a.free(&mut m, &mut w, p + 64).is_err(),
            "free of free block"
        );
        a.free(&mut m, &mut w, p).unwrap();
        assert!(a.free(&mut m, &mut w, p).is_err());
    }

    #[test]
    fn recovery_preserves_allocated_blocks() {
        let (mut m, mut w, mut a) = setup();
        let region = a.region();
        let p1 = a.alloc(&mut m, &mut w, 64).unwrap();
        let p2 = a.alloc(&mut m, &mut w, 256).unwrap();
        a.free(&mut m, &mut w, p1).unwrap();
        let img = m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let a2 = BuddyAlloc::recover(&mut m2, Tid(0), region);
        assert_eq!(a2.allocated_bytes(), 256);
        // p2 still allocated; p1's space free again.
        let mut w2 = PmWriter::new(Tid(0));
        let mut a2 = a2;
        let p3 = a2.alloc(&mut m2, &mut w2, 64).unwrap();
        assert_ne!(p3, p2);
    }

    #[test]
    fn recovery_after_adversarial_crash_is_walkable() {
        for seed in 0..20 {
            let (mut m, mut w, mut a) = setup();
            let region = a.region();
            let mut ptrs = Vec::new();
            for i in 0..8u64 {
                ptrs.push(a.alloc(&mut m, &mut w, 64 * (1 + i % 3)).unwrap());
            }
            for p in ptrs.iter().step_by(2) {
                a.free(&mut m, &mut w, *p).unwrap();
            }
            let img = m.crash(memsim::CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            // Must not panic, and must still serve allocations.
            let mut a2 = BuddyAlloc::recover(&mut m2, Tid(0), region);
            let mut w2 = PmWriter::new(Tid(0));
            assert!(a2.alloc(&mut m2, &mut w2, 64).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn oom_when_exhausted() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        let mut a = BuddyAlloc::format(&mut m, &mut w, AddrRange::new(base, 64 + 2 + 2 * 64 + 64));
        let _p1 = a.alloc(&mut m, &mut w, 64).unwrap();
        let _p2 = a.alloc(&mut m, &mut w, 64).unwrap();
        assert!(matches!(
            a.alloc(&mut m, &mut w, 64),
            Err(AllocError::OutOfMemory { .. })
        ));
    }
}
