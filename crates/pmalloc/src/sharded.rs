//! Per-thread allocator arenas with address-routed frees.

use crate::{AllocError, PmAllocator, SlabBitmapAlloc};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};

/// A set of per-thread [`SlabBitmapAlloc`] arenas behind one
/// [`PmAllocator`] face.
///
/// Mnemosyne- and NVML-style allocators give each thread its own
/// arena so allocation metadata is thread-private (otherwise every
/// allocation would manufacture cross-thread dependencies on shared
/// bitmap lines — the paper finds allocator cross-dependencies are
/// real but rare, Section 5.1). Allocations come from the arena
/// selected with [`ShardedSlab::select`]; frees are routed to the
/// arena that owns the address, whichever thread calls them.
#[derive(Debug, Clone)]
pub struct ShardedSlab {
    shards: Vec<SlabBitmapAlloc>,
    current: usize,
}

impl ShardedSlab {
    /// Format `n` arenas, each of `bytes_per_shard`, carved from
    /// consecutive regions starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (and propagates slab formatting panics).
    pub fn format(
        m: &mut Machine,
        w: &mut PmWriter,
        base: Addr,
        bytes_per_shard: u64,
        n: usize,
    ) -> ShardedSlab {
        assert!(n > 0, "need at least one shard");
        let shards = (0..n as u64)
            .map(|i| {
                SlabBitmapAlloc::format(
                    m,
                    w,
                    AddrRange::new(base + i * bytes_per_shard, bytes_per_shard),
                )
            })
            .collect();
        ShardedSlab { shards, current: 0 }
    }

    /// Total bytes of PM `format` will claim.
    pub fn region_bytes(bytes_per_shard: u64, n: usize) -> u64 {
        bytes_per_shard * n as u64
    }

    /// Route subsequent allocations to `shard` (typically the calling
    /// thread's id).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn select(&mut self, shard: usize) {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        self.current = shard;
    }

    fn owner_of(&self, addr: Addr) -> Option<usize> {
        self.shards.iter().position(|s| s.region().contains(addr))
    }
}

impl PmAllocator for ShardedSlab {
    fn alloc(&mut self, m: &mut Machine, w: &mut PmWriter, size: u64) -> Result<Addr, AllocError> {
        self.shards[self.current].alloc(m, w, size)
    }

    fn free(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr) -> Result<(), AllocError> {
        let owner = self
            .owner_of(addr)
            .ok_or(AllocError::InvalidFree { addr })?;
        self.shards[owner].free(m, w, addr)
    }

    fn region(&self) -> AddrRange {
        let first = self.shards.first().expect("nonempty").region();
        let last = self.shards.last().expect("nonempty").region();
        AddrRange::new(first.base, last.end() - first.base)
    }

    fn allocated_bytes(&self) -> u64 {
        self.shards.iter().map(PmAllocator::allocated_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;
    use pmtrace::Tid;

    fn setup() -> (Machine, PmWriter, ShardedSlab) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        let s = ShardedSlab::format(&mut m, &mut w, base, 4 << 20, 4);
        (m, w, s)
    }

    #[test]
    fn allocations_come_from_selected_shard() {
        let (mut m, mut w, mut s) = setup();
        s.select(0);
        let a = s.alloc(&mut m, &mut w, 64).unwrap();
        s.select(3);
        let b = s.alloc(&mut m, &mut w, 64).unwrap();
        assert!(s.shards[0].region().contains(a));
        assert!(s.shards[3].region().contains(b));
    }

    #[test]
    fn cross_shard_free_routes_to_owner() {
        let (mut m, mut w, mut s) = setup();
        s.select(1);
        let p = s.alloc(&mut m, &mut w, 128).unwrap();
        // Another thread frees it.
        s.select(2);
        s.free(&mut m, &mut w, p).unwrap();
        assert_eq!(s.allocated_bytes(), 0);
    }

    #[test]
    fn foreign_address_rejected() {
        let (mut m, mut w, mut s) = setup();
        let outside = s.region().end() + 64;
        assert_eq!(
            s.free(&mut m, &mut w, outside),
            Err(AllocError::InvalidFree { addr: outside })
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_shard_panics() {
        let (_m, _w, mut s) = setup();
        s.select(9);
    }
}
