//! N-store/Echo-style single-heap free-list allocator.

use crate::{AllocError, AllocStats, PmAllocator};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const MAGIC: u64 = 0x4e53_544f_5245_4831; // "NSTOREH1"
const HDR_MAGIC: u32 = 0x4845_4144; // "HEAD"
const HEADER_BYTES: u64 = 64; // one line per block header
const REGION_HEADER: u64 = 64;
/// Smallest block (header + one payload line).
const MIN_BLOCK: u64 = 128;

/// Lifecycle state of a block in the single heap.
///
/// "N-store allocates both volatile and persistent data from a
/// persistent heap, and decides later which objects should persist
/// across crashes by storing a state variable with each block — FREE,
/// VOLATILE or PERSISTENT. Transactions that alter the state of a block
/// write to this variable thrice[, causing] self-dependencies in
/// N-store." (Section 5.1.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// On the free list.
    Free,
    /// Allocated, but contents need not survive a crash (recovery
    /// reclaims these).
    Volatile,
    /// Allocated and crash-persistent.
    Persistent,
}

impl BlockState {
    fn to_u32(self) -> u32 {
        match self {
            BlockState::Free => 0,
            BlockState::Volatile => 1,
            BlockState::Persistent => 2,
        }
    }

    fn from_u32(v: u32) -> Option<BlockState> {
        match v {
            0 => Some(BlockState::Free),
            1 => Some(BlockState::Volatile),
            2 => Some(BlockState::Persistent),
            _ => None,
        }
    }
}

/// A single free-list heap for all allocation sizes, with splits and
/// coalescing — "the N-store and Echo allocators have a single heap for
/// all allocation sizes, leading to frequent splits and coalescing of
/// blocks, each requiring a persistent metadata write" (Section 5.2).
///
/// Block layout: a 64 B header line (`magic`, `state`, `size`) followed
/// by the payload. The header chain is walkable from the region base by
/// `size` alone, and metadata updates are ordered (new header persisted
/// before the old header shrinks) so the chain is consistent after a
/// crash at any epoch boundary; recovery reclaims `Volatile` blocks and
/// rebuilds the free list.
#[derive(Debug, Clone)]
pub struct SingleHeapAlloc {
    region: AddrRange,
    /// Volatile free list: (header addr, block size), address-ordered.
    free_list: Vec<(Addr, u64)>,
    /// Volatile mirror of every block for O(1) lookup:
    /// header addr -> (size, state).
    blocks: std::collections::BTreeMap<Addr, (u64, BlockState)>,
    allocated_bytes: u64,
    stats: AllocStats,
}

impl SingleHeapAlloc {
    fn first_block(&self) -> Addr {
        self.region.base + REGION_HEADER
    }

    fn write_header(m: &mut Machine, w: &mut PmWriter, hdr: Addr, state: BlockState, size: u64) {
        w.write_u32(m, hdr, HDR_MAGIC, Category::AllocMeta);
        w.write_u32(m, hdr + 4, state.to_u32(), Category::AllocMeta);
        w.write_u64(m, hdr + 8, size, Category::AllocMeta);
    }

    /// Format a fresh heap spanning `region`: one big free block.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one block.
    pub fn format(m: &mut Machine, w: &mut PmWriter, region: AddrRange) -> SingleHeapAlloc {
        assert!(
            region.len >= REGION_HEADER + MIN_BLOCK,
            "region too small for single-heap allocator"
        );
        w.write_u64(m, region.base, MAGIC, Category::AllocMeta);
        w.ordering_fence(m);
        let first = region.base + REGION_HEADER;
        let size = region.len - REGION_HEADER;
        Self::write_header(m, w, first, BlockState::Free, size);
        w.ordering_fence(m);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(first, (size, BlockState::Free));
        SingleHeapAlloc {
            region,
            free_list: vec![(first, size)],
            blocks,
            allocated_bytes: 0,
            stats: AllocStats::default(),
        }
    }

    /// Rebuild after a crash: walk the header chain, reclaim `Volatile`
    /// blocks, coalesce adjacent free blocks, rebuild the free list.
    /// Returns the allocator and the payload addresses of surviving
    /// `Persistent` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `region` does not hold a formatted heap.
    pub fn recover(m: &mut Machine, tid: Tid, region: AddrRange) -> (SingleHeapAlloc, Vec<Addr>) {
        let magic = m.load_u64(tid, region.base);
        assert_eq!(
            magic, MAGIC,
            "no single-heap allocator at {:#x}",
            region.base
        );
        let mut w = PmWriter::new(tid);
        let mut a = SingleHeapAlloc {
            region,
            free_list: Vec::new(),
            blocks: std::collections::BTreeMap::new(),
            allocated_bytes: 0,
            stats: AllocStats::default(),
        };
        let mut persistent = Vec::new();
        let mut hdr = a.first_block();
        let end = region.end();
        while hdr + MIN_BLOCK <= end {
            let hmagic = m.load_u32(tid, hdr);
            if hmagic != HDR_MAGIC {
                // Tail never formatted into a block (crash mid-grow):
                // everything from here is one free block.
                let size = end - hdr;
                if size >= MIN_BLOCK {
                    Self::write_header(m, &mut w, hdr, BlockState::Free, size);
                    w.ordering_fence(m);
                    a.blocks.insert(hdr, (size, BlockState::Free));
                }
                break;
            }
            let state = BlockState::from_u32(m.load_u32(tid, hdr + 4)).unwrap_or(BlockState::Free);
            let size = m.load_u64(tid, hdr + 8);
            assert!(
                size >= MIN_BLOCK && hdr + size <= end,
                "corrupt heap chain at {hdr:#x}: size {size}"
            );
            let state = match state {
                BlockState::Volatile => {
                    // Dead after the crash: reclaim.
                    w.write_u32(m, hdr + 4, BlockState::Free.to_u32(), Category::AllocMeta);
                    w.ordering_fence(m);
                    BlockState::Free
                }
                s => s,
            };
            if state == BlockState::Persistent {
                persistent.push(hdr + HEADER_BYTES);
                a.allocated_bytes += size - HEADER_BYTES;
            }
            a.blocks.insert(hdr, (size, state));
            hdr += size;
        }
        a.rebuild_free_list(m, &mut w);
        (a, persistent)
    }

    /// Coalesce adjacent free blocks and rebuild the volatile free list.
    fn rebuild_free_list(&mut self, m: &mut Machine, w: &mut PmWriter) {
        let entries: Vec<(Addr, u64, BlockState)> = self
            .blocks
            .iter()
            .map(|(a, (s, st))| (*a, *s, *st))
            .collect();
        let mut merged: Vec<(Addr, u64, BlockState)> = Vec::new();
        for (addr, size, state) in entries {
            if let Some(last) = merged.last_mut() {
                if last.2 == BlockState::Free
                    && state == BlockState::Free
                    && last.0 + last.1 == addr
                {
                    last.1 += size;
                    self.stats.merges += 1;
                    continue;
                }
            }
            merged.push((addr, size, state));
        }
        self.blocks.clear();
        self.free_list.clear();
        for (addr, size, state) in merged {
            self.blocks.insert(addr, (size, state));
            if state == BlockState::Free {
                // Persist the (possibly grown) free header.
                Self::write_header(m, w, addr, BlockState::Free, size);
                self.free_list.push((addr, size));
            }
        }
        if !self.free_list.is_empty() {
            w.ordering_fence(m);
        }
    }

    /// Change the lifecycle state of an allocated block (N-store's
    /// FREE→VOLATILE→PERSISTENT protocol). One persistent write + fence,
    /// to the same header line each time — the self-dependency source.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `payload` is not an allocated
    /// block.
    pub fn set_state(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        payload: Addr,
        state: BlockState,
    ) -> Result<(), AllocError> {
        let hdr = payload
            .checked_sub(HEADER_BYTES)
            .ok_or(AllocError::InvalidFree { addr: payload })?;
        match self.blocks.get_mut(&hdr) {
            Some((_, st)) if *st != BlockState::Free => {
                *st = state;
                w.write_u32(m, hdr + 4, state.to_u32(), Category::AllocMeta);
                w.ordering_fence(m);
                Ok(())
            }
            _ => Err(AllocError::InvalidFree { addr: payload }),
        }
    }

    /// Current state of the block whose payload starts at `payload`.
    pub fn state_of(&self, payload: Addr) -> Option<BlockState> {
        self.blocks
            .get(&(payload.wrapping_sub(HEADER_BYTES)))
            .map(|(_, s)| *s)
    }

    /// Allocation counters.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }
}

impl PmAllocator for SingleHeapAlloc {
    fn alloc(&mut self, m: &mut Machine, w: &mut PmWriter, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::BadSize { requested: 0 });
        }
        let need = HEADER_BYTES + size.div_ceil(64) * 64;
        // First fit.
        let pos = self
            .free_list
            .iter()
            .position(|&(_, s)| s >= need)
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        let (hdr, block_size) = self.free_list.remove(pos);
        let remainder = block_size - need;
        if remainder >= MIN_BLOCK {
            // Split. Persist the remainder header first so the chain is
            // walkable at every epoch boundary, then shrink this block.
            let rem_hdr = hdr + need;
            Self::write_header(m, w, rem_hdr, BlockState::Free, remainder);
            w.ordering_fence(m);
            Self::write_header(m, w, hdr, BlockState::Volatile, need);
            w.ordering_fence(m);
            self.blocks.insert(rem_hdr, (remainder, BlockState::Free));
            self.blocks.insert(hdr, (need, BlockState::Volatile));
            self.free_list.push((rem_hdr, remainder));
            self.free_list.sort_unstable();
            self.stats.splits += 1;
            self.allocated_bytes += need - HEADER_BYTES;
        } else {
            // Take the whole block.
            Self::write_header(m, w, hdr, BlockState::Volatile, block_size);
            w.ordering_fence(m);
            self.blocks.insert(hdr, (block_size, BlockState::Volatile));
            self.allocated_bytes += block_size - HEADER_BYTES;
        }
        self.stats.allocs += 1;
        Ok(hdr + HEADER_BYTES)
    }

    fn free(&mut self, m: &mut Machine, w: &mut PmWriter, addr: Addr) -> Result<(), AllocError> {
        let hdr = addr
            .checked_sub(HEADER_BYTES)
            .ok_or(AllocError::InvalidFree { addr })?;
        let (size, state) = *self
            .blocks
            .get(&hdr)
            .ok_or(AllocError::InvalidFree { addr })?;
        if state == BlockState::Free {
            return Err(AllocError::InvalidFree { addr });
        }
        self.allocated_bytes -= size - HEADER_BYTES;
        // Mark free persistently.
        w.write_u32(m, hdr + 4, BlockState::Free.to_u32(), Category::AllocMeta);
        w.ordering_fence(m);
        let mut start = hdr;
        let mut total = size;
        // Coalesce with next block if free.
        if let Some((&next, &(nsize, nstate))) = self.blocks.range(hdr + 1..).next() {
            if nstate == BlockState::Free && hdr + size == next {
                total += nsize;
                self.blocks.remove(&next);
                self.free_list.retain(|&(a, _)| a != next);
                self.stats.merges += 1;
            }
        }
        // Coalesce with previous block if free.
        if let Some((&prev, &(psize, pstate))) = self.blocks.range(..hdr).next_back() {
            if pstate == BlockState::Free && prev + psize == hdr {
                start = prev;
                total += psize;
                self.blocks.remove(&hdr);
                self.free_list.retain(|&(a, _)| a != prev);
                self.stats.merges += 1;
            }
        }
        // Persist the merged header (another metadata write + fence).
        Self::write_header(m, w, start, BlockState::Free, total);
        w.ordering_fence(m);
        self.blocks.insert(start, (total, BlockState::Free));
        if start != hdr {
            self.blocks.remove(&hdr);
        }
        self.free_list.push((start, total));
        self.free_list.sort_unstable();
        self.stats.frees += 1;
        Ok(())
    }

    fn region(&self) -> AddrRange {
        self.region
    }

    fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;

    fn setup() -> (Machine, PmWriter, SingleHeapAlloc) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        let a = SingleHeapAlloc::format(&mut m, &mut w, AddrRange::new(base, 1 << 20));
        (m, w, a)
    }

    #[test]
    fn alloc_splits_and_free_merges() {
        let (mut m, mut w, mut a) = setup();
        let p1 = a.alloc(&mut m, &mut w, 100).unwrap();
        let p2 = a.alloc(&mut m, &mut w, 100).unwrap();
        assert!(p2 > p1);
        assert_eq!(a.stats().splits, 2);
        a.free(&mut m, &mut w, p2).unwrap();
        a.free(&mut m, &mut w, p1).unwrap();
        assert!(a.stats().merges >= 2, "freed neighbors coalesce");
        assert_eq!(a.allocated_bytes(), 0);
        // After everything is freed we can allocate nearly the region.
        let big = a.alloc(&mut m, &mut w, (1 << 20) - 1024);
        assert!(big.is_ok());
    }

    #[test]
    fn payload_is_64b_aligned() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 24).unwrap();
        assert_eq!(p % 64, 0);
    }

    #[test]
    fn state_protocol_and_self_deps() {
        let (mut m, mut w, mut a) = setup();
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        assert_eq!(a.state_of(p), Some(BlockState::Volatile));
        a.set_state(&mut m, &mut w, p, BlockState::Persistent)
            .unwrap();
        assert_eq!(a.state_of(p), Some(BlockState::Persistent));
        // The state writes hit the same header line in distinct epochs:
        let epochs = pmtrace::analysis::split_epochs(m.trace().events());
        let deps = pmtrace::analysis::dependencies(&epochs);
        assert!(deps.self_dep_epochs >= 1, "state flips cause self-deps");
    }

    #[test]
    fn oom_and_invalid_ops() {
        let (mut m, mut w, mut a) = setup();
        assert!(matches!(
            a.alloc(&mut m, &mut w, 0),
            Err(AllocError::BadSize { .. })
        ));
        assert!(matches!(
            a.alloc(&mut m, &mut w, 4 << 20),
            Err(AllocError::OutOfMemory { .. })
        ));
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        assert!(a.free(&mut m, &mut w, p + 8).is_err());
        a.free(&mut m, &mut w, p).unwrap();
        assert!(a.free(&mut m, &mut w, p).is_err());
        assert!(a
            .set_state(&mut m, &mut w, p, BlockState::Persistent)
            .is_err());
    }

    #[test]
    fn recovery_reclaims_volatile_keeps_persistent() {
        let (mut m, mut w, mut a) = setup();
        let region = a.region();
        let pv = a.alloc(&mut m, &mut w, 64).unwrap(); // stays Volatile
        let pp = a.alloc(&mut m, &mut w, 64).unwrap();
        a.set_state(&mut m, &mut w, pp, BlockState::Persistent)
            .unwrap();
        let img = m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let (a2, persistent) = SingleHeapAlloc::recover(&mut m2, Tid(0), region);
        assert_eq!(persistent, vec![pp]);
        assert_eq!(
            a2.state_of(pv),
            Some(BlockState::Free),
            "volatile reclaimed"
        );
        assert_eq!(a2.state_of(pp), Some(BlockState::Persistent));
    }

    #[test]
    fn recovery_after_adversarial_crash_yields_walkable_heap() {
        for seed in 0..20 {
            let (mut m, mut w, mut a) = setup();
            let region = a.region();
            let mut live = Vec::new();
            for i in 0..6 {
                let p = a.alloc(&mut m, &mut w, 64 + i * 32).unwrap();
                if i % 2 == 0 {
                    a.set_state(&mut m, &mut w, p, BlockState::Persistent)
                        .unwrap();
                    live.push(p);
                } else if i % 3 == 0 {
                    a.free(&mut m, &mut w, p).unwrap();
                }
            }
            let img = m.crash(memsim::CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            // Must not panic: the chain is walkable at any epoch boundary.
            let (a2, persistent) = SingleHeapAlloc::recover(&mut m2, Tid(0), region);
            // Every durably-persistent block must be found.
            for p in &live {
                assert!(
                    persistent.contains(p),
                    "seed {seed}: persistent block {p:#x} lost"
                );
            }
            // And the recovered allocator still works.
            let mut w2 = PmWriter::new(Tid(0));
            let mut a2 = a2;
            assert!(a2.alloc(&mut m2, &mut w2, 64).is_ok());
        }
    }

    #[test]
    fn free_list_exact_fit_no_split() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let mut w = PmWriter::new(Tid(0));
        let base = m.config().map.pm.base;
        // Region with room for exactly one minimal block.
        let mut a = SingleHeapAlloc::format(
            &mut m,
            &mut w,
            AddrRange::new(base, REGION_HEADER + MIN_BLOCK),
        );
        let p = a.alloc(&mut m, &mut w, 64).unwrap();
        assert_eq!(a.stats().splits, 0);
        a.free(&mut m, &mut w, p).unwrap();
        let p2 = a.alloc(&mut m, &mut w, 64).unwrap();
        assert_eq!(p, p2);
    }
}
