//! Dirty-line tracking with LRU capacity eviction.

use pmem::{FxHashMap, Line};
use std::collections::VecDeque;

/// Per-thread set of PM lines that are dirty in the L1 cache, with
/// least-recently-*written* eviction once capacity is exceeded.
///
/// Only dirty *PM* lines are tracked: clean lines and DRAM lines need no
/// durability bookkeeping, and the functional memory image lives
/// elsewhere (see the crate docs). An evicted line writes back to the
/// PM device, i.e. it becomes durable "early" — the cache-driven
/// reordering the paper's Section 2 warns about.
#[derive(Debug, Clone)]
pub(crate) struct DirtySet {
    capacity: usize,
    /// line -> LRU stamp (monotone counter value at last write).
    stamps: FxHashMap<Line, u64>,
    /// Touch order with lazy invalidation: entries whose stamp no
    /// longer matches `stamps` are skipped at eviction time, making
    /// eviction amortized O(1) instead of a full scan.
    queue: VecDeque<(Line, u64)>,
    tick: u64,
}

impl DirtySet {
    pub(crate) fn new(capacity: usize) -> DirtySet {
        assert!(capacity > 0, "dirty-set capacity must be positive");
        DirtySet {
            capacity,
            stamps: FxHashMap::default(),
            queue: VecDeque::new(),
            tick: 0,
        }
    }

    /// Mark `line` dirty (refreshing its LRU position). Returns the
    /// evicted line, if the insertion pushed the set over capacity.
    pub(crate) fn touch(&mut self, line: Line) -> Option<Line> {
        self.touch_full(line).1
    }

    /// [`DirtySet::touch`] that additionally reports whether the line
    /// was already present — in one hash operation, which is what the
    /// read-cache hot path needs (a `contains` + `touch` pair would
    /// look the key up twice). Capacity eviction is unchanged.
    pub(crate) fn touch_full(&mut self, line: Line) -> (bool, Option<Line>) {
        self.tick += 1;
        let was_present = self.stamps.insert(line, self.tick).is_some();
        self.queue.push_back((line, self.tick));
        if self.stamps.len() > self.capacity {
            // Pop stale queue entries until the true LRU line surfaces.
            while let Some(&(l, t)) = self.queue.front() {
                self.queue.pop_front();
                if self.stamps.get(&l) == Some(&t) {
                    self.stamps.remove(&l);
                    return (was_present, Some(l));
                }
            }
            unreachable!("over-capacity set always has a queue-backed victim");
        }
        (was_present, None)
    }

    /// Remove `line` (it was flushed or invalidated). Returns whether it
    /// was present.
    pub(crate) fn remove(&mut self, line: Line) -> bool {
        self.stamps.remove(&line).is_some()
    }

    /// Whether `line` is currently dirty.
    pub(crate) fn contains(&self, line: Line) -> bool {
        self.stamps.contains_key(&line)
    }

    /// All dirty lines, in deterministic (line-number) order.
    pub(crate) fn lines(&self) -> Vec<Line> {
        let mut v: Vec<Line> = self.stamps.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of dirty lines.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.stamps.len()
    }
}

/// Per-thread set of recently-referenced PM lines, used to decide
/// whether a PM load is served by the cache hierarchy or counts as
/// memory traffic (the distinction Figure 6 measures). Same LRU
/// machinery as [`DirtySet`], but evictions are silent: clean lines
/// just age out.
#[derive(Debug, Clone)]
pub(crate) struct ReadSet {
    inner: DirtySet,
}

impl ReadSet {
    pub(crate) fn new(capacity: usize) -> ReadSet {
        ReadSet {
            inner: DirtySet::new(capacity),
        }
    }

    /// Reference `line`; returns true if it was already cached (hit).
    pub(crate) fn touch(&mut self, line: Line) -> bool {
        self.inner.touch_full(line).0
    }

    /// Drop `line` (a `clflushopt` invalidation).
    pub(crate) fn invalidate(&mut self, line: Line) {
        self.inner.remove(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_and_contains() {
        let mut d = DirtySet::new(4);
        assert_eq!(d.touch(Line(1)), None);
        assert!(d.contains(Line(1)));
        assert!(!d.contains(Line(2)));
    }

    #[test]
    fn evicts_least_recently_written() {
        let mut d = DirtySet::new(2);
        d.touch(Line(1));
        d.touch(Line(2));
        d.touch(Line(1)); // refresh 1
        let evicted = d.touch(Line(3));
        assert_eq!(evicted, Some(Line(2)));
        assert!(d.contains(Line(1)));
        assert!(d.contains(Line(3)));
    }

    #[test]
    fn retouch_does_not_evict() {
        let mut d = DirtySet::new(2);
        d.touch(Line(1));
        d.touch(Line(2));
        assert_eq!(d.touch(Line(2)), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn remove_reports_presence() {
        let mut d = DirtySet::new(2);
        d.touch(Line(5));
        assert!(d.remove(Line(5)));
        assert!(!d.remove(Line(5)));
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn lines_sorted() {
        let mut d = DirtySet::new(8);
        for l in [9u64, 3, 7] {
            d.touch(Line(l));
        }
        assert_eq!(d.lines(), vec![Line(3), Line(7), Line(9)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        DirtySet::new(0);
    }
}
