//! Access counters for the DRAM/PM traffic split (Figure 6).

/// Per-run memory access counters, at 64 B line granularity: each load
/// or store contributes one access per line it touches.
///
/// Figure 6 of the paper reports "the proportion of PM accesses among
/// all memory accesses" and finds >96% of accesses go to DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// DRAM line-accesses (loads + stores).
    pub dram_accesses: u64,
    /// PM line-reads that missed the cache hierarchy.
    pub pm_reads: u64,
    /// PM lines written to the device (flush drains, WCB drains,
    /// evictions) — media traffic, where endurance and Figure 6 count.
    pub pm_writes: u64,
}

impl MemStats {
    /// Total accesses of any kind.
    pub fn total(&self) -> u64 {
        self.dram_accesses + self.pm_reads + self.pm_writes
    }

    /// PM accesses.
    pub fn pm_total(&self) -> u64 {
        self.pm_reads + self.pm_writes
    }

    /// PM share of all accesses, in \[0,1\]; 0.0 when nothing was
    /// accessed.
    pub fn pm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.pm_total() as f64 / t as f64
        }
    }

    /// Read share of PM traffic, in \[0,1\]; 0.0 when PM was untouched.
    pub fn pm_read_fraction(&self) -> f64 {
        let t = self.pm_total();
        if t == 0 {
            0.0
        } else {
            self.pm_reads as f64 / t as f64
        }
    }

    /// Write share of PM traffic, in \[0,1\]; 0.0 when PM was untouched.
    pub fn pm_write_fraction(&self) -> f64 {
        let t = self.pm_total();
        if t == 0 {
            0.0
        } else {
            self.pm_writes as f64 / t as f64
        }
    }

    /// Fold another run's counters into this one — how per-worker stats
    /// from the parallel suite combine into suite-wide totals.
    pub fn merge(&mut self, other: &MemStats) {
        self.dram_accesses += other.dram_accesses;
        self.pm_reads += other.pm_reads;
        self.pm_writes += other.pm_writes;
    }
}

impl std::fmt::Display for MemStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dram:{} pm_r:{} pm_w:{} (pm {:.2}% of traffic; {:.0}%r/{:.0}%w of pm)",
            self.dram_accesses,
            self.pm_reads,
            self.pm_writes,
            self.pm_fraction() * 100.0,
            self.pm_read_fraction() * 100.0,
            self.pm_write_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_math() {
        let s = MemStats {
            dram_accesses: 96,
            pm_reads: 1,
            pm_writes: 3,
        };
        assert!((s.pm_fraction() - 0.04).abs() < 1e-9);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn empty_fraction_zero() {
        assert_eq!(MemStats::default().pm_fraction(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", MemStats::default()).is_empty());
    }

    #[test]
    fn display_shows_pm_read_write_split() {
        let s = MemStats {
            dram_accesses: 90,
            pm_reads: 4,
            pm_writes: 6,
        };
        let text = format!("{s}");
        assert!(text.contains("40%r/60%w"), "split missing from {text:?}");
        assert!((s.pm_read_fraction() - 0.4).abs() < 1e-9);
        assert!((s.pm_write_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = MemStats {
            dram_accesses: 10,
            pm_reads: 2,
            pm_writes: 3,
        };
        let b = MemStats {
            dram_accesses: 100,
            pm_reads: 20,
            pm_writes: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            MemStats {
                dram_accesses: 110,
                pm_reads: 22,
                pm_writes: 33,
            }
        );
        // Merging the default is a no-op.
        let before = a;
        a.merge(&MemStats::default());
        assert_eq!(a, before);
    }
}
