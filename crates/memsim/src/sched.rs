//! Deterministic seeded interleaving of logical worker threads.
//!
//! The WHISPER applications drive one simulated [`crate::Machine`] from
//! a single host thread, interleaving N *logical* workers
//! per-operation. The [`Scheduler`] decides which worker runs next:
//! every decision is a pure function of the run seed and the sequence
//! of `next`/`retire` calls, so a run is bit-identical wherever it
//! executes — the suite can fan app runs across any number of host
//! threads (`--parallel`) without perturbing a single interleaving.
//!
//! The generator is splitmix64, the same stream used to derive per-app
//! seeds elsewhere in the suite; workers are picked uniformly among the
//! still-live set, which under the paper's workloads produces the
//! irregular cross-thread epoch overlap the Fig. 5 dependency analysis
//! is after (a round-robin rotation would synchronize epoch boundaries
//! artificially).

use pmtrace::Tid;

/// splitmix64: advance `state` and return the next 64-bit output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic seeded scheduler over `workers` logical threads
/// `Tid(0) .. Tid(workers-1)`.
///
/// ```
/// use memsim::Scheduler;
/// let mut sched = Scheduler::new(2, 42);
/// let mut budget = [3u32, 3];
/// while let Some(tid) = sched.next() {
///     let b = &mut budget[tid.0 as usize];
///     if *b == 0 {
///         sched.retire(tid);
///         continue;
///     }
///     *b -= 1; // run one operation as `tid`
/// }
/// assert_eq!(budget, [0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    state: u64,
    live: Vec<Tid>,
    decisions: u64,
}

impl Scheduler {
    /// A scheduler over `workers` logical threads, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or exceeds the machine-wide cap of
    /// 64 threads (the [`crate::Machine`] dirty-index mask width).
    pub fn new(workers: u32, seed: u64) -> Scheduler {
        assert!(
            (1..=64).contains(&workers),
            "worker count {workers} outside 1..=64"
        );
        Scheduler {
            // Pre-mix so nearby seeds diverge immediately.
            state: seed ^ 0xD6E8_FEB8_6659_FD93,
            live: (0..workers).map(Tid).collect(),
            decisions: 0,
        }
    }

    /// The next worker to run one operation, picked uniformly among the
    /// live set; `None` once every worker has retired.
    ///
    /// Not an [`Iterator`]: the stream is open-ended until [`retire`]
    /// shrinks the live set, and callers interleave the two calls.
    ///
    /// [`retire`]: Scheduler::retire
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tid> {
        if self.live.is_empty() {
            return None;
        }
        let r = splitmix64(&mut self.state);
        self.decisions += 1;
        Some(self.live[(r % self.live.len() as u64) as usize])
    }

    /// Remove `tid` from the live set (its op stream is exhausted).
    /// Retiring an already-retired worker is a no-op.
    pub fn retire(&mut self, tid: Tid) {
        self.live.retain(|t| *t != tid);
    }

    /// Workers still live.
    pub fn live(&self) -> &[Tid] {
        &self.live
    }

    /// Scheduling decisions made so far (seeded draws consumed).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

/// An out-of-range [`Tid`]: the id names a thread slot the machine (or
/// an engine sized from [`crate::MachineConfig::threads`]) does not
/// have. Returned by the validating entry points instead of an index
/// panic deep inside a per-thread `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TidError {
    /// The offending thread id.
    pub tid: Tid,
    /// The thread count the id was validated against.
    pub threads: u32,
}

impl std::fmt::Display for TidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} out of range (machine has {} threads)",
            self.tid, self.threads
        )
    }
}

impl std::error::Error for TidError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(workers: u32, seed: u64, per_worker: u32) -> Vec<Tid> {
        let mut sched = Scheduler::new(workers, seed);
        let mut budget = vec![per_worker; workers as usize];
        let mut order = Vec::new();
        while let Some(tid) = sched.next() {
            let b = &mut budget[tid.0 as usize];
            if *b == 0 {
                sched.retire(tid);
                continue;
            }
            *b -= 1;
            order.push(tid);
        }
        order
    }

    #[test]
    fn same_seed_same_interleaving() {
        assert_eq!(trace(4, 7, 50), trace(4, 7, 50));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(trace(4, 7, 50), trace(4, 8, 50));
    }

    #[test]
    fn every_worker_runs_to_completion() {
        let order = trace(4, 99, 25);
        assert_eq!(order.len(), 100);
        for w in 0..4u32 {
            assert_eq!(order.iter().filter(|t| t.0 == w).count(), 25);
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let order = trace(1, 3, 10);
        assert_eq!(order, vec![Tid(0); 10]);
    }

    #[test]
    fn interleaving_is_not_round_robin() {
        // A seeded pick must break the rotation: some worker runs twice
        // in a row somewhere in a long trace.
        let order = trace(4, 42, 100);
        assert!(order.windows(2).any(|w| w[0] == w[1]));
    }

    #[test]
    fn retire_is_idempotent_and_next_drains() {
        let mut s = Scheduler::new(2, 1);
        s.retire(Tid(0));
        s.retire(Tid(0));
        assert_eq!(s.live(), &[Tid(1)]);
        assert_eq!(s.next(), Some(Tid(1)));
        s.retire(Tid(1));
        assert_eq!(s.next(), None);
    }

    #[test]
    #[should_panic(expected = "outside 1..=64")]
    fn zero_workers_rejected() {
        let _ = Scheduler::new(0, 1);
    }

    #[test]
    fn tid_error_displays_both_sides() {
        let e = TidError {
            tid: Tid(4),
            threads: 4,
        };
        assert_eq!(
            e.to_string(),
            "thread t4 out of range (machine has 4 threads)"
        );
    }
}
