//! Simulated CPU memory system for the WHISPER/HOPS reproduction.
//!
//! This crate models the part of the machine the paper's analysis
//! depends on: a writeback cache hierarchy in front of DRAM and PM, the
//! x86-64 persistence instructions (`clwb`/`clflushopt`, non-temporal
//! stores, `sfence`), write-combining buffers, and a global clock — the
//! substrate on which the ten WHISPER applications run and from which
//! the `pmtrace` event stream is recorded.
//!
//! # Design: functional state vs. durable state
//!
//! The simulator separates two concerns:
//!
//! * **Functional memory** is always up to date: a store is immediately
//!   visible to subsequent loads from any thread. Application logic is
//!   therefore always correct, independent of the cache model.
//! * **Durability state** tracks, per 64 B line of PM, whether the
//!   latest contents would survive a power failure. A cacheable PM store
//!   leaves its line *dirty in cache* (volatile); `clwb` moves a
//!   snapshot into the *flush pending* set; `sfence` makes pending
//!   snapshots and drained write-combining entries *durable*. Dirty
//!   lines may also become durable spontaneously via capacity eviction
//!   — exactly the paper's premise that "write-back processor caches can
//!   re-order updates to PM" (Section 2).
//!
//! A crash ([`Machine::crash`]) returns a [`pmem::PmImage`] containing
//! everything durable plus — under [`CrashSpec::Adversarial`] — an
//! arbitrary seeded subset of the in-flight writes, which is what makes
//! recovery code meaningfully testable.
//!
//! # Example
//!
//! ```
//! use memsim::{Machine, MachineConfig, CrashSpec};
//! use pmtrace::{Category, Tid};
//!
//! let mut m = Machine::new(MachineConfig::asplos17());
//! let tid = Tid(0);
//! let a = m.config().map.pm.base;
//! m.store(tid, a, b"hello", Category::UserData);
//! m.clwb(tid, a);
//! m.sfence(tid);
//! let img = m.crash(CrashSpec::DropVolatile);
//! assert_eq!(img.read_vec(a, 5), b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod crash;
mod elide;
mod machine;
mod sched;
mod stats;
mod wcb;
mod writer;

pub use config::{Latency, MachineConfig, SIM_CLOCK_HZ, SIM_NS_PER_SEC};
pub use crash::{CrashCounter, CrashPlan, CrashSpec, CrashState};
pub use elide::{ElidePlan, ElideStats};
pub use machine::Machine;
pub use sched::{Scheduler, TidError};
pub use stats::MemStats;
pub use writer::PmWriter;
