//! Machine-level elision plans: skip planned flushes/fences by ordinal.
//!
//! The `pmcheck` rewrite pass decides *which* redundant flushes and
//! no-work fences a trace can lose; this module lets a live machine
//! actually not execute them, so the crash campaign can re-run a
//! workload under the optimized schedule and prove recovery still
//! works. Trace events carry no store payloads, so an optimized trace
//! cannot be replayed into a machine directly — instead the workload
//! is re-executed deterministically and the machine skips the N-th
//! flush / M-th fence (1-based, counted from [`Machine::set_elide_plan`]
//! (crate::Machine::set_elide_plan)), which is exactly the event the
//! checker flagged because the traced and re-executed runs issue
//! persistence instructions in the same order.
//!
//! The machine keeps a veto: a planned flush is only skipped when its
//! line is clean in every thread's cache, and a planned fence only
//! when the issuing thread has no pending `clwb` snapshot and no live
//! write-combining entry — i.e. when the instruction is a machine-level
//! no-op apart from its cost. The checker sees the trace from arming
//! onward while the machine carries state from untraced setup, so a
//! site the checker calls redundant can still be load-bearing in the
//! machine; the veto counters in [`ElideStats`] make that visible
//! instead of risking durability.

use pmem::FxHashSet;

/// Which persistence instructions to skip, as 1-based ordinals counted
/// per kind from the moment the plan is armed.
#[derive(Debug, Clone, Default)]
pub struct ElidePlan {
    flushes: FxHashSet<u64>,
    fences: FxHashSet<u64>,
}

impl ElidePlan {
    /// A plan skipping the given flush and fence ordinals (1-based;
    /// the first `clwb` after arming is flush ordinal 1, and
    /// `sfence`/`sfence_durable` share one fence counter in issue
    /// order).
    pub fn new(
        flushes: impl IntoIterator<Item = u64>,
        fences: impl IntoIterator<Item = u64>,
    ) -> ElidePlan {
        ElidePlan {
            flushes: flushes.into_iter().collect(),
            fences: fences.into_iter().collect(),
        }
    }

    /// True when the plan skips nothing.
    pub fn is_empty(&self) -> bool {
        self.flushes.is_empty() && self.fences.is_empty()
    }

    /// Planned flush-site count.
    pub fn flush_count(&self) -> usize {
        self.flushes.len()
    }

    /// Planned fence-site count.
    pub fn fence_count(&self) -> usize {
        self.fences.len()
    }

    pub(crate) fn wants_flush(&self, ordinal: u64) -> bool {
        self.flushes.contains(&ordinal)
    }

    pub(crate) fn wants_fence(&self, ordinal: u64) -> bool {
        self.fences.contains(&ordinal)
    }
}

/// What an armed [`ElidePlan`] did so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElideStats {
    /// Planned flushes actually skipped (line clean everywhere).
    pub flushes_elided: u64,
    /// Planned fences actually skipped (nothing pending to retire).
    pub fences_elided: u64,
    /// Planned flushes executed anyway because the line was dirty in
    /// some cache — untraced setup state the checker could not see.
    pub flush_vetoes: u64,
    /// Planned fences executed anyway because the thread had pending
    /// `clwb` snapshots or live write-combining entries.
    pub fence_vetoes: u64,
}

impl ElideStats {
    /// Total skipped instructions.
    pub fn elided_total(&self) -> u64 {
        self.flushes_elided + self.fences_elided
    }

    /// Total vetoed (planned but executed) instructions.
    pub fn veto_total(&self) -> u64 {
        self.flush_vetoes + self.fence_vetoes
    }
}

/// The machine-side armed state: the plan plus per-kind ordinals seen.
#[derive(Debug)]
pub(crate) struct ElideState {
    pub(crate) plan: ElidePlan,
    pub(crate) seen_flushes: u64,
    pub(crate) seen_fences: u64,
    pub(crate) stats: ElideStats,
}

impl ElideState {
    pub(crate) fn new(plan: ElidePlan) -> ElideState {
        ElideState {
            plan,
            seen_flushes: 0,
            seen_fences: 0,
            stats: ElideStats::default(),
        }
    }
}
