//! Power-failure simulation: crash specs, planned mid-run crash
//! points, and the image materializer recovery code runs against.

use crate::machine::{Machine, PendingLine};
use pmem::{FxHashSet, Line, PmImage, LINE_SIZE};
use pmrand::{Rng, SeedableRng, SmallRng};

const LINE: usize = LINE_SIZE as usize;

/// How a simulated power failure treats in-flight PM writes.
///
/// After an `sfence`, the fenced data is durable in every mode. What
/// varies is the fate of writes that were *in flight*: dirty lines in
/// caches, `clwb` snapshots not yet fenced, and write-combining buffer
/// entries. Real hardware gives no ordering among these, so recovery
/// code must tolerate *any* subset reaching PM — which is exactly what
/// [`CrashSpec::Adversarial`] tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSpec {
    /// Only explicitly persisted data survives: all caches, pending
    /// flushes, and WCBs are lost. The "everything in flight was lost"
    /// corner.
    DropVolatile,
    /// Every in-flight write happens to land before the failure. The
    /// "everything in flight made it" corner (equivalent to a whole-
    /// machine flush-on-failure, which recovery must also tolerate).
    PersistAll,
    /// Each in-flight line independently survives with probability 1/2,
    /// decided by the seed. Sweeping seeds explores the subset lattice
    /// between the two corners.
    Adversarial {
        /// RNG seed selecting which in-flight lines persist.
        seed: u64,
    },
}

/// Which PM events a [`CrashPlan`]'s ordinals count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashCounter {
    /// Cacheable and non-temporal PM store events (one per store call,
    /// matching the trace's store events).
    Stores,
    /// `clwb`/`clflushopt` events.
    Flushes,
    /// `sfence`/`sfence_durable` events.
    Fences,
    /// Every PM event: stores, flushes, and fences.
    PmEvents,
}

/// The event-kind tag the machine's hooks feed the armed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanEvent {
    Store,
    Flush,
    Fence,
}

impl CrashCounter {
    pub(crate) fn matches(self, ev: PlanEvent) -> bool {
        matches!(
            (self, ev),
            (CrashCounter::PmEvents, _)
                | (CrashCounter::Stores, PlanEvent::Store)
                | (CrashCounter::Flushes, PlanEvent::Flush)
                | (CrashCounter::Fences, PlanEvent::Fence)
        )
    }
}

/// Where to interrupt a run: after the K-th matching PM event, for
/// each K in the plan's point list, the machine captures a
/// [`CrashState`] and *keeps running* — one run yields every swept
/// crash point. Arm with [`Machine::set_crash_plan`], harvest with
/// [`Machine::take_crash_states`].
#[derive(Debug, Clone)]
pub struct CrashPlan {
    counter: CrashCounter,
    /// Sorted, deduplicated, 1-based event ordinals.
    points: Vec<u64>,
}

impl CrashPlan {
    /// A plan capturing after each of the given event ordinals
    /// (1-based: point 1 fires after the first matching event).
    ///
    /// # Panics
    ///
    /// Panics on a zero ordinal — "before any event" is just the
    /// durable image at arm time.
    pub fn at_points(counter: CrashCounter, mut points: Vec<u64>) -> CrashPlan {
        assert!(
            points.iter().all(|&p| p > 0),
            "crash points are 1-based event ordinals"
        );
        points.sort_unstable();
        points.dedup();
        CrashPlan { counter, points }
    }

    /// A plan that captures nothing but still counts events — arm it,
    /// run the workload, and read [`Machine::crash_event_count`] to
    /// learn the run's total so real points can be chosen.
    pub fn probe(counter: CrashCounter) -> CrashPlan {
        CrashPlan {
            counter,
            points: Vec::new(),
        }
    }
}

/// The armed per-machine plan state.
#[derive(Debug)]
pub(crate) struct PlanState {
    counter: CrashCounter,
    points: Vec<u64>,
    next: usize,
    count: u64,
    captured: Vec<CrashState>,
}

impl PlanState {
    pub(crate) fn new(plan: CrashPlan) -> PlanState {
        PlanState {
            counter: plan.counter,
            points: plan.points,
            next: 0,
            count: 0,
            captured: Vec::new(),
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    /// Advance the event count; returns the just-reached ordinal when
    /// a capture is due at this event.
    pub(crate) fn advance(&mut self, ev: PlanEvent) -> Option<u64> {
        if !self.counter.matches(ev) {
            return None;
        }
        self.count += 1;
        if self.next < self.points.len() && self.count == self.points[self.next] {
            self.next += 1;
            Some(self.count)
        } else {
            None
        }
    }

    pub(crate) fn push_captured(&mut self, state: CrashState) {
        self.captured.push(state);
    }

    pub(crate) fn take_captured(&mut self) -> Vec<CrashState> {
        std::mem::take(&mut self.captured)
    }
}

/// A snapshot of everything a power failure decides over: the durable
/// PM image plus the in-flight writes (dirty cache lines, pending
/// `clwb` snapshots, live write-combining entries) at the capture
/// point. Captured mid-run by a [`CrashPlan`] without disturbing the
/// machine; [`CrashState::materialize`] then applies any number of
/// [`CrashSpec`]s to the same point.
#[derive(Debug, Clone)]
pub struct CrashState {
    /// The 1-based ordinal of the event this state was captured after
    /// (0 for an end-of-run state with no armed plan).
    pub(crate) at: u64,
    /// The workload's last [`Machine::note_progress`] value.
    pub(crate) progress: u64,
    pub(crate) durable: PmImage,
    /// Per-thread dirty lines (sorted) with their functional contents.
    pub(crate) dirty: Vec<Vec<(Line, [u8; LINE])>>,
    /// Per-thread pending `clwb` snapshots in issue order.
    pub(crate) pending: Vec<Vec<PendingLine>>,
    /// Per-thread live write-combining entries in arrival order.
    pub(crate) wcbs: Vec<Vec<PendingLine>>,
}

impl CrashState {
    /// The 1-based event ordinal this state was captured after (0 when
    /// taken at end of run without a plan).
    pub fn at(&self) -> u64 {
        self.at
    }

    /// The workload's [`Machine::note_progress`] value at capture —
    /// by convention the number of fully committed operations.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// How many in-flight writes (dirty lines, pending flushes, WCB
    /// entries) the crash gets to decide over.
    pub fn in_flight(&self) -> usize {
        self.dirty.iter().map(Vec::len).sum::<usize>()
            + self.pending.iter().map(Vec::len).sum::<usize>()
            + self.wcbs.iter().map(Vec::len).sum::<usize>()
    }

    /// The PM image a reboot at this point would observe under `spec`.
    ///
    /// `clwb` snapshots and WCB entries carry their own (snapshot)
    /// data; dirty cache lines carry the newest functional contents.
    /// Under [`CrashSpec::PersistAll`] everything lands and the newest
    /// value wins. Under [`CrashSpec::Adversarial`], each in-flight
    /// line survives independently — and when both a pending snapshot
    /// and the same line's dirty entry survive, the *winner* is also
    /// seed-chosen: real hardware orders neither writeback ahead of
    /// the other, so recovery must tolerate either value.
    pub fn materialize(&self, spec: CrashSpec) -> PmImage {
        let mut img = self.durable.clone();
        let mut rng = match spec {
            CrashSpec::Adversarial { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        let keep = |rng: &mut Option<SmallRng>| match (&spec, rng) {
            (CrashSpec::DropVolatile, _) => false,
            (CrashSpec::PersistAll, _) => true,
            (CrashSpec::Adversarial { .. }, Some(r)) => r.gen_bool(0.5),
            (CrashSpec::Adversarial { .. }, None) => unreachable!(),
        };

        // clwb snapshots and WCB entries carry their own data.
        let mut snap_applied: FxHashSet<Line> = FxHashSet::default();
        for per_thread in self.pending.iter().chain(self.wcbs.iter()) {
            for e in per_thread {
                if keep(&mut rng) {
                    img.set_line(e.line, e.data);
                    if rng.is_some() {
                        snap_applied.insert(e.line);
                    }
                }
            }
        }
        // Dirty cache lines persist with current functional contents.
        for per_thread in &self.dirty {
            for (line, data) in per_thread {
                if keep(&mut rng) {
                    // Apply-order tie-break: if a snapshot of this line
                    // also survived, neither writeback is ordered ahead
                    // of the other — draw the winner instead of letting
                    // the dirty (newer) value always prevail.
                    if snap_applied.contains(line) {
                        if let Some(r) = rng.as_mut() {
                            if r.gen_bool(0.5) {
                                continue; // snapshot value wins
                            }
                        }
                    }
                    img.set_line(*line, *data);
                }
            }
        }
        img
    }

    /// FNV-1a digest of the full state (durable lines and every
    /// in-flight entry, in deterministic order) — lets tests assert two
    /// capture paths produced bit-identical states without comparing
    /// whole images.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.at);
        h.u64(self.progress);
        for (line, data) in self.durable.lines() {
            h.u64(line.0);
            h.bytes(data);
        }
        for per_thread in &self.dirty {
            h.u64(per_thread.len() as u64);
            for (line, data) in per_thread {
                h.u64(line.0);
                h.bytes(data);
            }
        }
        for group in [&self.pending, &self.wcbs] {
            for per_thread in group {
                h.u64(per_thread.len() as u64);
                for e in per_thread {
                    h.u64(e.line.0);
                    h.u64(e.seq);
                    h.bytes(&e.data);
                }
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a, used only for [`CrashState::digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl Machine {
    /// Power off the machine, returning the PM image recovery will see.
    ///
    /// Consumes the machine: DRAM, caches, pending flushes, and WCBs
    /// are gone. Equivalent to [`Machine::into_crash_state`] followed
    /// by [`CrashState::materialize`] — planned mid-run captures and
    /// end-of-run crashes share one materializer.
    pub fn crash(self, spec: CrashSpec) -> PmImage {
        self.into_crash_state().materialize(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use pmem::Addr;
    use pmtrace::{Category, Tid};

    fn m() -> Machine {
        Machine::new(MachineConfig::tiny_for_tests())
    }

    fn pm_base(m: &Machine) -> Addr {
        m.config().map.pm.base
    }

    #[test]
    fn fenced_data_survives_every_mode() {
        for spec in [
            CrashSpec::DropVolatile,
            CrashSpec::PersistAll,
            CrashSpec::Adversarial { seed: 3 },
        ] {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            mc.store(t, pa, b"fenced!!", Category::UserData);
            mc.clwb(t, pa);
            mc.sfence(t);
            let img = mc.crash(spec);
            assert_eq!(img.read_vec(pa, 8), b"fenced!!", "{spec:?}");
        }
    }

    #[test]
    fn drop_volatile_loses_unfenced() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[9; 8], Category::UserData);
        let img = mc.crash(CrashSpec::DropVolatile);
        assert_eq!(img.read_vec(pa, 8), vec![0; 8]);
    }

    #[test]
    fn persist_all_keeps_unfenced() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[9; 8], Category::UserData);
        let img = mc.crash(CrashSpec::PersistAll);
        assert_eq!(img.read_vec(pa, 8), vec![9; 8]);
    }

    #[test]
    fn persist_all_keeps_pending_and_wcb() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[1; 8], Category::UserData);
        mc.clwb(t, pa); // pending
        mc.store_nt(t, pa + 64, &[2; 8], Category::RedoLog); // wcb
        let img = mc.crash(CrashSpec::PersistAll);
        assert_eq!(img.read_vec(pa, 8), vec![1; 8]);
        assert_eq!(img.read_vec(pa + 64, 8), vec![2; 8]);
    }

    #[test]
    fn adversarial_is_deterministic_per_seed() {
        let run = |seed| {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            for i in 0..4u64 {
                mc.store(t, pa + i * 64, &[i as u8 + 1; 8], Category::UserData);
            }
            mc.crash(CrashSpec::Adversarial { seed })
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_seeds_explore_subsets() {
        // Across many seeds we should see at least one line both kept
        // and dropped.
        let mut seen_kept = false;
        let mut seen_lost = false;
        for seed in 0..32 {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            mc.store(t, pa, &[5; 8], Category::UserData);
            let img = mc.crash(CrashSpec::Adversarial { seed });
            if img.read_vec(pa, 8) == vec![5; 8] {
                seen_kept = true;
            } else {
                seen_lost = true;
            }
        }
        assert!(seen_kept && seen_lost);
    }

    #[test]
    fn pending_snapshot_value_survives_not_newer() {
        // store 1, clwb, store 2 (unflushed): the in-flight writes are
        // one pending snapshot (value 1) and one dirty line (value 2)
        // on the same line. Mirror the materializer's draw sequence to
        // predict exactly which value each seed must produce, and
        // assert both winners occur when snapshot and dirty both
        // survive — dirty-always-wins was the apply-order bias.
        let mut snapshot_won = false;
        let mut dirty_won = false;
        for seed in 0..64 {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            mc.store(t, pa, &[1; 8], Category::UserData);
            mc.clwb(t, pa);
            mc.store(t, pa, &[2; 8], Category::UserData);
            let img = mc.crash(CrashSpec::Adversarial { seed });
            let v = img.read_vec(pa, 1)[0];

            let mut r = SmallRng::seed_from_u64(seed);
            let keep_snapshot = r.gen_bool(0.5);
            let keep_dirty = r.gen_bool(0.5);
            let expected = match (keep_snapshot, keep_dirty) {
                (false, false) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (true, true) => {
                    if r.gen_bool(0.5) {
                        snapshot_won = true;
                        1
                    } else {
                        dirty_won = true;
                        2
                    }
                }
            };
            assert_eq!(v, expected, "seed {seed}");
        }
        assert!(
            snapshot_won && dirty_won,
            "both apply orders must occur across seeds \
             (snapshot_won={snapshot_won}, dirty_won={dirty_won})"
        );
    }

    #[test]
    fn plan_captures_at_exact_points_and_run_continues() {
        let t = Tid(0);
        let mut mc = m();
        let pa = pm_base(&mc);
        mc.set_crash_plan(CrashPlan::at_points(CrashCounter::Stores, vec![1, 3]));
        for i in 0..4u64 {
            mc.store(t, pa + i * 64, &[i as u8 + 1; 8], Category::UserData);
            mc.note_progress(i + 1);
        }
        assert_eq!(mc.crash_event_count(), 4);
        let states = mc.take_crash_states();
        assert_eq!(states.len(), 2);
        assert_eq!((states[0].at(), states[0].progress()), (1, 0));
        assert_eq!((states[1].at(), states[1].progress()), (3, 2));
        // After store 1 only line 0 is in flight; after store 3, three.
        assert_eq!(states[0].in_flight(), 1);
        assert_eq!(states[1].in_flight(), 3);
        let img = states[1].materialize(CrashSpec::PersistAll);
        assert_eq!(img.read_vec(pa + 2 * 64, 8), vec![3; 8]);
        assert_eq!(img.read_vec(pa + 3 * 64, 8), vec![0; 8], "store 4 later");
        // The machine kept running: a normal end-of-run crash still works.
        assert_eq!(
            mc.crash(CrashSpec::PersistAll).read_vec(pa + 3 * 64, 8),
            vec![4; 8]
        );
    }

    #[test]
    fn plan_counters_select_event_kinds() {
        let t = Tid(0);
        let run = |counter| {
            let mut mc = m();
            let pa = pm_base(&mc);
            mc.set_crash_plan(CrashPlan::probe(counter));
            mc.store(t, pa, &[1; 8], Category::UserData);
            mc.clwb(t, pa);
            mc.sfence(t);
            mc.store_nt(t, pa + 64, &[2; 8], Category::RedoLog);
            mc.sfence_durable(t);
            mc.crash_event_count()
        };
        assert_eq!(run(CrashCounter::Stores), 2);
        assert_eq!(run(CrashCounter::Flushes), 1);
        assert_eq!(run(CrashCounter::Fences), 2);
        assert_eq!(run(CrashCounter::PmEvents), 5);
    }

    #[test]
    fn captured_state_matches_end_of_run_crash() {
        // A capture at the run's last event must materialize exactly
        // what crashing the machine there would have produced.
        for spec in [
            CrashSpec::DropVolatile,
            CrashSpec::PersistAll,
            CrashSpec::Adversarial { seed: 11 },
        ] {
            let t = Tid(0);
            let build = |plan: Option<CrashPlan>| {
                let mut mc = m();
                let pa = pm_base(&mc);
                if let Some(p) = plan {
                    mc.set_crash_plan(p);
                }
                mc.store(t, pa, &[1; 8], Category::UserData);
                mc.clwb(t, pa);
                mc.store(t, pa, &[2; 8], Category::UserData);
                mc.store_nt(t, pa + 64, &[3; 8], Category::RedoLog);
                mc
            };
            let mut planned = build(Some(CrashPlan::at_points(CrashCounter::PmEvents, vec![4])));
            let state = planned.take_crash_states().pop().unwrap();
            let direct = build(None).crash(spec);
            assert_eq!(state.materialize(spec), direct, "{spec:?}");
        }
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let t = Tid(0);
        let run = |extra: bool| {
            let mut mc = m();
            let pa = pm_base(&mc);
            mc.set_crash_plan(CrashPlan::at_points(CrashCounter::Stores, vec![2]));
            mc.store(t, pa, &[1; 8], Category::UserData);
            mc.store(t, pa + 64, &[2; 8], Category::UserData);
            if extra {
                mc.store(t, pa + 128, &[3; 8], Category::UserData);
            }
            mc.take_crash_states().pop().unwrap().digest()
        };
        assert_eq!(run(false), run(false));
        assert_eq!(run(false), run(true), "capture precedes the extra store");
        let mut mc = m();
        let pa = pm_base(&mc);
        mc.set_crash_plan(CrashPlan::at_points(CrashCounter::Stores, vec![1]));
        mc.store(t, pa, &[9; 8], Category::UserData);
        let other = mc.take_crash_states().pop().unwrap().digest();
        assert_ne!(run(false), other);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_crash_point_panics() {
        CrashPlan::at_points(CrashCounter::PmEvents, vec![0]);
    }
}
