//! Power-failure simulation.

use crate::machine::Machine;
use pmem::PmImage;
use pmrand::{Rng, SeedableRng, SmallRng};

/// How a simulated power failure treats in-flight PM writes.
///
/// After an `sfence`, the fenced data is durable in every mode. What
/// varies is the fate of writes that were *in flight*: dirty lines in
/// caches, `clwb` snapshots not yet fenced, and write-combining buffer
/// entries. Real hardware gives no ordering among these, so recovery
/// code must tolerate *any* subset reaching PM — which is exactly what
/// [`CrashSpec::Adversarial`] tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSpec {
    /// Only explicitly persisted data survives: all caches, pending
    /// flushes, and WCBs are lost. The "everything in flight was lost"
    /// corner.
    DropVolatile,
    /// Every in-flight write happens to land before the failure. The
    /// "everything in flight made it" corner (equivalent to a whole-
    /// machine flush-on-failure, which recovery must also tolerate).
    PersistAll,
    /// Each in-flight line independently survives with probability 1/2,
    /// decided by the seed. Sweeping seeds explores the subset lattice
    /// between the two corners.
    Adversarial {
        /// RNG seed selecting which in-flight lines persist.
        seed: u64,
    },
}

impl Machine {
    /// Power off the machine, returning the PM image recovery will see.
    ///
    /// Consumes the machine: DRAM, caches, pending flushes, and WCBs
    /// are gone. Pending `clwb` snapshots are applied with their
    /// snapshot contents; dirty cache lines are applied with their
    /// current functional contents (a dirty line that survives does so
    /// with the newest value the cache held).
    pub fn crash(self, spec: CrashSpec) -> PmImage {
        let (functional, durable, dirty, pending, wcbs) = self.crash_parts();
        let mut img = durable.image();
        let mut rng = match spec {
            CrashSpec::Adversarial { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        let keep = |rng: &mut Option<SmallRng>| match (&spec, rng) {
            (CrashSpec::DropVolatile, _) => false,
            (CrashSpec::PersistAll, _) => true,
            (CrashSpec::Adversarial { .. }, Some(r)) => r.gen_bool(0.5),
            (CrashSpec::Adversarial { .. }, None) => unreachable!(),
        };

        // clwb snapshots and WCB entries carry their own data.
        for per_thread in pending.into_iter().chain(wcbs) {
            for e in per_thread {
                if keep(&mut rng) {
                    img.set_line(e.line, e.data);
                }
            }
        }
        // Dirty cache lines persist with current functional contents.
        for set in dirty {
            for line in set.lines() {
                if keep(&mut rng) {
                    let mut data = [0u8; 64];
                    functional.read(line.base(), &mut data);
                    img.set_line(line, data);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use pmem::Addr;
    use pmtrace::{Category, Tid};

    fn m() -> Machine {
        Machine::new(MachineConfig::tiny_for_tests())
    }

    fn pm_base(m: &Machine) -> Addr {
        m.config().map.pm.base
    }

    #[test]
    fn fenced_data_survives_every_mode() {
        for spec in [
            CrashSpec::DropVolatile,
            CrashSpec::PersistAll,
            CrashSpec::Adversarial { seed: 3 },
        ] {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            mc.store(t, pa, b"fenced!!", Category::UserData);
            mc.clwb(t, pa);
            mc.sfence(t);
            let img = mc.crash(spec);
            assert_eq!(img.read_vec(pa, 8), b"fenced!!", "{spec:?}");
        }
    }

    #[test]
    fn drop_volatile_loses_unfenced() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[9; 8], Category::UserData);
        let img = mc.crash(CrashSpec::DropVolatile);
        assert_eq!(img.read_vec(pa, 8), vec![0; 8]);
    }

    #[test]
    fn persist_all_keeps_unfenced() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[9; 8], Category::UserData);
        let img = mc.crash(CrashSpec::PersistAll);
        assert_eq!(img.read_vec(pa, 8), vec![9; 8]);
    }

    #[test]
    fn persist_all_keeps_pending_and_wcb() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[1; 8], Category::UserData);
        mc.clwb(t, pa); // pending
        mc.store_nt(t, pa + 64, &[2; 8], Category::RedoLog); // wcb
        let img = mc.crash(CrashSpec::PersistAll);
        assert_eq!(img.read_vec(pa, 8), vec![1; 8]);
        assert_eq!(img.read_vec(pa + 64, 8), vec![2; 8]);
    }

    #[test]
    fn adversarial_is_deterministic_per_seed() {
        let run = |seed| {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            for i in 0..4u64 {
                mc.store(t, pa + i * 64, &[i as u8 + 1; 8], Category::UserData);
            }
            mc.crash(CrashSpec::Adversarial { seed })
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_seeds_explore_subsets() {
        // Across many seeds we should see at least one line both kept
        // and dropped.
        let mut seen_kept = false;
        let mut seen_lost = false;
        for seed in 0..32 {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            mc.store(t, pa, &[5; 8], Category::UserData);
            let img = mc.crash(CrashSpec::Adversarial { seed });
            if img.read_vec(pa, 8) == vec![5; 8] {
                seen_kept = true;
            } else {
                seen_lost = true;
            }
        }
        assert!(seen_kept && seen_lost);
    }

    #[test]
    fn pending_snapshot_value_survives_not_newer() {
        // store 1, clwb, store 2 (unflushed), crash PersistAll:
        // pending snapshot (1) applies, then dirty line (2) applies —
        // but under DropVolatile+manual... here check that under a
        // crash where only the pending entry survives (seed hunting),
        // the value is the snapshot value 1.
        for seed in 0..64 {
            let mut mc = m();
            let t = Tid(0);
            let pa = pm_base(&mc);
            mc.store(t, pa, &[1; 8], Category::UserData);
            mc.clwb(t, pa);
            mc.store(t, pa, &[2; 8], Category::UserData);
            let img = mc.crash(CrashSpec::Adversarial { seed });
            let v = img.read_vec(pa, 1)[0];
            assert!(v == 0 || v == 1 || v == 2, "impossible value {v}");
        }
    }
}
