//! Write-combining buffers with an O(1) line-occupancy index.
//!
//! The machine used to model each thread's WCB as a bare
//! `VecDeque<PendingLine>`, which made the *supersede* rule — a
//! cacheable store takes over durability of a line from any pending
//! non-temporal entry — an O(threads × entries) `retain` scan on every
//! PM store line. This module keeps the queues, but adds a global
//! `line → holders` index so supersede is one hash removal.
//!
//! The core invariant: **an entry `e` in `queues[t]` is live iff
//! `index[e.line]` records `(t, e.seq)`**, and `live[t]` counts exactly
//! the live entries of `queues[t]`. Superseding therefore never touches
//! a queue — it just drops the index entry, leaving a dead ("tombstone")
//! element to be skipped on drain and reclaimed by compaction. All
//! timing-visible decisions (the overflow check, the drain set and its
//! order) are functions of the live entries only, so the model behaves
//! bit-identically to the old all-live queues.

use crate::machine::PendingLine;
use pmem::{FxHashMap, Line};
use std::collections::VecDeque;

/// The threads holding a live entry for one line, with each entry's
/// snapshot sequence number. One holder is overwhelmingly the common
/// case (distinct threads rarely NT-store the same line unfenced).
#[derive(Debug, Clone)]
enum Holders {
    One(u32, u64),
    Many(Vec<(u32, u64)>),
}

fn holders_contain(index: &FxHashMap<Line, Holders>, line: Line, t: usize, seq: u64) -> bool {
    match index.get(&line) {
        Some(Holders::One(ht, s)) => *ht as usize == t && *s == seq,
        Some(Holders::Many(v)) => v.iter().any(|(ht, s)| *ht as usize == t && *s == seq),
        None => false,
    }
}

/// All threads' write-combining buffers plus the occupancy index.
#[derive(Debug)]
pub(crate) struct WriteCombine {
    /// Per-thread entries in arrival order; may contain dead entries.
    queues: Vec<VecDeque<PendingLine>>,
    /// Live-entry count per thread — the overflow check's input.
    live: Vec<usize>,
    /// line → live holders (see the module invariant).
    index: FxHashMap<Line, Holders>,
}

impl WriteCombine {
    pub(crate) fn new(threads: usize) -> WriteCombine {
        WriteCombine {
            queues: (0..threads).map(|_| VecDeque::new()).collect(),
            live: vec![0; threads],
            index: FxHashMap::default(),
        }
    }

    /// Sequence number of thread `t`'s live entry for `line`, if any.
    fn holder_seq(&self, line: Line, t: usize) -> Option<u64> {
        match self.index.get(&line)? {
            Holders::One(ht, s) if *ht as usize == t => Some(*s),
            Holders::One(..) => None,
            Holders::Many(v) => v.iter().find(|(ht, _)| *ht as usize == t).map(|&(_, s)| s),
        }
    }

    /// Record that thread `t`'s live entry for `line` now has `seq`.
    fn set_holder(&mut self, line: Line, t: usize, seq: u64) {
        match self.index.get_mut(&line) {
            None => {
                self.index.insert(line, Holders::One(t as u32, seq));
            }
            Some(Holders::One(ht, s)) if *ht as usize == t => *s = seq,
            Some(h) => {
                let mut v = match h {
                    Holders::One(ot, os) => vec![(*ot, *os)],
                    Holders::Many(v) => std::mem::take(v),
                };
                match v.iter_mut().find(|(ht, _)| *ht as usize == t) {
                    Some((_, s)) => *s = seq,
                    None => v.push((t as u32, seq)),
                }
                *h = Holders::Many(v);
            }
        }
    }

    fn remove_holder(&mut self, line: Line, t: usize) {
        match self.index.get_mut(&line) {
            Some(Holders::One(ht, _)) if *ht as usize == t => {
                self.index.remove(&line);
            }
            Some(Holders::Many(v)) => {
                v.retain(|(ht, _)| *ht as usize != t);
                match v.len() {
                    0 => {
                        self.index.remove(&line);
                    }
                    1 => {
                        let (ht, s) = v[0];
                        self.index.insert(line, Holders::One(ht, s));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    /// Install or write-combine an NT-store snapshot for thread `t`.
    /// Returns true when a fresh entry was inserted — the caller then
    /// applies the overflow rule against [`WriteCombine::live_len`].
    pub(crate) fn upsert(&mut self, t: usize, line: Line, data: [u8; 64], seq: u64) -> bool {
        // Per-thread indexes are only reachable through Machine entry
        // points that ran `validate_tid` — sized, like everything
        // per-thread, from `MachineConfig::threads`.
        debug_assert!(t < self.queues.len(), "unvalidated thread slot {t}");
        if let Some(old_seq) = self.holder_seq(line, t) {
            let e = self.queues[t]
                .iter_mut()
                .find(|e| e.seq == old_seq && e.line == line)
                .expect("index names a queued entry");
            e.data = data;
            e.seq = seq;
            self.set_holder(line, t, seq);
            false
        } else {
            self.queues[t].push_back(PendingLine { line, data, seq });
            self.live[t] += 1;
            self.set_holder(line, t, seq);
            true
        }
    }

    /// Live entries buffered for thread `t`.
    pub(crate) fn live_len(&self, t: usize) -> usize {
        self.live[t]
    }

    /// Pop thread `t`'s oldest live entry (the overflow drain). Dead
    /// entries passed over on the way are discarded for free.
    pub(crate) fn pop_oldest_live(&mut self, t: usize) -> PendingLine {
        loop {
            let e = self.queues[t]
                .pop_front()
                .expect("positive live count implies a queued live entry");
            if self.holder_seq(e.line, t) == Some(e.seq) {
                self.remove_holder(e.line, t);
                self.live[t] -= 1;
                return e;
            }
        }
    }

    /// Kill every live entry for `line`, in any thread: a cacheable
    /// store to the line now owns its durability. O(holders), which is
    /// O(1) in every practical run.
    pub(crate) fn supersede(&mut self, line: Line) {
        let Some(h) = self.index.remove(&line) else {
            return;
        };
        match h {
            Holders::One(t, _) => self.superseded_in(t as usize),
            Holders::Many(v) => {
                for (t, _) in v {
                    self.superseded_in(t as usize);
                }
            }
        }
    }

    fn superseded_in(&mut self, t: usize) {
        self.live[t] -= 1;
        // Dead entries accumulate only through supersede; compact when
        // they dominate so queue scans stay O(live).
        if self.queues[t].len() > 2 * self.live[t] + 8 {
            let index = &self.index;
            self.queues[t].retain(|e| holders_contain(index, e.line, t, e.seq));
        }
    }

    /// Move all of thread `t`'s live entries into `out` in queue
    /// (arrival) order, emptying its buffer — the fence path.
    pub(crate) fn drain_thread(&mut self, t: usize, out: &mut Vec<PendingLine>) {
        let mut q = std::mem::take(&mut self.queues[t]);
        for e in q.drain(..) {
            if holders_contain(&self.index, e.line, t, e.seq) {
                self.remove_holder(e.line, t);
                out.push(e);
            }
        }
        self.live[t] = 0;
        self.queues[t] = q; // hand the allocation back
    }

    /// Clone every buffer's live entries in queue order without
    /// disturbing them — the mid-run crash-capture path (must return
    /// exactly what [`WriteCombine::take_all_live`] would).
    pub(crate) fn live_entries(&self) -> Vec<Vec<PendingLine>> {
        self.queues
            .iter()
            .enumerate()
            .map(|(t, q)| {
                q.iter()
                    .filter(|e| holders_contain(&self.index, e.line, t, e.seq))
                    .cloned()
                    .collect()
            })
            .collect()
    }

    /// Consume every buffer for a crash: per-thread live entries in
    /// queue order (what the old bare queues held).
    pub(crate) fn take_all_live(&mut self) -> Vec<Vec<PendingLine>> {
        let index = std::mem::take(&mut self.index);
        for l in &mut self.live {
            *l = 0;
        }
        self.queues
            .iter_mut()
            .enumerate()
            .map(|(t, q)| {
                q.drain(..)
                    .filter(|e| holders_contain(&index, e.line, t, e.seq))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(line: u64, byte: u8, seq: u64) -> (Line, [u8; 64], u64) {
        (Line(line), [byte; 64], seq)
    }

    #[test]
    fn upsert_combines_in_place() {
        let mut w = WriteCombine::new(2);
        let (l, d, s) = pl(5, 1, 1);
        assert!(w.upsert(0, l, d, s));
        let (_, d2, s2) = pl(5, 2, 2);
        assert!(!w.upsert(0, l, d2, s2), "same line write-combines");
        assert_eq!(w.live_len(0), 1);
        let e = w.pop_oldest_live(0);
        assert_eq!((e.line, e.data[0], e.seq), (l, 2, 2));
        assert_eq!(w.live_len(0), 0);
    }

    #[test]
    fn supersede_hides_entry_from_every_path() {
        let mut w = WriteCombine::new(1);
        for (i, byte) in [(1u64, 1u8), (2, 2), (3, 3)] {
            let (l, d, s) = pl(i, byte, i);
            w.upsert(0, l, d, s);
        }
        w.supersede(Line(1));
        assert_eq!(w.live_len(0), 2);
        assert_eq!(w.pop_oldest_live(0).line, Line(2), "dead head skipped");
        let mut out = Vec::new();
        w.drain_thread(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, Line(3));
    }

    #[test]
    fn same_line_in_two_threads_both_tracked() {
        let mut w = WriteCombine::new(2);
        let (l, d, _) = pl(9, 1, 1);
        w.upsert(0, l, d, 1);
        w.upsert(1, l, d, 2);
        assert_eq!((w.live_len(0), w.live_len(1)), (1, 1));
        w.supersede(l);
        assert_eq!((w.live_len(0), w.live_len(1)), (0, 0));
        let parts = w.take_all_live();
        assert!(parts.iter().all(Vec::is_empty));
    }

    #[test]
    fn drain_preserves_arrival_order() {
        let mut w = WriteCombine::new(1);
        for i in 1..=4u64 {
            let (l, d, s) = pl(10 - i, i as u8, i);
            w.upsert(0, l, d, s);
        }
        // Refresh line 9 (arrived first): stays in place, seq updates.
        w.upsert(0, Line(9), [9; 64], 5);
        let mut out = Vec::new();
        w.drain_thread(0, &mut out);
        let lines: Vec<u64> = out.iter().map(|e| e.line.0).collect();
        assert_eq!(lines, vec![9, 8, 7, 6]);
        assert_eq!(out[0].seq, 5);
    }

    /// Random interleavings against a naive all-live model.
    ///
    /// The model is the representation this module replaced: one
    /// `Vec<PendingLine>` per thread holding only live entries, where
    /// supersede is a linear `retain`. After every operation the live
    /// counts must agree, pops and drains must return the model's
    /// entries in the model's order, and the final `take_all_live`
    /// must match queue-for-queue — i.e. tombstones plus compaction
    /// are invisible.
    mod model {
        use super::*;
        use miniprop::prelude::*;

        const THREADS: usize = 3;

        #[derive(Debug, Clone)]
        enum WcbOp {
            Upsert { t: usize, line: u64, byte: u8 },
            Supersede { line: u64 },
            PopOldest { t: usize },
            DrainThread { t: usize },
        }

        fn ops() -> impl Strategy<Value = Vec<WcbOp>> {
            collection::vec(
                prop_oneof![
                    (0usize..THREADS, 0u64..12, any::<u8>())
                        .prop_map(|(t, line, byte)| WcbOp::Upsert { t, line, byte }),
                    (0u64..12).prop_map(|line| WcbOp::Supersede { line }),
                    (0usize..THREADS).prop_map(|t| WcbOp::PopOldest { t }),
                    (0usize..THREADS).prop_map(|t| WcbOp::DrainThread { t }),
                ],
                1..120,
            )
        }

        /// The naive reference: apply `op` to all-live per-thread Vecs.
        fn model_apply(model: &mut [Vec<PendingLine>], op: &WcbOp, seq: u64) {
            match *op {
                WcbOp::Upsert { t, line, byte } => {
                    let line = Line(line);
                    let data = [byte; 64];
                    match model[t].iter_mut().find(|e| e.line == line) {
                        Some(e) => {
                            e.data = data;
                            e.seq = seq;
                        }
                        None => model[t].push(PendingLine { line, data, seq }),
                    }
                }
                WcbOp::Supersede { line } => {
                    for q in model.iter_mut() {
                        q.retain(|e| e.line != Line(line));
                    }
                }
                // Pops and drains are handled by the caller (they
                // return values to compare).
                WcbOp::PopOldest { .. } | WcbOp::DrainThread { .. } => {}
            }
        }

        fn entries_eq(a: &PendingLine, b: &PendingLine) -> bool {
            a.line == b.line && a.seq == b.seq && a.data == b.data
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn matches_naive_all_live_model(script in ops()) {
                let mut real = WriteCombine::new(THREADS);
                let mut model: Vec<Vec<PendingLine>> =
                    (0..THREADS).map(|_| Vec::new()).collect();
                let mut seq = 0u64;

                for op in &script {
                    seq += 1;
                    match *op {
                        WcbOp::Upsert { t, line, byte } => {
                            let fresh = real.upsert(t, Line(line), [byte; 64], seq);
                            let model_fresh =
                                !model[t].iter().any(|e| e.line == Line(line));
                            prop_assert_eq!(fresh, model_fresh);
                            model_apply(&mut model, op, seq);
                        }
                        WcbOp::Supersede { line } => {
                            real.supersede(Line(line));
                            model_apply(&mut model, op, seq);
                        }
                        WcbOp::PopOldest { t } => {
                            // Only legal with a positive live count.
                            if model[t].is_empty() {
                                prop_assert_eq!(real.live_len(t), 0);
                                continue;
                            }
                            let got = real.pop_oldest_live(t);
                            let want = model[t].remove(0);
                            prop_assert!(entries_eq(&got, &want));
                        }
                        WcbOp::DrainThread { t } => {
                            let mut got = Vec::new();
                            real.drain_thread(t, &mut got);
                            let want = std::mem::take(&mut model[t]);
                            prop_assert_eq!(got.len(), want.len());
                            for (g, w) in got.iter().zip(&want) {
                                prop_assert!(entries_eq(g, w));
                            }
                        }
                    }
                    // The live-entry sets agree after every step.
                    for (t, mq) in model.iter().enumerate() {
                        prop_assert_eq!(real.live_len(t), mq.len());
                    }
                }

                // Crash path: every buffer, live entries in queue order.
                let got = real.take_all_live();
                prop_assert_eq!(got.len(), model.len());
                for (gq, wq) in got.iter().zip(&model) {
                    prop_assert_eq!(gq.len(), wq.len());
                    for (g, w) in gq.iter().zip(wq.iter()) {
                        prop_assert!(entries_eq(g, w));
                    }
                }
            }
        }
    }

    #[test]
    fn compaction_keeps_only_live() {
        let mut w = WriteCombine::new(1);
        for i in 0..64u64 {
            let (l, d, s) = pl(i, i as u8, i + 1);
            w.upsert(0, l, d, s);
        }
        for i in 0..60u64 {
            w.supersede(Line(i));
        }
        assert_eq!(w.live_len(0), 4);
        assert!(
            w.queues[0].len() <= 2 * 4 + 8,
            "compaction bounded the queue"
        );
        let mut out = Vec::new();
        w.drain_thread(0, &mut out);
        assert_eq!(out.len(), 4);
    }
}
